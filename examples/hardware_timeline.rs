//! Watch the machine work: the pass timeline of a Longformer layer on the
//! SALO array, plus the event-accurate systolic view of a single pass.
//!
//! Run with: `cargo run --release --example hardware_timeline`

use salo::core::{AttentionRequest, Engine, PatternHandle, Salo};
use salo::kernels::Qkv;
use salo::models::longformer_layer;
use salo::sim::{AcceleratorConfig, Timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = longformer_layer(1024, 128, 64, 1)?;
    let salo = Salo::default_config();
    let compiled = salo.compile(&workload.pattern, &workload.shape)?;

    // The schedule: each line is one initiation interval of the array.
    let timeline = Timeline::from_plan(&compiled.plan, &AcceleratorConfig::default(), 64);
    println!(
        "Longformer n=1024 w=128: {} passes, {}-cycle interval, {} cycles/head\n",
        timeline.slots().len(),
        timeline.interval(),
        timeline.total_cycles()
    );
    print!("{}", timeline.render_text(12));

    // Functional execution of the same plan through the engine API.
    let head = Qkv::random(1024, 64, 9);
    let mut engine = salo.engine();
    let fast = engine
        .execute(AttentionRequest::Prefill {
            pattern: PatternHandle::from_plan(std::sync::Arc::new(compiled)),
            shape: workload.shape,
            heads: vec![head],
        })?
        .into_prefill()?;
    let report = fast.heads[0].report.as_ref().expect("fixed-point engines report timing");
    println!(
        "\nvectorized execution: {} saturations, weight[0] = {}",
        report.saturation_events,
        fast.heads[0].weights_q16.as_ref().expect("fixed-point weights")[0]
    );
    println!(
        "utilization {:.1}%, energy {:.2} uJ",
        report.timing.utilization.mac_utilization * 100.0,
        report.timing.energy_j * 1e6
    );
    Ok(())
}
