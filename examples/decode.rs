//! Streaming decode demo: autoregressive generation through the hybrid
//! sparse attention datapath, one token at a time.
//!
//! Run with `cargo run --release --example decode`.
//!
//! Two layers are shown: the core single-head [`DecodeSession`] (compile
//! the causal plan once, prime a prompt, step tokens against persistent
//! K/V state), and the serving runtime's pinned decode sessions driving a
//! generation traffic mix through the worker pool.

use salo::core::Salo;
use salo::kernels::Qkv;
use salo::patterns::{HybridPattern, Window};
use salo::serve::{GenerationTraffic, SaloServer, ServeOptions};
use salo::sim::AcceleratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Core session: a chat-style pattern, 256 positions of capacity,
    // a 128-wide causal window and an attention-sink global token.
    let n = 256;
    let d = 64;
    let pattern = HybridPattern::builder(n).window(Window::causal(128)?).global_token(0).build()?;
    let salo = Salo::default_config();
    let mut session = salo.decode_session(&pattern, d)?;
    println!(
        "decode session: capacity {}, first decodable step {}, {} global row(s)",
        session.capacity(),
        session.min_step(),
        session.global_rows().len()
    );

    // In a real model the tokens come from the sampling loop; here the
    // whole "generation" is seeded random data.
    let qkv = Qkv::random(n, d, 7);
    let prompt_len = 16;
    session.prime_rows(&qkv, 0..prompt_len)?;
    let started = std::time::Instant::now();
    let mut last_weight = 0;
    for t in prompt_len..n {
        let step = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t))?;
        last_weight = step.weight_q16;
        if t % 64 == 0 {
            println!(
                "  step {t:>4}: weight {:.2}, out[0] {:+.4}",
                step.weight_q16 as f64 / 65536.0,
                step.output[0]
            );
        }
    }
    let elapsed = started.elapsed();
    let steps = n - prompt_len;
    println!(
        "generated {steps} tokens in {:.2} ms ({:.1} µs/token); final row weight {:.2}",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / steps as f64,
        last_weight as f64 / 65536.0
    );

    // The sink token's row has been accumulating incrementally the whole
    // time — by now it equals the full causal-prefill row, bit for bit.
    let (token, _, weight) = session.global_rows().remove(0);
    println!("global row {token} caught up: weight {:.2}\n", weight as f64 / 65536.0);

    // --- Serving: pinned sessions over the worker pool, plans amortized
    // through the cache across generations of the same shape.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 2, ..Default::default() },
    );
    let traffic = GenerationTraffic::demo_mix();
    for i in 0..4u64 {
        let (request, steps) = traffic.session(i);
        let handle = server.open_session(request)?;
        let info = handle.wait_open()?;
        for token in &steps {
            server.step_session(handle.id(), token.clone())?;
        }
        let mut last_position = 0;
        for _ in 0..steps.len() {
            last_position = handle.next_step()?.position;
        }
        server.close_session(handle.id())?;
        println!(
            "session {i}: worker {}, cache {}, {} steps, final position {}",
            info.worker,
            if info.cache_hit { "hit" } else { "miss" },
            steps.len(),
            last_position
        );
    }
    println!("\n{}", server.shutdown());
    Ok(())
}
