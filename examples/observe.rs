//! End-to-end observability demo: a mixed prefill/decode burst through the
//! serving runtime with tracing and kernel-stage profiling enabled, then
//! dump everything the instrumentation captured — a Perfetto-loadable
//! trace, the metrics table, and the stage-level cost breakdown.
//!
//! Run with: `cargo run --release --example observe`
//!
//! It writes `salo_trace.json` (Chrome trace-event format) next to the
//! working directory. To inspect the timeline, open
//! <https://ui.perfetto.dev> (or `chrome://tracing`) and load the file:
//! each serving thread is a track, with `serve.*` spans (admission, plan
//! lookup, batch formation, queue wait, reply) over `engine.*` spans
//! (prefill, decode steps) over `sim.*` spans (lowered execution, shards,
//! and the four synthetic `sim.stage.*` spans showing where the modeled
//! datapath spent its time).
//!
//! Tracing here is turned on in code; in any other binary the same
//! instrumentation is a no-op until `SALO_TRACE=1` is set in the
//! environment (`SALO_TRACE_BUFFER` sizes the per-thread ring).

use salo::serve::{GenerationTraffic, SaloServer, ServeOptions, TrafficMix};
use salo::sim::AcceleratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Normally enabled via SALO_TRACE=1; the demo opts in explicitly so
    // it always produces a trace.
    salo::trace::set_enabled(true);

    let server = SaloServer::start(
        AcceleratorConfig::default(),
        // Two prefill shards inside each engine, so the partitioned
        // path's per-shard occupancy gauges show up in the registry.
        ServeOptions { workers: 2, max_batch: 4, worker_parallelism: 2, ..Default::default() },
    );

    // A mixed burst: prefill layer traffic interleaved with streaming
    // decode generations.
    let mix = TrafficMix::demo_mix();
    let generations = GenerationTraffic::demo_mix();
    let prefills = 12u64;
    let sessions = 2u64;

    let mut handles = Vec::new();
    for i in 0..sessions {
        let (request, tokens) = generations.session(i);
        let handle = server.open_session(request)?;
        handle.wait_open()?;
        handles.push((handle, tokens));
    }
    for i in 0..prefills {
        server.submit(mix.request(i))?;
    }
    // Drive each generation a few tokens while the prefill burst drains.
    for (handle, tokens) in &handles {
        for token in tokens.iter().take(8) {
            server.step_session(handle.id(), token.clone())?;
            handle.next_step()?;
        }
    }
    for _ in 0..prefills {
        server.recv()?.output()?;
    }
    for (handle, _) in &handles {
        server.close_session(handle.id())?;
    }

    // The per-server metrics registry: counters, gauges, histograms the
    // collector maintained while the burst ran.
    println!("-- serve metrics registry --");
    println!("{}", server.metrics().export_table());

    // Process-global metrics (the sim's per-shard occupancy gauges land
    // here when profiling is on).
    println!("-- global metrics registry --");
    println!("{}", salo::trace::metrics().export_table());

    let report = server.shutdown();
    println!("-- serve report --\n{report}");
    println!(
        "report histograms: {} latency samples, {} decode-step samples (merge exactly across shards)",
        report.latency_hist.count, report.decode_step_latency_hist.count
    );

    // Export the trace. Every span recorded by every thread — admission
    // on this thread, plan lookup/batch formation on the dispatcher,
    // queue waits and engine/sim execution on the workers.
    let trace = salo::trace::export_chrome_json();
    let path = "salo_trace.json";
    std::fs::write(path, &trace)?;
    let snapshot = salo::trace::Tracer::global().snapshot();
    println!(
        "wrote {path}: {} spans across {} threads ({} dropped)",
        snapshot.spans.len(),
        snapshot.threads.len(),
        snapshot.dropped_events
    );
    println!("open https://ui.perfetto.dev and drag the file in to see the timeline");
    Ok(())
}
