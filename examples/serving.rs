//! Closed-loop serving demo: mixed Longformer / ViL / BERT traffic through
//! the `salo-serve` runtime — plan caching, same-plan batching, a pool of
//! simulated accelerator instances, and ordered responses.
//!
//! Run with: `cargo run --release --example serving`

use salo::serve::{SaloServer, ServeOptions, TrafficMix};
use salo::sim::AcceleratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix = TrafficMix::demo_mix();
    println!("traffic mix ({} workloads):", mix.len());
    for w in mix.workloads() {
        println!(
            "  {:<28} n={:<5} heads={:<3} nnz={}",
            w.name,
            w.shape.seq_len,
            w.shape.num_heads,
            w.nnz()
        );
    }

    let total = 96u64;
    // Pre-generate the traffic so the closed loop measures the runtime,
    // not the random-input generator.
    let requests: Vec<_> = (0..total).map(|i| mix.request(i)).collect();
    for workers in [1usize, 4] {
        println!("\n=== {workers} worker(s), {total} requests ===");
        let server = SaloServer::start(
            AcceleratorConfig::default(),
            ServeOptions { workers, max_batch: 8, ..Default::default() },
        );

        // Closed loop: submit everything, then drain the ordered channel.
        for request in &requests {
            server.submit(request.clone())?;
        }
        let mut hits = 0u64;
        for expected in 0..total {
            let response = server.recv()?;
            assert_eq!(response.id, expected, "ordered responses");
            response.output()?;
            if response.cache_hit {
                hits += 1;
            }
        }
        println!("drained {total} responses in order ({hits} plan-cache hits)");
        println!("{}", server.shutdown());
    }

    println!("ok");
    Ok(())
}
