//! Scaling study: SALO's linear complexity vs the baselines' behaviour as
//! the sequence grows (the crossover the paper's intro argues from).
//!
//! Run with: `cargo run --release --example scaling_study`

use salo::baselines::{cpu_xeon_e5_2630_v3, gtx_1080ti};
use salo::core::Salo;
use salo::models::{bert_base, longformer_layer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let salo = Salo::default_config();
    let cpu = cpu_xeon_e5_2630_v3();
    let gpu = gtx_1080ti();

    println!(
        "{:>6} | {:>12} | {:>12} | {:>12} | {:>12} | {:>8}",
        "n", "SALO (w=512)", "GPU banded", "GPU dense", "CPU banded", "GPU/SALO"
    );
    for k in 0..6 {
        let n = 1024usize << k;
        let workload = longformer_layer(n, 512, 768, 1)?;
        let compiled = salo.compile(&workload.pattern, &workload.shape)?;
        let t_salo = salo.estimate(&compiled).time_s;
        let baseline = workload.baseline();
        let t_gpu = gpu.latency_s(&baseline);
        let t_cpu = cpu.latency_s(&baseline);
        let t_gpu_dense = gpu.latency_s(&bert_base(n)?.baseline());
        println!(
            "{:>6} | {:>9.3} ms | {:>9.3} ms | {:>9.3} ms | {:>9.1} ms | {:>7.2}x",
            n,
            t_salo * 1e3,
            t_gpu * 1e3,
            t_gpu_dense * 1e3,
            t_cpu * 1e3,
            t_gpu / t_salo
        );
    }
    println!(
        "\nSALO and the banded baselines grow linearly in n (fixed window); \
         dense GPU attention grows quadratically — at n=16k it is already \
         two orders of magnitude behind."
    );
    Ok(())
}
