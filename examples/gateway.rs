//! Network serving demo: a `salo-gateway` front door bound to a loopback
//! port, driven by the blocking wire client — prefill, a streaming decode
//! session, live stats, and a graceful drain that hands back the final
//! serving report.
//!
//! Run with: `cargo run --release --example gateway`

use salo::gateway::{Gateway, GatewayClient, GatewayOptions};
use salo::kernels::Qkv;
use salo::serve::{GenerationTraffic, ServeOptions, TrafficMix};
use salo::sim::AcceleratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = GatewayOptions {
        serve: ServeOptions { workers: 2, max_batch: 8, ..Default::default() },
        ..Default::default()
    };
    let gateway = Gateway::bind("127.0.0.1:0", AcceleratorConfig::default(), options)?;
    let addr = gateway.local_addr();
    println!("gateway listening on {addr}");

    let mut client = GatewayClient::connect(addr, 7)?;

    // One prefill per demo workload, closed-loop over the socket.
    let mix = TrafficMix::demo_mix();
    for (i, workload) in mix.workloads().iter().enumerate() {
        let heads: Vec<Qkv> = (0..workload.shape.num_heads)
            .map(|h| Qkv::random(workload.shape.seq_len, workload.shape.head_dim, h as u64))
            .collect();
        let (outputs, sim_time_s, sim_energy_j) =
            client.prefill(workload.pattern.clone(), workload.shape, heads)?;
        println!(
            "prefill {i} ({:<28}) {} head(s)  sim {:.3} ms / {:.3} mJ",
            workload.name,
            outputs.len(),
            sim_time_s * 1e3,
            sim_energy_j * 1e3,
        );
    }

    // One streaming decode session: open, step a few tokens, close.
    let traffic = GenerationTraffic::demo_mix();
    let steps = 6;
    let (request, tokens) = traffic.session_bounded(0, steps);
    let opened = client.open_session(
        request.pattern,
        request.head_dim,
        request.num_heads,
        request.prompt,
    )?;
    println!(
        "session {} open: position {} of {} (min step {})",
        opened.session, opened.position, opened.capacity, opened.min_step
    );
    for token in tokens.iter().take(steps) {
        let (position, heads) = client.step(opened.session, token.clone())?;
        println!("  step -> position {position} ({} head rows)", heads.len());
    }
    let final_position = client.close(opened.session)?;
    println!("session closed at position {final_position:?}");

    let stats = client.stats_json()?;
    println!("live stats: {} bytes of registry JSON", stats.len());

    drop(client);
    let report = gateway.shutdown();
    println!(
        "drained (in deadline: {}): {} connection(s), {} frames in / {} out, {} admitted",
        report.drained_in_deadline,
        report.connections,
        report.frames_read,
        report.frames_written,
        report.admitted,
    );
    println!("{}", report.serve);
    println!("ok");
    Ok(())
}
