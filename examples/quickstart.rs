//! Quickstart: build a hybrid sparse attention pattern, compile it for the
//! SALO accelerator, execute it, and check the result against the exact
//! `f32` reference.
//!
//! Run with: `cargo run --release --example quickstart`

use salo::core::Salo;
use salo::kernels::{sparse_attention, Qkv};
use salo::patterns::{AttentionShape, HybridPattern, Window};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Longformer-style pattern: sliding window of 64 plus one global
    //    token, over a 512-token sequence.
    let pattern =
        HybridPattern::builder(512).window(Window::symmetric(64)?).global_token(0).build()?;
    let stats = pattern.stats();
    println!(
        "pattern: n={} nnz={} density={:.4} ({}x compression vs dense)",
        pattern.n(),
        stats.nnz,
        stats.density,
        stats.compression() as u64
    );

    // 2. Compile for the default (Table 1) accelerator instance.
    let salo = Salo::default_config();
    let shape = AttentionShape::new(512, 64, 1)?;
    let compiled = salo.compile(&pattern, &shape)?;
    println!(
        "plan: {} passes, occupancy {:.1}%",
        compiled.stats.passes,
        compiled.stats.occupancy * 100.0
    );

    // 3. Execute one head functionally (bit-accurate fixed point).
    let head = Qkv::random(512, 64, 42);
    let out = salo.execute_head(&compiled, &head)?;
    let timing = &out.report.timing;
    println!(
        "executed: {} cycles = {:.3} us @ 1 GHz, utilization {:.1}%, energy {:.3} uJ",
        timing.cycles.total,
        timing.time_s * 1e6,
        timing.utilization.mac_utilization * 100.0,
        timing.energy_j * 1e6
    );

    // 4. Compare with the exact f32 reference.
    let scale = 1.0 / (64f32).sqrt();
    let reference = sparse_attention(&pattern, &head.q, &head.k, &head.v, scale)?;
    let diff = out.output.max_abs_diff(&reference);
    println!("max |fixed - f32| = {diff:.4} (quantization error only)");
    assert!(diff < 0.3, "fixed-point output should track the reference");
    println!("ok");
    Ok(())
}
