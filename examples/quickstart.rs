//! Quickstart: build a hybrid sparse attention pattern, compile it, and
//! execute it through the unified engine API — once on the fast
//! fixed-point backend, once on the `f32` reference backend — then
//! compare the two.
//!
//! Run with: `cargo run --release --example quickstart`

use salo::core::{AttentionRequest, Engine, Salo};
use salo::kernels::Qkv;
use salo::patterns::{AttentionShape, HybridPattern, Window};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Longformer-style pattern: sliding window of 64 plus one global
    //    token, over a 512-token sequence.
    let pattern =
        HybridPattern::builder(512).window(Window::symmetric(64)?).global_token(0).build()?;
    let stats = pattern.stats();
    println!(
        "pattern: n={} nnz={} density={:.4} ({}x compression vs dense)",
        pattern.n(),
        stats.nnz,
        stats.density,
        stats.compression() as u64
    );

    // 2. Compile for the default (Table 1) accelerator instance: the
    //    engine's `prepare` runs the data scheduler once and attaches the
    //    lowered plan to the returned handle.
    let salo = Salo::default_config();
    let shape = AttentionShape::new(512, 64, 1)?;
    let mut engine = salo.engine(); // the fast fixed-point backend
    let handle = engine.prepare(&pattern, &shape)?;
    let plan = handle.plan().expect("fixed-point engines attach the compiled plan");
    println!(
        "plan: {} passes, occupancy {:.1}% (engine '{}', caps {:?})",
        plan.stats.passes,
        plan.stats.occupancy * 100.0,
        engine.name(),
        engine.capabilities()
    );

    // 3. Execute one head functionally (bit-accurate fixed point): one
    //    typed request in, one typed response out.
    let head = Qkv::random(512, 64, 42);
    let request =
        AttentionRequest::Prefill { pattern: handle.clone(), shape, heads: vec![head.clone()] };
    let out = engine.execute(request.clone())?.into_prefill()?;
    let telemetry = &out.telemetry;
    println!(
        "executed: {} cycles = {:.3} us @ 1 GHz, energy {:.3} uJ",
        telemetry.sim_cycles.unwrap_or(0),
        telemetry.sim_time_s.unwrap_or(0.0) * 1e6,
        telemetry.sim_energy_j.unwrap_or(0.0) * 1e6
    );

    // 4. Run the *same request* through the `f32` reference backend and
    //    compare — backend comparison is a one-liner per engine.
    let exact = salo.reference_engine().execute(request)?.into_prefill()?;
    let diff = out.heads[0].output.max_abs_diff(&exact.heads[0].output);
    println!("max |fixed - f32| = {diff:.4} (quantization error only)");
    assert!(diff < 0.3, "fixed-point output should track the reference");
    println!("ok");
    Ok(())
}
