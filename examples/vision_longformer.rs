//! Vision Longformer (ViL): 2-D windowed attention on the accelerator.
//!
//! Shows how a 2-D window over an image grid flattens into banded 1-D
//! windows (the paper's Fig. 2c), how close the flattened approximation is
//! to the exact 2-D mask, and runs a scaled ViL stage functionally.
//!
//! Run with: `cargo run --release --example vision_longformer`

use salo::core::{AttentionRequest, Engine, Salo};
use salo::kernels::sparse_attention;
use salo::models::{vil_stage1, vil_stage_layer};
use salo::patterns::{grid_2d, DenseMask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The flattened band decomposition of a 2-D window.
    let pattern = grid_2d(12, 12, 5, 5, 1)?;
    println!(
        "12x12 grid, 5x5 window -> {} band components of width {} each",
        pattern.windows().len(),
        pattern.windows()[0].width()
    );
    let exact = DenseMask::grid_2d_exact(12, 12, 5, 5, 1)?;
    let flat = DenseMask::from_pattern(&pattern);
    println!(
        "flattened-vs-exact 2-D mask agreement: {:.2}% (divergence is the \
         image-edge wrap of Fig. 2c's flattening)",
        flat.agreement(&exact) * 100.0
    );

    // Full-size stage-1 estimate.
    let salo = Salo::default_config();
    let stage1 = vil_stage1();
    let compiled = salo.compile(&stage1.pattern, &stage1.shape)?;
    let t = salo.estimate(&compiled);
    println!(
        "\nViL-stage1 (56x56 patches, 15x15 window, 3 heads): {:.3} ms, {} passes/head",
        t.time_s * 1e3,
        compiled.stats.passes
    );

    // Scaled functional run: 16x16 grid, 5x5 window, one 64-dim head.
    let scaled = vil_stage_layer(16, 16, 5, 5, 64, 1)?;
    let mut engine = salo.engine();
    let handle = engine.prepare(&scaled.pattern, &scaled.shape)?;
    let heads = scaled.qkv_heads(3);
    let run = engine
        .execute(AttentionRequest::Prefill {
            pattern: handle,
            shape: scaled.shape,
            heads: heads.clone(),
        })?
        .into_prefill()?;
    let reference =
        sparse_attention(&scaled.pattern, &heads[0].q, &heads[0].k, &heads[0].v, scaled.scale())?;
    let diff = run.heads[0].output.max_abs_diff(&reference);
    println!(
        "scaled run (16x16 grid): {:.3} us simulated, max |err| {:.4}",
        run.telemetry.sim_time_s.unwrap_or(0.0) * 1e6,
        diff
    );
    assert!(diff < 0.3);
    println!("ok");
    Ok(())
}
