//! Design-space walk over the choices DESIGN.md calls out: pass
//! pipelining, array geometry, the diagonal-reuse dataflow, buffer sizing
//! and the input fraction-bit split.
//!
//! Run with: `cargo run --release --example ablation_study`

use salo::core::Salo;
use salo::models::longformer_layer;
use salo::patterns::longformer;
use salo::quant::sweep_fraction_bits;
use salo::scheduler::{ExecutionPlan, HardwareMeta};
use salo::sim::{AcceleratorConfig, BufferAnalysis, SpatialAccelerator, TrafficReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = longformer_layer(4096, 512, 768, 1)?;

    // 1. Pass pipelining: the steady-state interval vs serialized stages.
    println!("-- pipelining (Longformer-4096, d=64, 12 heads) --");
    for pipelined in [false, true] {
        let config = AcceleratorConfig { pipelined, ..Default::default() };
        let salo = Salo::new(config);
        let compiled = salo.compile(&workload.pattern, &workload.shape)?;
        let t = salo.estimate(&compiled);
        println!(
            "  {}: {:>8.3} ms, utilization {:.1}%",
            if pipelined { "pipelined " } else { "serialized" },
            t.time_s * 1e3,
            t.utilization.mac_utilization * 100.0
        );
    }

    // 2. Array geometry at a fixed PE budget of 1024.
    println!("\n-- array geometry (1024 PEs) --");
    for (r, c) in [(32usize, 32usize), (64, 16), (16, 64), (128, 8)] {
        let config = AcceleratorConfig { hw: HardwareMeta::new(r, c, 1, 1)?, ..Default::default() };
        let salo = Salo::new(config);
        let compiled = salo.compile(&workload.pattern, &workload.shape)?;
        let t = salo.estimate(&compiled);
        println!(
            "  {r:>3}x{c:<3}: {:>8.3} ms, {:>5} passes, occupancy {:.1}%",
            t.time_s * 1e3,
            compiled.stats.passes,
            t.utilization.occupancy * 100.0
        );
    }

    // 3. The diagonal-reuse dataflow (the §4.1 claim, quantified).
    println!("\n-- key/value reuse --");
    let plan = ExecutionPlan::build(&workload.pattern, HardwareMeta::default())?;
    let traffic = TrafficReport::from_plan(&plan, 64);
    println!(
        "  diagonal streaming: {:.1} MB    per-cell reloads: {:.1} MB    reuse {:.1}x",
        traffic.kv_bytes_diagonal as f64 / 1e6,
        traffic.kv_bytes_naive as f64 / 1e6,
        traffic.reuse_factor()
    );

    // 4. Buffer sizing against the sliding working set.
    println!("\n-- buffers (Table 1 sizes, d = 64) --");
    let analysis = BufferAnalysis::analyze(&AcceleratorConfig::default(), &plan, 64);
    println!(
        "  working set {:.1} KB vs key buffer {} vectors: fits = {}, reload factor {:.2}",
        analysis.kv_working_set_bytes as f64 / 1024.0,
        analysis.key_capacity_vectors,
        analysis.fits,
        analysis.reload_factor
    );

    // 5. Fraction bits of the 8-bit input format.
    println!("\n-- input fraction bits (8-bit storage, unit-normal inputs) --");
    let pattern = longformer(256, 32, 1)?;
    for p in sweep_fraction_bits(&pattern, 32, 11, &[2, 3, 4, 5, 6])? {
        println!(
            "  Q.{}: range +-{:<4} SQNR {:>5.1} dB, clipped {:.2}%",
            p.frac_bits,
            p.range,
            p.sqnr_db,
            p.clipped * 100.0
        );
    }
    println!("\nthe paper's Q.4 sits on the SQNR plateau with zero clipping");

    // Keep the default instance honest.
    let _ = SpatialAccelerator::default_instance();
    Ok(())
}
