//! Cost-driven pattern autotuning: for each reference sparsity mask, the
//! tuner sweeps the pattern zoo (windows, globals, strided columns, block
//! grids, captured residuals), prices every candidate that meets the
//! coverage budget by *simulated cycles on the configured array*, and
//! returns the cheapest covering pattern.
//!
//! Doubles as the CI smoke for the tuner: for every mask the fitted
//! pattern's simulated cycle count must not exceed the preset the mask
//! was generated from.
//!
//! Run with: `cargo run --release --example autotune`

use salo::core::Salo;
use salo::patterns::{
    bigbird, longformer, sparse_transformer, AttentionShape, DenseMask, FitConfig, HybridPattern,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let salo = Salo::default_config();
    let n = 256;
    let d = 64;
    let shape = AttentionShape::new(n, d, 1)?;

    // Reference masks, each paired with the preset that generated it —
    // the baseline the tuner must beat or match.
    let references: Vec<(&str, HybridPattern)> = vec![
        ("longformer(256, 32, 2)", longformer(n, 32, 2)?),
        ("bigbird(256, 16, 2, 2, 7)", bigbird(n, 16, 2, 2, 7)?),
        ("sparse_transformer(256, 16, 4)", sparse_transformer(n, 16, 4)?),
    ];

    println!("autotuned patterns (n = {n}, d = {d}, coverage budget 95%)");
    println!(
        "{:<32} {:>12} {:>12} {:>10} {:>10} {:>11}",
        "mask source", "preset cyc", "tuned cyc", "speedup", "coverage", "candidates"
    );
    for (name, preset) in references {
        let mask = DenseMask::from_pattern(&preset);
        let baseline = salo.estimate(&salo.compile(&preset, &shape)?);
        let report = salo.autotune_pattern(&mask, &shape, 0.95, FitConfig::default())?;
        let tuned = salo.estimate(&salo.compile(&report.pattern, &shape)?);
        println!(
            "{:<32} {:>12} {:>12} {:>9.2}x {:>9.1}% {:>11}",
            name,
            baseline.cycles.total,
            tuned.cycles.total,
            baseline.cycles.total as f64 / tuned.cycles.total as f64,
            report.coverage * 100.0,
            report.candidates
        );
        println!(
            "{:<32} energy {:.2} uJ -> {:.2} uJ",
            "",
            baseline.energy_j * 1e6,
            tuned.energy_j * 1e6
        );
        assert!(
            tuned.cycles.total <= baseline.cycles.total,
            "{name}: tuned pattern must not cost more than the preset \
             ({} vs {} cycles)",
            tuned.cycles.total,
            baseline.cycles.total
        );
    }
    println!("autotune smoke passed: every fitted pattern is at or below its preset baseline");
    Ok(())
}
