//! The paper's flagship workload: a Longformer-Base-4096 attention layer.
//!
//! Estimates the full-size layer on the Table 1 instance (as Fig. 7 does),
//! then functionally executes a 1/8-scale version and validates it against
//! the exact reference.
//!
//! Run with: `cargo run --release --example longformer`

use salo::baselines::{cpu_xeon_e5_2630_v3, gtx_1080ti};
use salo::core::{compare_workload, AttentionRequest, Engine, Salo};
use salo::kernels::multi_head_attention;
use salo::models::{longformer_base_4096, longformer_layer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let salo = Salo::default_config();

    // Full-size estimate + baseline comparison (the Fig. 7 protocol).
    let workload = longformer_base_4096();
    let row = compare_workload(&salo, &workload, &cpu_xeon_e5_2630_v3(), &gtx_1080ti())?;
    println!("Longformer-Base-4096 attention layer (12 heads, window 512):");
    println!(
        "  SALO : {:.3} ms, utilization {:.1}%",
        row.salo_latency_s * 1e3,
        row.salo_utilization * 100.0
    );
    println!(
        "  CPU  : {:.1} ms -> speedup {:.2}x (paper 83.57x)",
        row.cpu_latency_s * 1e3,
        row.speedup_cpu()
    );
    println!(
        "  GPU  : {:.1} ms -> speedup {:.2}x (paper 7.38x)",
        row.gpu_latency_s * 1e3,
        row.speedup_gpu()
    );
    println!(
        "  energy: {:.2} mJ vs CPU {:.0} mJ ({:.0}x) / GPU {:.0} mJ ({:.0}x)",
        row.salo_energy_j * 1e3,
        row.cpu_energy_j * 1e3,
        row.energy_saving_cpu(),
        row.gpu_energy_j * 1e3,
        row.energy_saving_gpu()
    );

    // Scaled-down functional execution: n=512, w=64, 2 heads.
    let scaled = longformer_layer(512, 64, 128, 1)?;
    let mut engine = salo.engine();
    let handle = engine.prepare(&scaled.pattern, &scaled.shape)?;
    let heads = scaled.qkv_heads(7);
    let run = engine
        .execute(AttentionRequest::Prefill {
            pattern: handle,
            shape: scaled.shape,
            heads: heads.clone(),
        })?
        .into_prefill()?;
    let reference = multi_head_attention(&scaled.pattern, &heads)?;
    let mut worst = 0.0f32;
    for (ours, exact) in run.heads.iter().zip(&reference.heads) {
        worst = worst.max(ours.output.max_abs_diff(exact));
    }
    println!("\nscaled functional run (n=512, w=64, 2 heads):");
    println!(
        "  simulated latency {:.3} us, max |err| vs f32 reference {:.4}",
        run.telemetry.sim_time_s.unwrap_or(0.0) * 1e6,
        worst
    );
    assert!(worst < 0.3);
    println!("ok");
    Ok(())
}
