//! Bring your own pattern: SALO's data scheduler handles any hybrid of
//! sliding windows, dilated windows and global tokens — including ones
//! recovered from a raw boolean mask — and the validation API proves a
//! compiled plan is trustworthy before deployment.
//!
//! Run with: `cargo run --release --example custom_pattern`

use salo::core::{validate, Salo, ValidationConfig};
use salo::patterns::{
    analyze_support, bigbird_like_mask, fit_pattern, AttentionShape, DenseMask, FitConfig,
    HybridPattern, Window,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hybrid nobody ships by default: local context, a dilated reach
    // every 5 tokens, and two global anchors.
    let n = 160;
    let pattern = HybridPattern::builder(n)
        .window(Window::symmetric(9)?)
        .window(Window::dilated(-40, 40, 5)?)
        .global_tokens([0, 80])
        .build()?;
    println!("custom pattern: nnz={} density={:.3}", pattern.nnz(), pattern.density());

    // Suppose all you had was the mask: recover the components.
    let mask = DenseMask::from_pattern(&pattern);
    let fit = fit_pattern(&mask, FitConfig::default())?;
    println!(
        "fit from raw mask: {} windows, {} globals, agreement {:.2}%",
        fit.pattern.windows().len(),
        fit.pattern.globals().len(),
        fit.agreement * 100.0
    );

    // Compile and validate: structural, numerical and physical checks.
    let salo = Salo::default_config();
    let shape = AttentionShape::new(n, 32, 1)?;
    let compiled = salo.compile(&pattern, &shape)?;
    let report = validate(&salo, &compiled, &pattern, ValidationConfig::default())?;
    println!(
        "validation: coverage exact = {}, max |err| = {:.4}, saturations = {}, \
         buffers fit = {}",
        report.coverage_exact, report.max_abs_error, report.saturation_events, report.buffers.fits
    );
    assert!(report.is_ok());

    // And the boundary of the pattern language: BigBird-style random
    // links are the part SALO cannot express.
    let bigbird = bigbird_like_mask(n, 9, 2, 3, 7)?;
    let support = analyze_support(&bigbird, FitConfig::default());
    println!(
        "BigBird-like mask: {:.1}% expressible as windows+globals, residual {} \
         random links (would need a gather unit)",
        support.coverage * 100.0,
        support.residual_nnz
    );
    println!("ok");
    Ok(())
}
