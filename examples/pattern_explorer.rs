//! The Fig. 2 pattern gallery: renders the surveyed sparse attention
//! mechanisms as ASCII and prints their statistics.
//!
//! Run with: `cargo run --release --example pattern_explorer`

use salo::patterns::{
    grid_2d, longformer, render_ascii, sparse_transformer, star_transformer, RenderOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RenderOptions { max_cells: 32, ..RenderOptions::default() };
    let gallery = [
        ("Longformer (Fig. 2a): sliding window + global token", longformer(64, 12, 1)?),
        ("Star Transformer (Fig. 2b): trigram window + relay", star_transformer(64)?),
        (
            "Sparse Transformer (Fig. 2c): causal local + strided columns",
            sparse_transformer(64, 8, 6)?,
        ),
        ("ViL: 2-D window on an 8x8 grid, flattened", grid_2d(8, 8, 3, 3, 1)?),
    ];
    for (title, pattern) in gallery {
        let s = pattern.stats();
        println!("{title}");
        println!(
            "  n={} windows={} globals={} nnz={} density={:.3}",
            s.n, s.num_windows, s.num_globals, s.nnz, s.density
        );
        println!("{}", indent(&render_ascii(&pattern, opts)));
    }
    Ok(())
}

fn indent(block: &str) -> String {
    block.lines().map(|l| format!("  {l}\n")).collect()
}
