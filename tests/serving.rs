//! Integration tests for the `salo-serve` runtime: batched multi-worker
//! execution is bit-identical to the one-shot `Salo` API, responses come
//! back in submission order, and the plan cache behaves as advertised
//! end to end.

use salo::core::{AttentionRequest, Engine, Salo};
use salo::scheduler::HardwareMeta;
use salo::serve::{
    GenerationShape, GenerationTraffic, SaloServer, ServeOptions, ServeRequest, TrafficMix,
};
use salo::sim::AcceleratorConfig;

fn options(workers: usize) -> ServeOptions {
    ServeOptions { workers, max_batch: 4, ..Default::default() }
}

#[test]
fn batched_multi_worker_execution_is_bit_identical_to_one_shot() {
    let config = AcceleratorConfig::default();
    let mix = TrafficMix::demo_mix();
    let total = 12u64;

    let server = SaloServer::start(config.clone(), options(4));
    for i in 0..total {
        server.submit(mix.request(i)).expect("submit");
    }

    let one_shot = Salo::new(config);
    for i in 0..total {
        let response = server.recv().expect("response");
        assert_eq!(response.id, i, "ordered delivery");
        let run = response.output().expect("batched execution succeeds");

        let request = mix.request(i);
        let mut engine = one_shot.engine();
        let handle = engine.prepare(&request.pattern, &request.shape).expect("compile");
        let exact = engine
            .execute(AttentionRequest::Prefill {
                pattern: handle,
                shape: request.shape,
                heads: request.heads.clone(),
            })
            .expect("one-shot execution")
            .into_prefill()
            .expect("prefill response");
        for (head, direct) in run.heads.iter().zip(&exact.heads) {
            assert_eq!(
                Some(&head.raw),
                direct.raw.as_ref(),
                "request {i}: bit-identical fixed-point output"
            );
            assert_eq!(
                Some(&head.weights_q16),
                direct.weights_q16.as_ref(),
                "request {i}: identical weights"
            );
        }
    }
    let report = server.shutdown();
    assert_eq!(report.requests, total);
    assert_eq!(report.errors, 0);
}

#[test]
fn bigbird_traffic_serves_bit_identically_to_one_shot() {
    // The BigBird mix routes random-block residuals through the serving
    // runtime's batched workers; outputs must equal the one-shot engine
    // exactly, like any other workload.
    let config = AcceleratorConfig::default();
    let mix = TrafficMix::bigbird_mix();
    let total = 6u64;

    let server = SaloServer::start(config.clone(), options(2));
    for i in 0..total {
        server.submit(mix.request(i)).expect("submit");
    }

    let one_shot = Salo::new(config);
    for i in 0..total {
        let response = server.recv().expect("response");
        assert_eq!(response.id, i, "ordered delivery");
        let run = response.output().expect("batched execution succeeds");

        let request = mix.request(i);
        let mut engine = one_shot.engine();
        let handle = engine.prepare(&request.pattern, &request.shape).expect("compile");
        let exact = engine
            .execute(AttentionRequest::Prefill {
                pattern: handle,
                shape: request.shape,
                heads: request.heads.clone(),
            })
            .expect("one-shot execution")
            .into_prefill()
            .expect("prefill response");
        for (head, direct) in run.heads.iter().zip(&exact.heads) {
            assert_eq!(Some(&head.raw), direct.raw.as_ref(), "request {i}: bit-identical");
        }
    }
    let report = server.shutdown();
    assert_eq!(report.requests, total);
    assert_eq!(report.errors, 0);
}

#[test]
fn plan_cache_hits_after_first_sight_of_each_workload() {
    let mix = TrafficMix::demo_mix();
    let total = 9u64; // 3 rounds over 3 workloads
    let server = SaloServer::start(AcceleratorConfig::default(), options(2));
    for i in 0..total {
        server.submit(mix.request(i)).expect("submit");
    }
    let mut hits = 0u64;
    for _ in 0..total {
        if server.recv().expect("response").cache_hit {
            hits += 1;
        }
    }
    let report = server.shutdown();
    assert_eq!(report.cache.misses, mix.len() as u64, "one compile per workload");
    assert_eq!(report.cache.hits, total - mix.len() as u64);
    assert_eq!(hits, total - mix.len() as u64, "per-response hit flags agree");
    assert!(report.cache.hit_rate() > 0.6);
}

#[test]
fn report_accounts_every_request_and_worker() {
    let mix = TrafficMix::demo_mix();
    let total = 16u64;
    let server = SaloServer::start(AcceleratorConfig::default(), options(3));
    for i in 0..total {
        server.submit(mix.request(i)).expect("submit");
    }
    for _ in 0..total {
        let response = server.recv().expect("response");
        assert!(response.latency_s >= 0.0);
        assert!(response.batch_size >= 1);
        assert!(response.worker.is_some());
    }
    assert_eq!(server.queue_depth(), 0, "all drained");
    let report = server.shutdown();
    assert_eq!(report.requests, total);
    assert_eq!(report.per_worker_requests.len(), 3);
    assert_eq!(report.per_worker_requests.iter().sum::<u64>(), total);
    assert!(report.batches >= 1);
    assert!(report.mean_batch_size >= 1.0);
    assert!(report.max_queue_depth >= 1);
    assert!(report.sim_cycles > 0, "simulated cycles aggregated");
    assert!(report.sim_energy_j > 0.0);
    assert_eq!(report.latency.count, total);
    assert!(report.throughput_rps > 0.0);
    // The report pretty-prints without panicking.
    assert!(report.to_string().contains("plan cache"));
}

#[test]
fn invalid_requests_are_rejected_at_submission() {
    let server = SaloServer::start(AcceleratorConfig::default(), options(1));
    let mix = TrafficMix::demo_mix();
    let mut bad = mix.request(0);
    bad.heads.pop(); // head count no longer matches the shape
    assert!(server.submit(bad).is_err());
    let report = server.shutdown();
    assert_eq!(report.requests, 0, "rejected request never entered the pipeline");
}

#[test]
fn single_worker_small_array_stays_deterministic() {
    // A non-default accelerator geometry flows through the cache key: the
    // same pattern compiled for an 8x8 array must not collide with the
    // default 32x32 plans.
    let small = AcceleratorConfig {
        hw: HardwareMeta::new(8, 8, 1, 1).expect("geometry"),
        ..Default::default()
    };
    let mix = TrafficMix::demo_mix();
    let server = SaloServer::start(small.clone(), options(1));
    let request = mix.request(0);
    server.submit(request.clone()).expect("submit");
    let run = server.recv().expect("response").output().expect("success").clone();
    let report = server.shutdown();
    assert_eq!(report.requests, 1);

    let one_shot = Salo::new(small);
    let mut engine = one_shot.engine();
    let handle = engine.prepare(&request.pattern, &request.shape).expect("compile");
    let exact = engine
        .execute(AttentionRequest::Prefill {
            pattern: handle,
            shape: request.shape,
            heads: request.heads.clone(),
        })
        .expect("execute")
        .into_prefill()
        .expect("prefill response");
    for (served, direct) in run.heads.iter().zip(&exact.heads) {
        assert_eq!(Some(&served.raw), direct.raw.as_ref());
    }
}

#[test]
fn decode_at_scale_reclaims_pages_within_a_bounded_pool() {
    // Two hundred concurrent sessions against per-worker page pools that
    // are deliberately too small to hold the deep cohort's full contexts
    // without reclamation: 16 deep sessions alone would pin
    // 16 * (512 / 8) = 1024 pages if nothing were ever freed, yet the
    // bound below holds because the reclaimer returns every page behind
    // the live horizon. Zero exhaustions is therefore a real claim about
    // horizon reclamation, not about the pool being oversized.
    let context = 512;
    let window = 32;
    let (shallow_sessions, deep_sessions) = (184u64, 16u64);
    let (shallow_steps, deep_steps) = (4usize, 48usize);
    let pool_pages = 512;
    let pattern = salo::patterns::HybridPattern::builder(context)
        .window(salo::patterns::Window::causal(window).expect("window"))
        .global_token(0)
        .build()
        .expect("pattern");
    let shallow = GenerationTraffic::new(vec![GenerationShape {
        pattern: pattern.clone(),
        head_dim: 16,
        num_heads: 1,
        prompt_len: 1,
    }])
    .expect("shallow mix");
    let deep = GenerationTraffic::new(vec![GenerationShape {
        pattern,
        head_dim: 16,
        num_heads: 1,
        prompt_len: context - deep_steps,
    }])
    .expect("deep mix");

    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions {
            workers: 2,
            decode_page_rows: Some(8),
            decode_pool_pages: Some(pool_pages),
            ..Default::default()
        },
    );
    let mut handles = Vec::new();
    let mut tokens = Vec::new();
    for i in 0..deep_sessions {
        let (request, steps) = deep.session_bounded(i, deep_steps);
        let handle = server.open_session(request).expect("open deep");
        handle.wait_open().expect("deep open");
        handles.push(handle);
        tokens.push(steps);
    }
    for i in 0..shallow_sessions {
        let (request, steps) = shallow.session_bounded(i, shallow_steps);
        handles.push(server.open_session(request).expect("open shallow"));
        tokens.push(steps);
    }
    for handle in &handles[deep_sessions as usize..] {
        handle.wait_open().expect("shallow open");
    }

    // Lockstep rounds, whole round submitted before draining so the
    // worker queues back up and the scheduler tick fuses the steps.
    let mut submitted = 0u64;
    for round in 0..deep_steps.max(shallow_steps) {
        for (handle, stream) in handles.iter().zip(&tokens) {
            if let Some(token) = stream.get(round) {
                server.step_session(handle.id(), token.clone()).expect("step");
                submitted += 1;
            }
        }
        for (handle, stream) in handles.iter().zip(&tokens) {
            if round < stream.len() {
                let step = handle.next_step().expect("step result");
                assert_eq!(step.heads.len(), 1);
            }
        }
    }
    for handle in &handles {
        server.close_session(handle.id()).expect("close");
    }

    let report = server.shutdown();
    assert_eq!(report.decode_sessions, shallow_sessions + deep_sessions);
    assert_eq!(report.decode_steps, submitted);
    assert_eq!(report.decode_step_errors, 0);
    assert_eq!(report.decode_pool_exhausted, 0, "bounded pool never ran dry");
    assert!(report.decode_page_reclaims > 0, "deep cohort must trigger horizon reclamation");
    assert!(report.decode_peak_resident_pages > 0);
    assert!(
        report.decode_peak_pool_pages <= pool_pages as u64,
        "peak occupancy {} exceeded the configured bound {}",
        report.decode_peak_pool_pages,
        pool_pages
    );
    assert!(report.decode_resident_kv_byte_steps > 0, "residency gauge fed by every step");
}

#[test]
fn request_roundtrip_from_workload() {
    // ServeRequest::from_workload feeds the same heads the one-shot path
    // would generate; spot-check the invariants the batcher relies on.
    let mix = TrafficMix::demo_mix();
    for (i, workload) in mix.workloads().iter().enumerate() {
        let request = ServeRequest::from_workload(workload, i as u64);
        assert_eq!(request.heads.len(), workload.shape.num_heads);
        assert_eq!(request.pattern.fingerprint(), workload.pattern.fingerprint());
    }
}
