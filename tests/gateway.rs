//! Gateway integration suite, over real loopback sockets: wire-driven
//! decode sessions are bit-identical to the in-process core session,
//! admission control rejects a flooding tenant while a well-behaved one
//! is served with bounded queue wait, malformed frames get typed error
//! replies without killing well-framed neighbours, and a graceful drain
//! closes live sessions with terminal `Closed` frames.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use salo::core::Salo;
use salo::gateway::wire::{self, encode_request, ErrorCode, Header, Request, Response, WireError};
use salo::gateway::{Gateway, GatewayClient, GatewayError, GatewayOptions};
use salo::kernels::Qkv;
use salo::models::longformer_layer;
use salo::serve::{GenerationTraffic, ServeOptions};
use salo::sim::AcceleratorConfig;

fn unit_gateway(options: GatewayOptions) -> Gateway {
    Gateway::bind("127.0.0.1:0", AcceleratorConfig::default(), options).expect("bind gateway")
}

fn one_worker() -> GatewayOptions {
    GatewayOptions {
        serve: ServeOptions { workers: 1, ..Default::default() },
        ..Default::default()
    }
}

/// A session driven over TCP — open, step-by-step decode, close — must
/// reproduce [`Salo::decode_session`] on the same pattern byte for byte:
/// raw `i16` rows, Q.16 softmax weights, `f32` output bits, positions.
/// A wire prefill must likewise reproduce the engine's prefill output.
#[test]
fn socket_decode_is_bit_identical_to_in_process_session() {
    let gateway = unit_gateway(one_worker());
    let mut client = GatewayClient::connect(gateway.local_addr(), 1).expect("connect");

    // Prefill: wire vs the engine API on the same configuration.
    let workload = longformer_layer(64, 8, 16, 1).expect("workload");
    let qkv = Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 7);
    let (heads, _, _) = client
        .prefill(workload.pattern.clone(), workload.shape, vec![qkv.clone()])
        .expect("wire prefill");
    let oracle = {
        use salo::core::{AttentionRequest, Engine, PatternHandle};
        let salo = Salo::new(AcceleratorConfig::default());
        let mut engine = salo.engine();
        engine
            .execute(AttentionRequest::Prefill {
                pattern: PatternHandle::from_pattern(workload.pattern.clone()),
                shape: workload.shape,
                heads: vec![qkv],
            })
            .expect("oracle prefill")
            .into_prefill()
            .expect("prefill response")
    };
    assert_eq!(heads.len(), 1);
    let oracle_head = &oracle.heads[0];
    let oracle_raw = oracle_head.raw.as_ref().expect("oracle raw");
    assert_eq!(heads[0].raw.rows(), oracle_raw.rows());
    let wire_raw = heads[0].raw.as_slice();
    let reference_raw: Vec<i16> = oracle_raw.as_slice().iter().map(|x| x.raw()).collect();
    assert_eq!(wire_raw, reference_raw.as_slice(), "prefill raw rows diverged");
    assert_eq!(
        &heads[0].weights_q16,
        oracle_head.weights_q16.as_ref().expect("oracle weights"),
        "prefill weights diverged"
    );
    let wire_bits: Vec<u32> = heads[0].output.as_slice().iter().map(|x| x.to_bits()).collect();
    let reference_bits: Vec<u32> =
        oracle_head.output.as_slice().iter().map(|x| x.to_bits()).collect();
    assert_eq!(wire_bits, reference_bits, "prefill f32 bits diverged");

    // Decode: open -> step xN -> close against the core session. Shape 1
    // of the demo mix is single-head, matching `decode_session`.
    let steps = 12;
    let (request, tokens) = GenerationTraffic::demo_mix().session_bounded(1, steps);
    let salo = Salo::new(AcceleratorConfig::default());
    let mut oracle = salo.decode_session(&request.pattern, request.head_dim).expect("oracle");
    oracle.prime_rows(&request.prompt[0], 0..request.prompt[0].seq_len()).expect("oracle prime");

    let opened = client
        .open_session(request.pattern, request.head_dim, request.num_heads, request.prompt)
        .expect("wire open");
    assert_eq!(opened.min_step, oracle.min_step() as u64);
    assert_eq!(opened.position, oracle.position() as u64);
    assert_eq!(opened.capacity, oracle.capacity() as u64);
    for token in &tokens {
        let (position, heads) = client.step(opened.session, token.clone()).expect("wire step");
        let reference = oracle.step(&token[0].q, &token[0].k, &token[0].v).expect("oracle step");
        assert_eq!(position, reference.position as u64, "position diverged");
        let head = &heads[0];
        let raw: Vec<i16> = reference.raw.iter().map(|x| x.raw()).collect();
        assert_eq!(head.raw.as_deref(), Some(raw.as_slice()), "raw row diverged");
        assert_eq!(head.weight_q16, Some(reference.weight_q16), "weight diverged");
        let wire_bits: Vec<u32> = head.output.iter().map(|x| x.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.output.iter().map(|x| x.to_bits()).collect();
        assert_eq!(wire_bits, reference_bits, "f32 output bits diverged");
    }
    let closed_at = client.close(opened.session).expect("wire close");
    assert_eq!(closed_at, Some(oracle.position() as u64), "final position diverged");

    let report = gateway.shutdown();
    assert_eq!(report.serve.decode_step_errors, 0);
    assert_eq!(report.rejected_overloaded, 0);
}

/// Two tenants, one flooding: the flooder is clamped at its own quota
/// with typed `Overloaded` rejections (retry hint included) while the
/// well-behaved tenant's requests all succeed with bounded queue wait.
#[test]
fn flooding_tenant_is_rejected_while_good_tenant_is_served() {
    let options = GatewayOptions { tenant_quota: 3, ..one_worker() };
    let gateway = unit_gateway(options);
    let addr = gateway.local_addr();

    let workload = longformer_layer(64, 8, 16, 1).expect("workload");
    let make_request = |seed: u64| Request::Prefill {
        pattern: workload.pattern.clone(),
        shape: workload.shape,
        heads: vec![Qkv::random(workload.shape.seq_len, workload.shape.head_dim, seed)],
    };

    // Tenant 9 floods: 32 pipelined sends, no reads until the harvest.
    let flood_total = 32u64;
    let mut flooder = GatewayClient::connect(addr, 9).expect("connect flooder");
    flooder.set_read_timeout(Some(Duration::from_secs(60))).expect("deadline");
    for i in 0..flood_total {
        flooder.send(&make_request(i)).expect("pipelined send");
    }

    // Tenant 2 runs a sequential closed loop against the backlog.
    let good_total = 8u64;
    let mut good = GatewayClient::connect(addr, 2).expect("connect good tenant");
    good.set_read_timeout(Some(Duration::from_secs(60))).expect("deadline");
    for i in 0..good_total {
        match good.call(&make_request(100 + i)) {
            Ok(Response::PrefillDone { .. }) => {}
            other => panic!("good tenant request {i} failed: {other:?}"),
        }
    }

    // Harvest the flood: every pipelined request gets a reply — either
    // completed work or a typed rejection — never a hang.
    let (mut admitted, mut rejected) = (0u64, 0u64);
    for _ in 0..flood_total {
        match flooder.recv().expect("flood reply") {
            (_, Response::PrefillDone { .. }) => admitted += 1,
            (_, Response::Error(frame)) => {
                assert_eq!(frame.code, ErrorCode::Overloaded, "unexpected error: {frame:?}");
                assert!(frame.retry_after_ms.is_some(), "Overloaded needs a retry hint");
                rejected += 1;
            }
            (_, other) => panic!("unexpected flood reply: {other:?}"),
        }
    }
    assert!(rejected >= 1, "the flood never tripped admission control");
    assert_eq!(admitted + rejected, flood_total);

    // The starved tenant's queue wait stays bounded: DRR gives it a
    // quantum every round, so its p99 cannot absorb the whole backlog.
    let wait_p99_ns =
        gateway.metrics().histogram("gateway.tenant.2.queue_wait_ns").snapshot().quantile(0.99);
    assert!(wait_p99_ns < 10_000_000_000, "good tenant p99 queue wait unbounded: {wait_p99_ns} ns");

    let report = gateway.shutdown();
    assert_eq!(report.rejected_overloaded, rejected);
    let good_counters = report.serve.tenants.get(&2).expect("good tenant counted");
    assert_eq!(good_counters.requests, good_total);
    assert_eq!(good_counters.rejections, 0, "good tenant must see no rejections");
    let flood_counters = report.serve.tenants.get(&9).expect("flooder counted");
    assert_eq!(flood_counters.requests, admitted);
    assert_eq!(flood_counters.rejections, rejected);
}

/// Malformed input over a raw socket: a well-framed but undecodable
/// payload draws a typed `BadFrame` reply and the connection keeps
/// serving; an oversized length prefix draws a typed reply and a clean
/// close — never a hang or a panic.
#[test]
fn malformed_frames_get_typed_errors_without_killing_the_connection() {
    let gateway = unit_gateway(one_worker());
    let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect raw");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("deadline");

    // Well-framed garbage (bad version byte): typed error, frame
    // boundary intact.
    let mut garbage = (24u32).to_le_bytes().to_vec();
    garbage.extend_from_slice(&[0xAB; 24]);
    stream.write_all(&garbage).expect("write garbage");
    let payload = wire::read_frame(&mut stream).expect("error reply");
    let (_, response) = wire::decode_response(&payload).expect("decodable reply");
    match response {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }

    // The same connection still serves well-formed requests.
    let stats = encode_request(Header { tenant: 1, request_id: 42 }, &Request::Stats);
    wire::write_frame(&mut stream, &stats).expect("write stats");
    let payload = wire::read_frame(&mut stream).expect("stats reply");
    let (header, response) = wire::decode_response(&payload).expect("decodable stats");
    assert_eq!(header.request_id, 42);
    assert!(matches!(response, Response::Stats { .. }), "stats after garbage: {response:?}");

    // A hostile length prefix: typed error, then the gateway hangs up.
    stream.write_all(&u32::MAX.to_le_bytes()).expect("write hostile length");
    let payload = wire::read_frame(&mut stream).expect("framing error reply");
    let (_, response) = wire::decode_response(&payload).expect("decodable reply");
    match response {
        Response::Error(frame) => assert_eq!(frame.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    match wire::read_frame(&mut stream) {
        Err(WireError::Truncated { .. } | WireError::Io(_)) => {}
        other => panic!("expected a closed connection, got {other:?}"),
    }

    let report = gateway.shutdown();
    assert_eq!(report.admitted, 0, "no malformed frame may reach the runtime");
}

/// Graceful drain: a live decode session is closed with a terminal
/// `Closed` frame, the runtime finishes clean within the deadline, and
/// any late frames surface as typed `Draining` errors.
#[test]
fn drain_closes_live_sessions_with_terminal_closed_frames() {
    let gateway = unit_gateway(one_worker());
    let mut client = GatewayClient::connect(gateway.local_addr(), 4).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("deadline");

    let (request, tokens) = GenerationTraffic::demo_mix().session_bounded(1, 4);
    let opened = client
        .open_session(request.pattern, request.head_dim, request.num_heads, request.prompt)
        .expect("open");
    let (_, heads) = client.step(opened.session, tokens[0].clone()).expect("step");
    assert_eq!(heads.len(), 1);

    let report = gateway.shutdown();
    assert!(report.drained_in_deadline, "drain exceeded its deadline");
    assert_eq!(report.serve.decode_sessions, 1);
    assert_eq!(report.serve.decode_session_errors, 0);

    // The drain must have delivered a terminal Closed for the live
    // session before the connection went away.
    let mut saw_terminal_close = false;
    loop {
        match client.recv() {
            Ok((_, Response::Closed { session, .. })) if session == opened.session => {
                saw_terminal_close = true;
            }
            Ok((_, Response::Error(frame))) => {
                assert_eq!(frame.code, ErrorCode::Draining, "unexpected error: {frame:?}");
            }
            Ok(_) => {}
            Err(GatewayError::Wire(_)) => break, // connection closed
            Err(other) => panic!("unexpected client error: {other}"),
        }
    }
    assert!(saw_terminal_close, "no terminal Closed frame for the live session");
}
