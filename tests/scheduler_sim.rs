//! Integration of the scheduler with the simulator: coverage audits,
//! window-splitting equivalence, and the reordering path.

use salo::fixed::{merge_partials, PartialRow, RecipUnit};
use salo::kernels::{fixed_sparse_attention, FixedAttention, Qkv};
use salo::patterns::{longformer, sliding_only, HybridPattern, Window};
use salo::scheduler::{verify_coverage, ExecutionPlan, HardwareMeta, Permutation};
use salo::sim::{AcceleratorConfig, SpatialAccelerator};

#[test]
fn paper_workload_plans_are_exact_at_scale() {
    // Mid-size instances of each Table 2 family, full coverage audit.
    let hw = HardwareMeta::default();
    for pattern in
        [longformer(512, 64, 1).unwrap(), salo::patterns::grid_2d(16, 16, 5, 5, 1).unwrap()]
    {
        let plan = ExecutionPlan::build(&pattern, hw).unwrap();
        let report = verify_coverage(&plan, &pattern);
        assert!(report.is_exact(), "coverage: {:?}", report.missing.first());
    }
}

#[test]
fn window_split_count_matches_hand_formula() {
    // n=512, w=64 on a 32x32 array: 16 tiles x 2 chunks = 32 candidate
    // passes; boundary clipping keeps all active (window spans sequence).
    let pattern = sliding_only(512, 64).unwrap();
    let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
    assert_eq!(plan.passes().len(), 32);
}

#[test]
fn splitting_is_invisible_in_the_output() {
    // The same rows computed with one chunk vs many chunks agree to merge
    // rounding: Eq. 2 renormalization at the fixed-point level.
    let n = 64;
    let d = 8;
    let pattern = sliding_only(n, 33).unwrap();
    let qkv = Qkv::random(n, d, 5);
    let scale = 1.0 / (d as f32).sqrt();

    let run = |cols: usize| {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(8, cols, 0, 0).unwrap(),
            ..Default::default()
        };
        let sim = SpatialAccelerator::new(config);
        let plan = ExecutionPlan::build(&pattern, sim.config().hw).unwrap();
        sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap()
    };
    let wide = run(64); // whole window in one pass
    let narrow = run(8); // five chunks per row
    let diff = wide.output.max_abs_diff(&narrow.output);
    assert!(diff < 0.05, "split sensitivity {diff}");
    // Total softmax weights agree (sum of exponentials is split-invariant).
    for (a, b) in wide.weights_q16.iter().zip(&narrow.weights_q16) {
        let rel = (*a as f64 - *b as f64).abs() / (*a as f64).max(1.0);
        assert!(rel < 0.02, "weight mismatch {a} vs {b}");
    }
}

#[test]
fn reordering_equals_logical_dilated_execution() {
    // Physically reordering Q/K/V with the dilation permutation and
    // running a *sliding* window equals running the dilated window
    // logically — the §4.2 equivalence, on real data.
    let n = 48;
    let d = 8;
    let dil = 3;
    // Dilated window: offsets {-6, -3, 0, 3, 6}.
    let dilated =
        HybridPattern::builder(n).window(Window::dilated(-6, 6, dil).unwrap()).build().unwrap();
    let qkv = Qkv::random(n, d, 21);
    let dp = FixedAttention::new(d);
    let direct = fixed_sparse_attention(&dilated, &qkv.q, &qkv.k, &qkv.v, &dp).unwrap();

    // Reordered execution: group tokens by residue class.
    let perm = Permutation::dilation_grouping(n, dil);
    let permute = |m: &salo::kernels::Matrix<f32>| m.permute_rows(perm.forward());
    let (qp, kp, vp) = (permute(&qkv.q), permute(&qkv.k), permute(&qkv.v));
    // In reordered space, same-class neighbours sit adjacent: the dilated
    // window becomes sliding offsets {-2..2}, but only within a class.
    // Class boundaries are where the sliding approximation would leak, so
    // restrict to interior rows when comparing.
    let sliding = sliding_only(n, 5).unwrap();
    let reordered = fixed_sparse_attention(&sliding, &qp, &kp, &vp, &dp).unwrap();
    let back = Permutation::from_forward(perm.inverse().forward().to_vec());
    let restored = reordered.to_f32().permute_rows(back.forward());

    let class_len = n / dil;
    let mut checked = 0;
    for i in 0..n {
        let class_pos = perm.inverse().forward()[i] % class_len;
        // Interior of its class: the sliding window stays inside the class.
        if class_pos >= 2 && class_pos + 2 < class_len {
            for c in 0..d {
                let diff = (restored.get(i, c) - direct.to_f32().get(i, c)).abs();
                assert!(diff < 0.05, "row {i} col {c}: {diff}");
            }
            checked += 1;
        }
    }
    assert!(checked > n / 2, "checked {checked} interior rows");
}

#[test]
fn fixed_merge_matches_f64_merge() {
    // Cross-layer: the fixed-point WSM and the f64 Eq. 2 reference agree.
    let recip = RecipUnit::new(64);
    let q19 = |v: f64| (v * (1u64 << 19) as f64).round() as i64;
    let a = PartialRow { weight_q16: 3 << 16, out_q19: vec![q19(1.5), q19(-0.75)] };
    let b = PartialRow { weight_q16: 5 << 16, out_q19: vec![q19(0.5), q19(2.0)] };
    let merged = merge_partials(&a, &b, &recip).unwrap();
    let expect = |x: f64, y: f64| (3.0 * x + 5.0 * y) / 8.0;
    let out = merged.to_f64();
    assert!((out[0] - expect(1.5, 0.5)).abs() < 0.01);
    assert!((out[1] - expect(-0.75, 2.0)).abs() < 0.01);
}

mod term_coverage {
    //! Exactly-once coverage over random compositions of all five IR
    //! term families (window, global, strided, block-sparse, random
    //! blocks — plus explicit support) on a small PE array.

    use proptest::prelude::*;
    use salo::patterns::{BlockLayout, HybridPattern, PatternTerm, SupportRuns, Window};
    use salo::scheduler::{verify_coverage, ExecutionPlan, HardwareMeta};

    /// Raw term descriptor, materialized once `n` is known (the vendored
    /// proptest has no flat_map, so `n`-dependent values are reduced
    /// modulo their valid ranges).
    type RawTerm = (u8, (bool, usize, usize), (usize, usize, usize), u64, Vec<Vec<u32>>);

    fn arb_raw_term() -> impl Strategy<Value = RawTerm> {
        (
            0u8..6,
            (any::<bool>(), 1usize..5, 1usize..10),
            (0usize..64, 0usize..64, 0usize..64),
            any::<u64>(),
            prop::collection::vec(prop::collection::vec(0u32..64, 0..3), 0..6),
        )
    }

    fn build_term(n: usize, raw: RawTerm) -> PatternTerm {
        let (kind, (sym, dil, width), (a, b, c), seed, mut rows) = raw;
        match kind {
            0 => {
                let w = if sym {
                    Window::symmetric(width).expect("symmetric")
                } else {
                    Window::dilated(-((width * dil) as i64), 0, dil).expect("dilated")
                };
                PatternTerm::Window(w)
            }
            1 => PatternTerm::Global { token: a % n },
            2 => PatternTerm::Strided { stride: 1 + a % 7, local: 1 + b % 7 },
            3 => {
                let block_rows = 1 + a % 6;
                let grid = n.div_ceil(block_rows);
                let layout = match b % 3 {
                    0 => BlockLayout::Diagonal,
                    1 => BlockLayout::Banded { radius: c % 3 },
                    _ => BlockLayout::Explicit(vec![(c % grid, a % grid)]),
                };
                PatternTerm::BlockSparse { block_rows, layout }
            }
            4 => PatternTerm::RandomBlocks { count: a % 4, seed },
            _ => {
                rows.resize(n, Vec::new());
                for row in &mut rows {
                    for j in row.iter_mut() {
                        *j %= n as u32;
                    }
                }
                PatternTerm::Support(SupportRuns::from_rows(n, &mut rows))
            }
        }
    }

    proptest! {
        /// Every schedulable composition plans with exactly-once coverage:
        /// each allowed (query, key) cell is computed by precisely one
        /// pass, no cell is missed, none is duplicated.
        #[test]
        fn random_term_compositions_plan_exactly_once(
            n in 8usize..40,
            raws in prop::collection::vec(arb_raw_term(), 1..5),
        ) {
            let terms: Vec<PatternTerm> =
                raws.into_iter().map(|raw| build_term(n, raw)).collect();
            let Ok(pattern) = HybridPattern::from_terms(n, terms) else {
                // All-empty composition; nothing to schedule.
                return Ok(());
            };
            let hw = HardwareMeta::new(8, 8, 1, 1).unwrap();
            let plan = ExecutionPlan::build(&pattern, hw).expect("plan");
            let report = verify_coverage(&plan, &pattern);
            prop_assert!(
                report.is_exact(),
                "missing {:?} spurious {:?}",
                report.missing.first(),
                report.spurious.first()
            );
        }
    }
}

#[test]
fn supplemental_passes_fill_global_gaps() {
    // A window too narrow to stream all keys past the global row: the
    // scheduler must emit supplemental passes and stay exact.
    let pattern = HybridPattern::builder(100)
        .window(Window::sliding(0, 3).unwrap())
        .global_token(50)
        .build()
        .unwrap();
    let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 1, 1).unwrap()).unwrap();
    let report = verify_coverage(&plan, &pattern);
    assert!(report.is_exact());
}
