//! Cross-crate fixed-point properties: the arithmetic layers agree with
//! each other and degrade gracefully.

use proptest::prelude::*;
use salo::fixed::{
    fixed_softmax_f64, softmax_f64, ExpLut, Fix16x8, Fix8x4, QuantizationReport, RecipUnit,
};
use salo::kernels::{fixed_sparse_attention, FixedAttention, Qkv};
use salo::patterns::sliding_only;

proptest! {
    /// Fixed softmax tracks f64 softmax within a percent per element for
    /// in-range scores.
    #[test]
    fn softmax_tracks_reference(
        scores in prop::collection::vec(-4.0f64..4.0, 1..48)
    ) {
        let exp = ExpLut::new(32);
        let recip = RecipUnit::new(64);
        let approx = fixed_softmax_f64(&scores, &exp, &recip).expect("softmax");
        let exact = softmax_f64(&scores);
        for (a, b) in approx.iter().zip(&exact) {
            prop_assert!((a - b).abs() < 0.015, "{a} vs {b}");
        }
    }

    /// Quantization round trip is within half an LSB for in-range inputs.
    #[test]
    fn quantization_round_trip(values in prop::collection::vec(-7.9f32..7.9, 1..256)) {
        let report = QuantizationReport::measure(&values);
        prop_assert!(report.max_abs_error <= 0.03125 + 1e-6);
        prop_assert_eq!(report.saturated, 0);
    }

    /// The 16-bit output conversion is monotone and saturating.
    #[test]
    fn q19_conversion_monotone(a in -5_000_000i64..5_000_000, b in -5_000_000i64..5_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Fix16x8::from_q19_acc(lo) <= Fix16x8::from_q19_acc(hi));
    }

    /// 8-bit inputs always produce attention outputs inside the value
    /// range (convexity survives quantization).
    #[test]
    fn convexity_property(seed in 0u64..500) {
        let n = 24;
        let d = 4;
        let pattern = sliding_only(n, 5).expect("pattern");
        let qkv = Qkv::random(n, d, seed);
        let out = fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v,
            &FixedAttention::new(d)).expect("attention");
        let vmax = (0..n)
            .flat_map(|i| qkv.v.row(i).to_vec())
            .fold(0.0f32, |m, x| m.max(x.abs()));
        for i in 0..n {
            for c in 0..d {
                let o = out.out.get(i, c).to_f32().abs();
                prop_assert!(o <= vmax + 0.15, "out {o} vs vmax {vmax}");
            }
        }
    }
}

#[test]
fn saturation_is_detected_on_extreme_inputs() {
    // Push V to the format edge and widen the window: outputs stay
    // convex so the accumulator never saturates, but quantization must
    // clip the inputs without wrapping.
    let values: Vec<f32> = vec![1000.0, -1000.0, 8.0, -8.0];
    let q: Vec<Fix8x4> = values.iter().map(|&v| Fix8x4::from_f32(v)).collect();
    assert_eq!(q[0], Fix8x4::MAX);
    assert_eq!(q[1], Fix8x4::MIN);
    assert_eq!(q[3], Fix8x4::MIN, "-8.0 is exactly representable as the minimum");
    assert!(q[2] == Fix8x4::MAX, "+8.0 saturates to 7.9375");
}
