//! Integration tests locking in the ablation findings (the design-choice
//! claims DESIGN.md calls out).

use salo::core::Salo;
use salo::models::{
    longformer_16k, longformer_layer, sparse_transformer_layer, star_transformer_layer,
};
use salo::patterns::longformer;
use salo::quant::sweep_fraction_bits;
use salo::scheduler::{ExecutionPlan, HardwareMeta};
use salo::sim::{AcceleratorConfig, BufferAnalysis, TrafficReport};

/// Pass pipelining buys ~1.7x on Longformer-shaped work and is what
/// carries utilization past the paper's 75 % bar.
#[test]
fn pipelining_ablation() {
    let workload = longformer_layer(2048, 256, 768, 1).unwrap();
    let run = |pipelined: bool| {
        let config = AcceleratorConfig { pipelined, ..Default::default() };
        let salo = Salo::new(config);
        let compiled = salo.compile(&workload.pattern, &workload.shape).unwrap();
        salo.estimate(&compiled)
    };
    let serialized = run(false);
    let pipelined = run(true);
    let speedup = serialized.time_s / pipelined.time_s;
    assert!((1.5..2.0).contains(&speedup), "pipelining speedup {speedup}");
    assert!(pipelined.utilization.mac_utilization > 0.75);
    assert!(serialized.utilization.mac_utilization < 0.5);
}

/// The diagonal K/V streaming reuses each vector across ~tile-height
/// queries: an order of magnitude less buffer traffic than per-cell loads.
#[test]
fn dataflow_reuse_ablation() {
    let pattern = longformer(4096, 512, 1).unwrap();
    let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
    let t = TrafficReport::from_plan(&plan, 64);
    assert!((10.0..=32.0).contains(&t.reuse_factor()), "reuse factor {}", t.reuse_factor());
}

/// Table 1's buffers are sized to the Longformer window: the working set
/// only barely exceeds the key buffer, while dense attention thrashes.
#[test]
fn buffer_sizing_ablation() {
    let config = AcceleratorConfig::default();
    let window = ExecutionPlan::build(&longformer(4096, 512, 1).unwrap(), config.hw).unwrap();
    let a = BufferAnalysis::analyze(&config, &window, 64);
    assert!(a.reload_factor < 1.1, "Longformer reload {}", a.reload_factor);
    let dense =
        ExecutionPlan::build(&salo::models::bert_base_dense(2048).unwrap(), config.hw).unwrap();
    let b = BufferAnalysis::analyze(&config, &dense, 64);
    assert!(b.reload_factor > 4.0, "dense reload {}", b.reload_factor);
}

/// The 8-bit input format's fraction-bit split peaks where the paper put
/// it (Q.4-Q.5 for normalized inputs).
#[test]
fn fraction_bit_ablation() {
    let pattern = longformer(128, 16, 1).unwrap();
    let sweep = sweep_fraction_bits(&pattern, 16, 3, &[2, 3, 4, 5, 6, 7]).unwrap();
    let best = sweep.iter().max_by(|a, b| a.sqnr_db.total_cmp(&b.sqnr_db)).unwrap();
    assert!((4..=6).contains(&best.frac_bits), "peak at Q.{}", best.frac_bits);
    let q4 = sweep.iter().find(|p| p.frac_bits == 4).unwrap();
    assert_eq!(q4.clipped, 0.0, "Q.4 never clips unit normals");
    assert!(q4.sqnr_db > 25.0, "Q.4 SQNR {}", q4.sqnr_db);
}

/// Linear scaling to the paper's longest advertised sequence: 16k tokens
/// cost ~4x the 4k layer, not 16x.
#[test]
fn long_sequence_scaling() {
    let salo = Salo::default_config();
    let t4k = {
        let w = longformer_layer(4096, 512, 768, 1).unwrap();
        salo.estimate(&salo.compile(&w.pattern, &w.shape).unwrap()).time_s
    };
    let t16k = {
        let w = longformer_16k();
        salo.estimate(&salo.compile(&w.pattern, &w.shape).unwrap()).time_s
    };
    let ratio = t16k / t4k;
    assert!((3.5..4.5).contains(&ratio), "16k/4k ratio {ratio} (linear = 4)");
}

/// The other surveyed pattern families also compile, cover exactly and
/// execute within tolerance on the default instance.
#[test]
fn other_families_schedule_cleanly() {
    let salo = Salo::default_config();
    for workload in [
        star_transformer_layer(512, 128).unwrap(),
        sparse_transformer_layer(512, 8, 8, 128).unwrap(),
    ] {
        let compiled = salo.compile(&workload.pattern, &workload.shape).unwrap();
        let report = salo::scheduler::verify_coverage(&compiled.plan, &workload.pattern);
        assert!(report.is_exact(), "{}: inexact coverage", workload.name);
        let t = salo.estimate(&compiled);
        assert!(t.cycles.total > 0);
    }
}
