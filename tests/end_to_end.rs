//! End-to-end integration: pattern -> scheduler -> simulator vs the exact
//! reference kernels, across every preset pattern family.

use salo::core::{AttentionRequest, Engine, Salo};
use salo::kernels::{multi_head_attention, sparse_attention, Qkv};
use salo::patterns::{
    grid_2d, longformer, sparse_transformer, star_transformer, AttentionShape, HybridPattern,
    Window,
};
use salo::scheduler::HardwareMeta;
use salo::sim::AcceleratorConfig;

fn small_salo() -> Salo {
    let config =
        AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
    Salo::new(config)
}

fn check_pattern(pattern: &HybridPattern, d: usize, seed: u64, tolerance: f32) {
    let salo = small_salo();
    let shape = AttentionShape::new(pattern.n(), d, 1).unwrap();
    let mut engine = salo.engine();
    let handle = engine.prepare(pattern, &shape).expect("compile");
    let head = Qkv::random(pattern.n(), d, seed);
    let out = engine
        .execute(AttentionRequest::Prefill { pattern: handle, shape, heads: vec![head.clone()] })
        .expect("execute")
        .into_prefill()
        .expect("prefill response");
    let scale = 1.0 / (d as f32).sqrt();
    let exact = sparse_attention(pattern, &head.q, &head.k, &head.v, scale).expect("reference");
    let diff = out.heads[0].output.max_abs_diff(&exact);
    assert!(diff < tolerance, "diff {diff} over tolerance {tolerance}");
    assert_eq!(out.telemetry.saturation_events, 0, "no saturation on unit-normal inputs");
}

#[test]
fn longformer_preset_end_to_end() {
    check_pattern(&longformer(96, 16, 1).unwrap(), 16, 11, 0.35);
}

#[test]
fn star_transformer_preset_end_to_end() {
    check_pattern(&star_transformer(80).unwrap(), 8, 12, 0.35);
}

#[test]
fn sparse_transformer_preset_end_to_end() {
    check_pattern(&sparse_transformer(72, 6, 5).unwrap(), 8, 13, 0.35);
}

#[test]
fn vil_grid_preset_end_to_end() {
    check_pattern(&grid_2d(10, 10, 3, 3, 1).unwrap(), 8, 14, 0.35);
}

#[test]
fn dilated_plus_global_end_to_end() {
    let p = HybridPattern::builder(64)
        .window(Window::dilated(-16, 16, 4).unwrap())
        .window(Window::symmetric(5).unwrap())
        .global_tokens([0, 31])
        .build()
        .unwrap();
    check_pattern(&p, 8, 15, 0.35);
}

#[test]
fn multi_head_layer_matches_reference() {
    let salo = small_salo();
    let pattern = longformer(64, 9, 1).unwrap();
    let shape = AttentionShape::new(64, 8, 4).unwrap();
    let mut engine = salo.engine();
    let handle = engine.prepare(&pattern, &shape).unwrap();
    let heads = Qkv::random_heads(&shape, 33);
    let run = engine
        .execute(AttentionRequest::Prefill { pattern: handle, shape, heads: heads.clone() })
        .unwrap()
        .into_prefill()
        .unwrap();
    let reference = multi_head_attention(&pattern, &heads).unwrap();
    for (h, (ours, exact)) in run.heads.iter().zip(&reference.heads).enumerate() {
        let diff = ours.output.max_abs_diff(exact);
        assert!(diff < 0.35, "head {h} diff {diff}");
    }
    // Layer latency = sum of head latencies; energy likewise.
    let per_head: f64 = run.heads.iter().map(|h| h.report.as_ref().unwrap().timing.time_s).sum();
    assert!((run.telemetry.sim_time_s.unwrap() - per_head).abs() < 1e-12);
}

#[test]
fn default_instance_handles_full_scale_compile() {
    // The real Table 2 workloads compile on the default instance; only
    // estimated here (functional execution at n=4096 belongs to benches).
    let salo = Salo::default_config();
    for (pattern, d, heads) in [
        (longformer(4096, 512, 1).unwrap(), 64usize, 12usize),
        (grid_2d(56, 56, 15, 15, 1).unwrap(), 64, 3),
        (grid_2d(28, 28, 15, 15, 1).unwrap(), 64, 6),
    ] {
        let shape = AttentionShape::new(pattern.n(), d, heads).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        assert_eq!(compiled.stats.supplemental_passes, 0, "paper workloads need no supplemental");
        let t = salo.estimate(&compiled);
        assert!(t.cycles.total > 0);
        assert!(t.utilization.mac_utilization > 0.5);
    }
}

#[test]
fn outputs_are_bounded_by_value_range() {
    // Attention outputs are convex combinations of V rows: the simulator
    // must respect that up to quantization slack.
    let salo = small_salo();
    let pattern = longformer(48, 7, 1).unwrap();
    let shape = AttentionShape::new(48, 8, 1).unwrap();
    let mut engine = salo.engine();
    let handle = engine.prepare(&pattern, &shape).unwrap();
    let head = Qkv::random(48, 8, 99);
    let out = engine
        .execute(AttentionRequest::Prefill { pattern: handle, shape, heads: vec![head.clone()] })
        .unwrap()
        .into_prefill()
        .unwrap();
    let mut vmax = 0.0f32;
    for i in 0..48 {
        for &x in head.v.row(i) {
            vmax = vmax.max(x.abs());
        }
    }
    for i in 0..48 {
        for &o in out.heads[0].output.row(i) {
            assert!(o.abs() <= vmax + 0.1, "output {o} exceeds value range {vmax}");
        }
    }
}
