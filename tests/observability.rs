//! End-to-end observability: one traced serve burst produces spans from
//! all three layers (serving runtime, engine, simulator), the Chrome
//! trace export is well-formed, and the rebuilt `ServeReport` carries
//! bucket-exact histograms alongside the registry-backed counters.

use std::collections::BTreeSet;

use salo::serve::{GenerationTraffic, SaloServer, ServeOptions, TrafficMix};
use salo::sim::AcceleratorConfig;

/// Runs a mixed prefill/decode burst with tracing on and returns the set
/// of distinct span names the global tracer captured.
///
/// Single test per binary: the tracer and its enable flag are
/// process-global, so this file intentionally holds one traced burst and
/// derives every assertion from it.
#[test]
fn traced_burst_covers_all_layers() {
    salo::trace::set_enabled(true);

    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 2, max_batch: 4, worker_parallelism: 2, ..Default::default() },
    );

    let mix = TrafficMix::demo_mix();
    let generations = GenerationTraffic::demo_mix();

    let (request, tokens) = generations.session(0);
    let handle = server.open_session(request).unwrap();
    handle.wait_open().unwrap();
    for token in tokens.iter().take(4) {
        server.step_session(handle.id(), token.clone()).unwrap();
        handle.next_step().unwrap();
    }

    let prefills = 6u64;
    for i in 0..prefills {
        server.submit(mix.request(i)).unwrap();
    }
    for _ in 0..prefills {
        server.recv().unwrap().output().unwrap();
    }
    server.close_session(handle.id()).unwrap();
    // Session close is asynchronous; shutting down joins the workers so
    // every span (including `engine.decode_close`) is recorded before we
    // snapshot the tracer.
    let report = server.shutdown();

    // -- spans from every layer appear in one trace --
    let snapshot = salo::trace::Tracer::global().snapshot();
    let names: BTreeSet<&str> = snapshot.spans.iter().map(|s| s.name).collect();
    for expected in [
        // serving runtime
        "serve.admission",
        "serve.plan_lookup",
        "serve.batch_form",
        "serve.batch_dispatch",
        "serve.queue_wait",
        "serve.decode.queue_wait",
        "serve.reply",
        "serve.session_open",
        "serve.session_step",
        // engine
        "engine.prefill",
        "engine.decode_open",
        "engine.decode_step",
        "engine.decode_close",
        // simulator
        "sim.execute_heads",
        "sim.shard",
        "sim.execute_step",
    ] {
        assert!(names.contains(expected), "missing span {expected:?}; got {names:?}");
    }
    // Spans came from more than one thread (submitter + dispatcher +
    // workers each carry their own ring).
    let tids: BTreeSet<u64> = snapshot.spans.iter().map(|s| s.tid).collect();
    assert!(tids.len() >= 3, "expected >=3 traced threads, got {}", tids.len());

    // -- the Chrome export is loadable JSON with one event per span --
    let json = salo::trace::export_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""), "complete events use phase X");
    assert!(json.contains("\"serve.admission\""));
    assert!(json.contains("\"engine.prefill\""));
    assert!(json.contains("\"sim.shard\""));
    // Every event object carries the required trace-event keys.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), snapshot.spans.len());
    assert_eq!(json.matches("\"ts\":").count(), snapshot.spans.len());

    // -- the report is rebuilt on the registry and carries histograms --
    assert_eq!(report.requests, prefills);
    assert_eq!(report.decode_steps, 4);
    assert_eq!(report.latency_hist.count, prefills);
    assert_eq!(report.decode_step_latency_hist.count, 4);
    // The histogram tracks the same samples the summary was built from:
    // its max is the summary max to nanosecond rounding, and its
    // quantiles are ordered and bounded by it.
    let hist_max = report.latency_hist.max as f64 / 1e9;
    assert!(
        (hist_max - report.latency.max_s).abs() <= 1e-9,
        "histogram max {hist_max} vs summary max {}",
        report.latency.max_s
    );
    let p50 = report.latency_hist.quantile(0.50);
    let p99 = report.latency_hist.quantile(0.99);
    assert!(p50 <= p99 && p99 <= report.latency_hist.max);
    assert!(p50 >= report.latency_hist.min);
}
