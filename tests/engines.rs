//! Backend-equivalence suite for the unified engine API: the same typed
//! [`AttentionRequest`]s driven through all three engines —
//! `LoweredEngine` and `SystolicEngine` must agree **bit for bit** (raw
//! outputs, Q.16 weights, saturation counts), and `ReferenceEngine`
//! (exact `f32` softmax attention) must agree within the documented
//! fixed-point error bound — on prefill and decode alike.
//!
//! The bound: inputs are unit-normal, quantized to Q.4 activations with a
//! Q.16 softmax; across the whole repo's test matrix the observed error
//! stays under 0.4 (see `EXPERIMENTS.md`, "Reference-vs-fixed error").

use proptest::prelude::*;
use salo::core::{AttentionRequest, Engine, HeadStep, PrefillOutput, Salo, SaloError, TokenQkv};
use salo::kernels::{Matrix, Qkv};
use salo::patterns::{AttentionShape, HybridPattern, Window};
use salo::scheduler::HardwareMeta;
use salo::sim::AcceleratorConfig;

/// The documented fixed-point-vs-float bound for unit-normal inputs.
const FIXED_POINT_BOUND: f32 = 0.4;

fn small_salo() -> Salo {
    let config =
        AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
    Salo::new(config)
}

/// Runs one prefill request through an engine.
fn prefill_on(
    engine: &mut dyn Engine,
    pattern: &HybridPattern,
    shape: AttentionShape,
    heads: &[Qkv],
) -> PrefillOutput {
    let handle = engine.prepare(pattern, &shape).expect("prepare");
    engine
        .execute(AttentionRequest::Prefill { pattern: handle, shape, heads: heads.to_vec() })
        .expect("prefill")
        .into_prefill()
        .expect("prefill response")
}

/// The first `rows` rows of a full-sequence head.
fn prompt_of(full: &Qkv, rows: usize) -> Qkv {
    let d = full.head_dim();
    Qkv::new(
        Matrix::from_fn(rows, d, |i, j| full.q.get(i, j)),
        Matrix::from_fn(rows, d, |i, j| full.k.get(i, j)),
        Matrix::from_fn(rows, d, |i, j| full.v.get(i, j)),
    )
    .expect("prompt rows")
}

/// Opens a decode session on an engine and steps it to capacity,
/// returning each step's per-head outputs.
fn decode_on(
    engine: &mut dyn Engine,
    pattern: &HybridPattern,
    d: usize,
    num_heads: usize,
    full: &[Qkv],
) -> Vec<Vec<HeadStep>> {
    let n = pattern.n();
    let shape = AttentionShape::new(n, d, num_heads).expect("shape");
    let handle = engine.prepare(pattern, &shape).expect("prepare");
    let min_step = pattern.decode_view().expect("decode view").min_step();
    let prompt: Vec<Qkv> = full.iter().map(|h| prompt_of(h, min_step)).collect();
    let opened = engine
        .execute(AttentionRequest::DecodeOpen {
            session: 1,
            pattern: handle,
            head_dim: d,
            num_heads,
            prompt,
        })
        .expect("open")
        .into_opened()
        .expect("opened response");
    assert_eq!(opened.capacity, n);
    assert_eq!(opened.position, min_step);

    let mut steps = Vec::new();
    for t in min_step..n {
        let token: Vec<TokenQkv> = full.iter().map(|h| TokenQkv::from_row(h, t)).collect();
        let step = engine
            .execute(AttentionRequest::DecodeStep { session: 1, token })
            .expect("step")
            .into_step()
            .expect("step response");
        assert_eq!(step.position, t);
        steps.push(step.heads);
    }
    let closed = engine
        .execute(AttentionRequest::DecodeClose { session: 1 })
        .expect("close")
        .into_closed()
        .expect("closed response");
    assert_eq!(closed.position, n);
    assert!(!engine.has_session(1));
    steps
}

/// The acceptance test: one random hybrid pattern through all three
/// engines, prefill and decode, asserting lowered≡systolic bit-identity
/// and reference agreement within the documented bound.
#[test]
fn all_three_engines_agree_on_one_random_hybrid_pattern() {
    let salo = small_salo();
    // A dilated window plus a global token — the hybrid shape SALO is
    // built for.
    let pattern = HybridPattern::builder(36)
        .window(Window::dilated(-8, 0, 2).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let d = 8;
    let num_heads = 2;
    let shape = AttentionShape::new(36, d, num_heads).unwrap();
    let heads = Qkv::random_heads(&shape, 4242);

    // --- Capabilities describe the trio. ---
    let mut engines = salo.all_engines();
    assert_eq!(engines.len(), 3);
    assert!(engines.iter().all(|e| e.capabilities().supports_decode));
    assert_eq!(
        engines.iter().map(|e| e.capabilities().bit_exact).collect::<Vec<_>>(),
        [true, true, false]
    );
    assert_eq!(
        engines.iter().map(|e| e.capabilities().event_accurate).collect::<Vec<_>>(),
        [false, true, false]
    );

    // --- Prefill. ---
    let outs: Vec<PrefillOutput> =
        engines.iter_mut().map(|e| prefill_on(e.as_mut(), &pattern, shape, &heads)).collect();
    let (lowered, systolic, reference) = (&outs[0], &outs[1], &outs[2]);
    assert_eq!(lowered.telemetry.engine, "lowered");
    assert_eq!(systolic.telemetry.engine, "systolic");
    assert_eq!(reference.telemetry.engine, "reference");
    for h in 0..num_heads {
        // Bit-identity between the two fixed-point backends.
        assert_eq!(lowered.heads[h].raw, systolic.heads[h].raw, "head {h} raw bits");
        assert_eq!(lowered.heads[h].weights_q16, systolic.heads[h].weights_q16, "head {h} weights");
        // The reference is float: no fixed-point artifacts, bounded error.
        assert!(reference.heads[h].raw.is_none());
        let diff = lowered.heads[h].output.max_abs_diff(&reference.heads[h].output);
        assert!(diff < FIXED_POINT_BOUND, "head {h} prefill diff {diff}");
    }
    assert_eq!(
        lowered.telemetry.saturation_events, systolic.telemetry.saturation_events,
        "saturation counts"
    );

    // --- Decode: same pattern, token by token. ---
    let dec: Vec<Vec<Vec<HeadStep>>> =
        engines.iter_mut().map(|e| decode_on(e.as_mut(), &pattern, d, num_heads, &heads)).collect();
    assert_eq!(dec[0], dec[1], "lowered and systolic decode are bit-identical");
    for (s, (fixed, float)) in dec[0].iter().zip(&dec[2]).enumerate() {
        for h in 0..num_heads {
            assert!(fixed[h].raw.is_some() && float[h].raw.is_none());
            let diff = fixed[h]
                .output
                .iter()
                .zip(&float[h].output)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < FIXED_POINT_BOUND, "step {s} head {h} decode diff {diff}");
        }
    }
}

/// Prefill through a parallel `LoweredEngine` (heads sharded over
/// threads by the deterministic partition) stays bit-identical to the
/// sequential engine and the systolic oracle at every shard count.
#[test]
fn parallel_lowered_engine_bit_matches_systolic() {
    let salo = small_salo();
    let pattern = HybridPattern::builder(48)
        .window(Window::dilated(-10, 0, 2).unwrap())
        .global_token(0)
        .global_token(3)
        .build()
        .unwrap();
    let d = 8;
    let num_heads = 4;
    let shape = AttentionShape::new(48, d, num_heads).unwrap();
    let heads = Qkv::random_heads(&shape, 1717);

    let mut systolic = salo.systolic_engine();
    let oracle = prefill_on(&mut systolic, &pattern, shape, &heads);
    for parallelism in [1usize, 2, 4, 7] {
        let mut engine = salo.engine_with_parallelism(parallelism);
        assert_eq!(engine.parallelism(), parallelism);
        let out = prefill_on(&mut engine, &pattern, shape, &heads);
        for h in 0..num_heads {
            assert_eq!(out.heads[h].raw, oracle.heads[h].raw, "head {h} raw at p={parallelism}");
            assert_eq!(
                out.heads[h].weights_q16, oracle.heads[h].weights_q16,
                "head {h} weights at p={parallelism}"
            );
        }
        assert_eq!(
            out.telemetry.saturation_events, oracle.telemetry.saturation_events,
            "saturation counts at p={parallelism}"
        );
    }
}

#[test]
fn engine_sessions_validate_and_retire_like_the_serving_runtime() {
    let salo = small_salo();
    let mut engine = salo.engine();
    let pattern = HybridPattern::builder(16)
        .window(Window::causal(4).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let shape = AttentionShape::new(16, 4, 2).unwrap();
    let handle = engine.prepare(&pattern, &shape).unwrap();
    let heads = Qkv::random_heads(&shape, 9);
    let prompt: Vec<Qkv> = heads.iter().map(|h| prompt_of(h, 1)).collect();

    // Unknown session: steps and closes report it.
    let tok = |d: usize| TokenQkv { q: vec![0.1; d], k: vec![0.1; d], v: vec![0.1; d] };
    assert!(matches!(
        engine.execute(AttentionRequest::DecodeStep { session: 7, token: vec![tok(4); 2] }),
        Err(SaloError::UnknownSession { session: 7 })
    ));
    assert!(matches!(
        engine.execute(AttentionRequest::DecodeClose { session: 7 }),
        Err(SaloError::UnknownSession { session: 7 })
    ));

    engine
        .execute(AttentionRequest::DecodeOpen {
            session: 7,
            pattern: handle.clone(),
            head_dim: 4,
            num_heads: 2,
            prompt: prompt.clone(),
        })
        .unwrap();
    assert!(engine.has_session(7));
    assert_eq!(engine.session_position(7), Some(1));

    // Reusing a live id is rejected.
    assert!(matches!(
        engine.execute(AttentionRequest::DecodeOpen {
            session: 7,
            pattern: handle,
            head_dim: 4,
            num_heads: 2,
            prompt,
        }),
        Err(SaloError::SessionInUse { session: 7 })
    ));

    // Wrong token head count: pre-mutation, the session stays live.
    assert!(engine
        .execute(AttentionRequest::DecodeStep { session: 7, token: vec![tok(4)] })
        .is_err());
    assert!(engine.has_session(7), "validation failures do not retire the session");
    assert_eq!(engine.session_position(7), Some(1));

    // Head 0 advances, head 1 rejects its short row: desync retires it.
    assert!(engine
        .execute(AttentionRequest::DecodeStep { session: 7, token: vec![tok(4), tok(2)] })
        .is_err());
    assert!(!engine.has_session(7), "a desyncing failure retires the session");
    assert!(matches!(
        engine.execute(AttentionRequest::DecodeStep { session: 7, token: vec![tok(4); 2] }),
        Err(SaloError::UnknownSession { .. })
    ));
}

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (14usize..36, -6i64..0, 1usize..6, 1usize..4, prop::collection::vec(0usize..10, 0..3))
        .prop_filter_map("valid decodable pattern", |(n, lo, width, dil, globals)| {
            let hi = lo + (width as i64) * dil as i64;
            let w = Window::dilated(lo, hi, dil).ok()?;
            let p = HybridPattern::builder(n)
                .window(w)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .ok()?;
            p.decode_view().ok()?; // decodable after causal clipping
            Some(p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prefill: lowered and systolic are bit-identical; the reference
    /// stays within the fixed-point bound — on random hybrid patterns.
    #[test]
    fn prefill_backends_are_equivalent(pattern in arb_pattern(), seed in 0u64..1000) {
        let salo = small_salo();
        let d = 8usize;
        let shape = AttentionShape::new(pattern.n(), d, 1).unwrap();
        let heads = Qkv::random_heads(&shape, seed);
        let mut engines = salo.all_engines();
        let outs: Vec<PrefillOutput> = engines
            .iter_mut()
            .map(|e| prefill_on(e.as_mut(), &pattern, shape, &heads))
            .collect();
        prop_assert_eq!(&outs[0].heads[0].raw, &outs[1].heads[0].raw);
        prop_assert_eq!(&outs[0].heads[0].weights_q16, &outs[1].heads[0].weights_q16);
        prop_assert_eq!(
            outs[0].telemetry.saturation_events,
            outs[1].telemetry.saturation_events
        );
        let diff = outs[0].heads[0].output.max_abs_diff(&outs[2].heads[0].output);
        prop_assert!(diff < FIXED_POINT_BOUND, "diff {}", diff);
    }

    /// Decode: the per-step rows agree across backends the same way the
    /// prefill rows do — bit-identical fixed engines, bounded reference.
    #[test]
    fn decode_backends_are_equivalent(pattern in arb_pattern(), seed in 0u64..1000) {
        let salo = small_salo();
        let d = 4usize;
        let shape = AttentionShape::new(pattern.n(), d, 1).unwrap();
        let heads = Qkv::random_heads(&shape, seed);
        let mut engines = salo.all_engines();
        let dec: Vec<_> = engines
            .iter_mut()
            .map(|e| decode_on(e.as_mut(), &pattern, d, 1, &heads))
            .collect();
        prop_assert_eq!(&dec[0], &dec[1], "lowered ≡ systolic decode");
        for (fixed, float) in dec[0].iter().zip(&dec[2]) {
            let diff = fixed[0]
                .output
                .iter()
                .zip(&float[0].output)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            prop_assert!(diff < FIXED_POINT_BOUND, "decode diff {}", diff);
        }
    }
}
