//! Smoke test: every preset pattern family schedules onto the accelerator
//! with exactly-once coverage of its declared sparsity mask.
//!
//! This is the scheduler's fundamental contract (§4 of the paper): window
//! splitting plus global-token extraction must neither drop nor duplicate a
//! single kept (query, key) position, for every supported attention family.

use salo::patterns::{
    bigbird, grid_2d, longformer, sliding_only, sparse_transformer, star_transformer,
    strided_fixed, vil_stage, HybridPattern,
};
use salo::scheduler::{verify_coverage, ExecutionPlan, HardwareMeta};

/// Builds a plan on the paper-style geometry (scaled down so the O(n^2)
/// coverage replay stays fast) and asserts exact coverage.
fn assert_full_coverage(name: &str, pattern: &HybridPattern) {
    let hw = HardwareMeta::new(8, 8, 1, 1).expect("hardware geometry");
    let plan = ExecutionPlan::build(pattern, hw)
        .unwrap_or_else(|e| panic!("{name}: plan build failed: {e}"));
    let report = verify_coverage(&plan, pattern);
    assert!(
        report.is_exact(),
        "{name}: coverage not exact — missing {:?}, duplicated {:?}, spurious {:?}",
        report.missing.first(),
        report.duplicated.first(),
        report.spurious.first()
    );
}

#[test]
fn longformer_family_full_coverage() {
    for (n, w, ng) in [(64, 8, 1), (128, 16, 2), (96, 9, 0)] {
        let p = longformer(n, w, ng).expect("longformer pattern");
        assert_full_coverage(&format!("longformer({n}, {w}, {ng})"), &p);
    }
}

#[test]
fn sparse_transformer_family_full_coverage() {
    for (n, stride, depth) in [(64, 8, 2), (128, 16, 3), (48, 4, 1)] {
        let p = sparse_transformer(n, stride, depth).expect("sparse transformer pattern");
        assert_full_coverage(&format!("sparse_transformer({n}, {stride}, {depth})"), &p);
    }
}

#[test]
fn star_transformer_family_full_coverage() {
    for n in [16, 64, 100] {
        let p = star_transformer(n).expect("star transformer pattern");
        assert_full_coverage(&format!("star_transformer({n})"), &p);
    }
}

#[test]
fn grid_2d_family_full_coverage() {
    for (h, w, wh, ww, ng) in [(8, 8, 3, 3, 0), (8, 12, 5, 5, 1), (6, 6, 3, 5, 2)] {
        let p = grid_2d(h, w, wh, ww, ng).expect("grid pattern");
        assert_full_coverage(&format!("grid_2d({h}, {w}, {wh}, {ww}, {ng})"), &p);
    }
}

#[test]
fn vil_stage_full_coverage() {
    // Scaled-down ViL stage: same 2-D window structure as Table 2, smaller
    // grid so the replay stays fast.
    let p = vil_stage(10, 10, 5, 5, 1).expect("vil pattern");
    assert_full_coverage("vil_stage(10, 10, 5, 5, 1)", &p);
}

#[test]
fn sliding_only_family_full_coverage() {
    for (n, w) in [(64, 8), (128, 33), (32, 1)] {
        let p = sliding_only(n, w).expect("sliding pattern");
        assert_full_coverage(&format!("sliding_only({n}, {w})"), &p);
    }
}

#[test]
fn bigbird_family_full_coverage() {
    // Random-block residuals route through the gather component; coverage
    // must stay exactly-once against the window/global passes.
    for (n, w, blocks, ng, seed) in [(64, 8, 2, 1, 7), (96, 12, 3, 2, 42), (48, 5, 1, 0, 1)] {
        let p = bigbird(n, w, blocks, ng, seed).expect("bigbird pattern");
        assert_full_coverage(&format!("bigbird({n}, {w}, {blocks}, {ng}, {seed})"), &p);
    }
}

#[test]
fn strided_fixed_family_full_coverage() {
    for (n, stride) in [(64, 8), (96, 7), (48, 16)] {
        let p = strided_fixed(n, stride).expect("strided pattern");
        assert_full_coverage(&format!("strided_fixed({n}, {stride})"), &p);
    }
}

#[test]
fn coverage_holds_across_hardware_geometries() {
    // The same pattern must stay exactly-once under different PE array
    // shapes — splitting boundaries move but the multiset of positions
    // must not.
    let p = longformer(96, 12, 1).expect("pattern");
    for (rows, cols) in [(2, 2), (4, 8), (8, 4), (16, 16)] {
        let hw = HardwareMeta::new(rows, cols, 1, 1).expect("hw");
        let plan = ExecutionPlan::build(&p, hw).expect("plan");
        let report = verify_coverage(&plan, &p);
        assert!(report.is_exact(), "{rows}x{cols}: {report:?}");
    }
}
