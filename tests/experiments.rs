//! Shape assertions for every paper experiment (E1–E7): who wins, by
//! roughly what factor, and where the crossovers fall.

use salo::baselines::{cpu_xeon_e5_2630_v3, gtx_1080ti, SangerModel};
use salo::core::{figure7_comparisons, Salo};
use salo::models::{bert_base, longformer_layer, paper, table2_rows};
use salo::quant::table3_rows;

/// E1 — motivation: dense GPU attention grows quadratically; the paper's
/// two anchors are matched.
#[test]
fn e1_motivation_quadratic_growth() {
    let gpu = gtx_1080ti();
    let t = |n: usize| gpu.latency_s(&bert_base(n).unwrap().baseline());
    let (t2048, t8192) = (t(2048), t(8192));
    assert!((t2048 * 1e3 / paper::BERT_GPU_LATENCY_MS_N2048 - 1.0).abs() < 0.1);
    assert!((t8192 * 1e3 / paper::BERT_GPU_LATENCY_MS_N8192 - 1.0).abs() < 0.1);
    assert!((t8192 / t2048 - 15.8).abs() < 1.0, "quadratic ratio {}", t8192 / t2048);
}

/// E2 — Table 1: the default instance is the synthesized one.
#[test]
fn e2_table1_instance() {
    let salo = Salo::default_config();
    let c = salo.config();
    assert_eq!((c.hw.pe_rows, c.hw.pe_cols), paper::table1::PE_ARRAY);
    assert_eq!(c.hw.global_rows, paper::table1::GLOBAL_PE_ROWS);
    assert_eq!(c.hw.global_cols, paper::table1::GLOBAL_PE_COLS);
    assert!((c.power_w * 1e3 - paper::table1::POWER_MW).abs() < 0.01);
    assert!((c.area_mm2 - paper::table1::AREA_MM2).abs() < 0.01);
    assert!((c.freq_ghz - paper::table1::FREQUENCY_GHZ).abs() < f64::EPSILON);
}

/// E3 — Table 2: sparsity column reproduced.
#[test]
fn e3_table2_sparsity() {
    let rows = table2_rows();
    let paper_sparsity = [0.125, 0.072, 0.288];
    for (row, &expect) in rows.iter().zip(&paper_sparsity) {
        assert!((row.sparsity - expect).abs() < 0.004, "{}: {}", row.name, row.sparsity);
    }
}

/// E4/E5 — Fig. 7: speedups and energy savings, with the paper's
/// orderings and magnitudes.
#[test]
fn e4_e5_figure7_shape() {
    let rows = figure7_comparisons(&Salo::default_config()).unwrap();
    // Who wins: SALO, everywhere, against both baselines.
    for row in &rows {
        assert!(row.speedup_cpu() > 1.0 && row.speedup_gpu() > 1.0);
    }
    // By what factor: tens against CPU, 7-30x against GPU, hundreds in
    // energy.
    let avg_cpu = rows.iter().map(|r| r.speedup_cpu()).sum::<f64>() / 3.0;
    let avg_gpu = rows.iter().map(|r| r.speedup_gpu()).sum::<f64>() / 3.0;
    assert!((60.0..120.0).contains(&avg_cpu), "avg cpu {avg_cpu}");
    assert!((12.0..25.0).contains(&avg_gpu), "avg gpu {avg_gpu}");
    let avg_e_cpu = rows.iter().map(|r| r.energy_saving_cpu()).sum::<f64>() / 3.0;
    let avg_e_gpu = rows.iter().map(|r| r.energy_saving_gpu()).sum::<f64>() / 3.0;
    assert!((120.0..260.0).contains(&avg_e_cpu), "avg cpu energy {avg_e_cpu}");
    assert!((180.0..400.0).contains(&avg_e_gpu), "avg gpu energy {avg_e_gpu}");
    // Where the gaps sit: the GPU gap is smallest on Longformer (banded
    // 1-D is the most GEMM-friendly sparse implementation).
    assert!(rows[0].speedup_gpu() < rows[1].speedup_gpu().min(rows[2].speedup_gpu()));
}

/// E6 — Sanger comparison: utilization bands and the 1.33x headline at
/// the dense end of the sparsity range.
#[test]
fn e6_sanger_shape() {
    let salo = Salo::default_config();
    let sanger = SangerModel::default();
    let mut speedups = Vec::new();
    for window in [256usize, 512, 1024, 1228] {
        let w = longformer_layer(4096, window, 768, 0).unwrap();
        let compiled = salo.compile(&w.pattern, &w.shape).unwrap();
        let report = salo.estimate(&compiled);
        let t_sanger = sanger.latency_s(4096, w.nnz(), 64, 12);
        let speedup = t_sanger / report.time_s;
        assert!(speedup > 1.0, "SALO must win at window {window}");
        // SALO's structured-pattern utilization exceeds Sanger's.
        let density = w.nnz() as f64 / (4096.0 * 4096.0);
        assert!(report.utilization.mac_utilization > sanger.utilization(density));
        speedups.push((density, speedup));
    }
    // The densest point lands near the paper's 1.33x headline.
    let (density, headline) = *speedups.last().unwrap();
    assert!(density > 0.25, "densest sweep point {density}");
    assert!(
        (headline / paper::SANGER_SPEEDUP - 1.0).abs() < 0.15,
        "headline speedup {headline} vs paper {}",
        paper::SANGER_SPEEDUP
    );
    // Advantage grows as density falls (prediction step dominates).
    assert!(speedups.first().unwrap().1 > speedups.last().unwrap().1);
}

/// E7 — Table 3: quantization costs at most a few points on the synthetic
/// tasks (paper: a few tenths on real ones).
#[test]
fn e7_quantization_accuracy() {
    let rows = table3_rows(1).unwrap();
    for row in &rows {
        let drop = row.ours.accuracy_f32 - row.ours.accuracy_quantized;
        assert!(drop.abs() < 0.1, "{}: drop {drop}", row.name);
        assert!(
            row.ours.accuracy_quantized_finetuned + 0.03 >= row.ours.accuracy_quantized,
            "{}: finetuning should not hurt",
            row.name
        );
    }
}

/// Cross-check: CPU is never faster than GPU on these workloads, and both
/// lose to SALO on energy by orders of magnitude.
#[test]
fn baseline_orderings() {
    let cpu = cpu_xeon_e5_2630_v3();
    let gpu = gtx_1080ti();
    for w in
        [longformer_layer(2048, 256, 768, 1).unwrap(), longformer_layer(8192, 512, 768, 1).unwrap()]
    {
        let b = w.baseline();
        assert!(cpu.latency_s(&b) > gpu.latency_s(&b));
    }
}
