//! Streaming-decode integration suite: token-by-token decode is
//! bit-identical to the causal-prefill oracle, session state survives
//! worker reuse without leakage, and the serving runtime's pinned decode
//! sessions reproduce the core session byte for byte.

use salo::core::{DecodeSession, Salo};
use salo::kernels::Qkv;
use salo::patterns::{HybridPattern, Window};
use salo::scheduler::HardwareMeta;
use salo::serve::{
    GenerationTraffic, SaloServer, ServeError, ServeOptions, SessionEvent, TokenQkv,
};
use salo::sim::AcceleratorConfig;

fn small_salo() -> Salo {
    let config =
        AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
    Salo::new(config)
}

/// Causal-prefill oracle through the engine API: executes a compiled
/// causal plan on one head, returning the simulator-shaped output the
/// bit-identity assertions compare against. The prefill path streams K/V
/// from contiguous arenas, so this is also the *contiguous* baseline the
/// paged decode states are pinned against below.
fn prefill_oracle(
    salo: &Salo,
    compiled: std::sync::Arc<salo::core::CompiledPlan>,
    qkv: &Qkv,
) -> salo::sim::ExecutionOutput {
    use salo::core::{AttentionRequest, Engine, PatternHandle};
    let shape = compiled.shape;
    let mut engine = salo.engine();
    let out = engine
        .execute(AttentionRequest::Prefill {
            pattern: PatternHandle::from_plan(compiled),
            shape,
            heads: vec![qkv.clone()],
        })
        .unwrap()
        .into_prefill()
        .unwrap();
    let h = out.heads.into_iter().next().unwrap();
    salo::sim::ExecutionOutput {
        raw: h.raw.unwrap(),
        output: h.output,
        weights_q16: h.weights_q16.unwrap(),
        report: h.report.unwrap(),
    }
}

/// Deterministic pattern-parameter stream (tiny xorshift; no external
/// RNG in integration tests).
struct ParamRng(u64);

impl ParamRng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A random hybrid pattern: one or two windows (possibly dilated),
/// globals in a prefix so every non-global row is decodable.
fn random_pattern(rng: &mut ParamRng) -> HybridPattern {
    let n = rng.pick(20, 48) as usize;
    let mut builder = HybridPattern::builder(n);
    let windows = rng.pick(1, 3);
    for w in 0..windows {
        let dilation = rng.pick(1, 4) as usize;
        let width = rng.pick(1, 6) as i64;
        let span = width * dilation as i64;
        // The first window always reaches the past; later ones may poke
        // into the future (exercising the causal clip) or be entirely
        // future (dropped by it).
        let lo = if w == 0 { -(rng.pick(1, 8) as i64) - span } else { rng.pick(0, 12) as i64 - 8 };
        builder = builder.window(Window::dilated(lo, lo + span, dilation).unwrap());
    }
    let globals = rng.pick(0, 3) as usize;
    for g in 0..globals {
        builder = builder.global_token(g);
    }
    builder.build().unwrap()
}

/// Runs one full decode generation and asserts bit-identity against the
/// causal-prefill rows: raw outputs, weights, global rows, saturation.
fn assert_decode_matches_prefill(salo: &Salo, pattern: &HybridPattern, d: usize, seed: u64) {
    let mut session = salo.decode_session(pattern, d).unwrap();
    let n = session.capacity();
    let qkv = Qkv::random(n, d, seed);
    let prefill = prefill_oracle(salo, session.shared_plan(), &qkv);

    session.prime_rows(&qkv, 0..session.min_step()).unwrap();
    for t in session.min_step()..n {
        let step = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
        assert_eq!(step.position, t);
        let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
        assert_eq!(step.raw, prefill_row, "step {t} raw output");
        assert_eq!(step.weight_q16, prefill.weights_q16[t], "step {t} weight");
    }
    for (g, raw, weight) in session.global_rows() {
        let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(g, c)).collect();
        assert_eq!(raw, prefill_row, "global row {g}");
        assert_eq!(weight, prefill.weights_q16[g], "global row {g} weight");
    }
    assert_eq!(
        session.saturation_events(),
        prefill.report.saturation_events,
        "decode and prefill perform the same MAC chains"
    );
}

#[test]
fn decode_matches_causal_prefill_on_random_hybrid_patterns() {
    let salo = small_salo();
    let mut rng = ParamRng(0x5a10_dec0_de01);
    for case in 0..12 {
        let pattern = random_pattern(&mut rng);
        let d = [4, 8][case % 2];
        assert_decode_matches_prefill(&salo, &pattern, d, 1000 + case as u64);
    }
}

#[test]
fn decode_matches_causal_prefill_on_pattern_zoo_families() {
    // The IR term families (random blocks, strided, explicit block-sparse)
    // lower to gather components; streaming decode must reproduce the
    // causal-prefill oracle bit for bit on each of them.
    use salo::patterns::{bigbird, strided_fixed, BlockLayout, PatternTerm};
    let salo = small_salo();
    let block_sparse = HybridPattern::from_terms(
        32,
        vec![
            PatternTerm::Window(Window::causal(4).unwrap()),
            PatternTerm::BlockSparse {
                block_rows: 8,
                layout: BlockLayout::Explicit(vec![(3, 0), (2, 1)]),
            },
        ],
    )
    .unwrap();
    let zoo = [bigbird(40, 6, 2, 2, 9).unwrap(), strided_fixed(36, 6).unwrap(), block_sparse];
    for (case, pattern) in zoo.into_iter().enumerate() {
        assert_decode_matches_prefill(&salo, &pattern, 8, 4000 + case as u64);
    }
}

#[test]
fn residual_support_pins_pages_past_the_window_horizon() {
    // A block-sparse residual referencing keys far older than the sliding
    // window's horizon: the reclamation watermark must hold those pages
    // (and everything above them) resident until the referencing rows
    // decode, while a window-only control reclaims freely — and both stay
    // bit-identical to contiguous prefill throughout.
    use salo::patterns::{AttentionShape, BlockLayout, PatternTerm};
    use salo::sim::{DecodeState, ExecScratch, KvPagePool, SpatialAccelerator};

    let salo = small_salo();
    let n = 48;
    let d = 8;
    let page_rows = 4;
    // Rows 40..48 attend keys 0..8 through the explicit block — far
    // outside the causal(4) window horizon by the time they decode.
    let residual_pattern = HybridPattern::from_terms(
        n,
        vec![
            PatternTerm::Window(Window::causal(4).unwrap()),
            PatternTerm::BlockSparse { block_rows: 8, layout: BlockLayout::Explicit(vec![(5, 0)]) },
        ],
    )
    .unwrap();
    let control_pattern =
        HybridPattern::from_terms(n, vec![PatternTerm::Window(Window::causal(4).unwrap())])
            .unwrap();

    // Runs a full paged generation, asserting bit-identity per step, and
    // returns resident page counts indexed by position.
    let run = |pattern: &HybridPattern| -> Vec<usize> {
        let causal = pattern.decode_view().unwrap().into_causal_pattern();
        let shape = AttentionShape::new(causal.n(), d, 1).unwrap();
        let compiled = std::sync::Arc::new(salo.compile(&causal, &shape).unwrap());
        let decode = compiled.decode_plan().unwrap();
        let qkv = Qkv::random(causal.n(), d, 321);
        let prefill = prefill_oracle(&salo, std::sync::Arc::clone(&compiled), &qkv);

        let accel = salo.accelerator();
        let scale = SpatialAccelerator::default_scale(d);
        let mut state = DecodeState::new(&decode, d);
        let mut pool = KvPagePool::new(page_rows);
        let mut scratch = ExecScratch::new();
        for t in 0..decode.min_step() {
            accel
                .prime_token(
                    &decode,
                    &mut state,
                    qkv.q.row(t),
                    qkv.k.row(t),
                    qkv.v.row(t),
                    scale,
                    &mut pool,
                    &mut scratch,
                )
                .unwrap();
        }
        let mut resident = Vec::with_capacity(causal.n());
        resident.resize(decode.min_step(), 0usize);
        for t in decode.min_step()..causal.n() {
            let step = accel
                .execute_step(
                    &decode,
                    &mut state,
                    qkv.q.row(t),
                    qkv.k.row(t),
                    qkv.v.row(t),
                    scale,
                    &mut pool,
                    &mut scratch,
                )
                .unwrap();
            let row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
            assert_eq!(step.raw, row, "step {t} raw output");
            assert_eq!(step.weight_q16, prefill.weights_q16[t], "step {t} weight");
            resident.push(state.resident_pages());
        }
        assert_eq!(state.saturation_events(), prefill.report.saturation_events);
        resident
    };

    let with_residual = run(&residual_pattern);
    let control = run(&control_pattern);

    // Just before the block rows decode, the pending residual reference to
    // key 0 holds the whole history resident; the control has long since
    // reclaimed down to its window.
    let t = 39usize;
    let allocated = (t + 1).div_ceil(page_rows);
    assert_eq!(with_residual[t], allocated, "pending residual keys at row 0 pin the full history");
    assert!(
        control[t] < allocated / 2,
        "window-only control reclaims dead pages (resident {} of {allocated})",
        control[t]
    );
    // Once the final block row has decoded, nothing references old keys
    // and the residual session reclaims too.
    assert!(
        with_residual[n - 1] < allocated,
        "residual pages are released after their referencing rows decode"
    );
}

#[test]
fn decode_matches_prefill_under_saturation() {
    // Oversized inputs overflow the stage-1 accumulator chain; the decode
    // path must saturate in exactly the same places (equal event counts)
    // and still produce bit-identical rows.
    let salo = small_salo();
    let pattern = HybridPattern::builder(24)
        .window(Window::causal(6).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let mut session = salo.decode_session(&pattern, 8).unwrap();
    let qkv = Qkv::random(24, 8, 77);
    // Blow up the magnitudes far past the Q.4 grid.
    let boom = |m: &salo::kernels::Matrix<f32>| m.map(|x| x * 1e6);
    let qkv = Qkv::new(boom(&qkv.q), boom(&qkv.k), boom(&qkv.v)).unwrap();
    let prefill = prefill_oracle(&salo, session.shared_plan(), &qkv);

    session.prime_rows(&qkv, 0..1).unwrap();
    let mut decoded_events = 0;
    for t in 1..24 {
        let step = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
        decoded_events += step.saturation_events;
        let row: Vec<_> = (0..8).map(|c| prefill.raw.get(t, c)).collect();
        assert_eq!(step.raw, row, "saturating step {t}");
    }
    // Note: with d = 8 the stage-1 fast path cannot overflow; saturation
    // counting is still exercised end to end and must agree exactly.
    assert_eq!(
        session.saturation_events(),
        prefill.report.saturation_events,
        "cumulative saturation (decoded {decoded_events} during steps)"
    );
}

#[test]
fn longer_prompts_skip_rows_but_keep_later_steps_identical() {
    // Priming past min_step is allowed (a real prompt); the skipped rows
    // get no decode output, and every later step still matches prefill.
    let salo = small_salo();
    let pattern = HybridPattern::builder(32)
        .window(Window::symmetric(7).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let mut session = salo.decode_session(&pattern, 8).unwrap();
    let qkv = Qkv::random(32, 8, 11);
    let prefill = prefill_oracle(&salo, session.shared_plan(), &qkv);

    let prompt_len = 10;
    session.prime_rows(&qkv, 0..prompt_len).unwrap();
    assert_eq!(session.position(), prompt_len);
    for t in prompt_len..32 {
        let step = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
        let row: Vec<_> = (0..8).map(|c| prefill.raw.get(t, c)).collect();
        assert_eq!(step.raw, row, "post-prompt step {t}");
        assert_eq!(step.weight_q16, prefill.weights_q16[t]);
    }
    // The global row still catches up completely.
    let (g, raw, weight) = session.global_rows().remove(0);
    assert_eq!(g, 0);
    assert_eq!(raw, (0..8).map(|c| prefill.raw.get(0, c)).collect::<Vec<_>>());
    assert_eq!(weight, prefill.weights_q16[0]);
}

#[test]
fn interleaved_sessions_do_not_leak_state() {
    // Two sessions of different shapes decoded in lockstep, then the same
    // two decoded in isolation: all four must agree step for step. This
    // is the no-stale-arena property a worker switching sessions relies
    // on.
    let salo = small_salo();
    let pat_a = HybridPattern::builder(30)
        .window(Window::causal(7).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let pat_b =
        HybridPattern::builder(22).window(Window::dilated(-9, -1, 2).unwrap()).build().unwrap();
    let qkv_a = Qkv::random(30, 8, 1);
    let qkv_b = Qkv::random(22, 4, 2);

    let run_isolated = |pattern: &HybridPattern, qkv: &Qkv, d: usize| {
        let mut s = salo.decode_session(pattern, d).unwrap();
        s.prime_rows(qkv, 0..s.min_step()).unwrap();
        (s.min_step()..s.capacity())
            .map(|t| s.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap())
            .collect::<Vec<_>>()
    };
    let solo_a = run_isolated(&pat_a, &qkv_a, 8);
    let solo_b = run_isolated(&pat_b, &qkv_b, 4);

    let mut sa = salo.decode_session(&pat_a, 8).unwrap();
    let mut sb = salo.decode_session(&pat_b, 4).unwrap();
    sa.prime_rows(&qkv_a, 0..sa.min_step()).unwrap();
    sb.prime_rows(&qkv_b, 0..sb.min_step()).unwrap();
    let mut ia = 0;
    let mut ib = 0;
    for round in 0.. {
        let mut progressed = false;
        let ta = sa.min_step() + ia;
        if ta < sa.capacity() && round % 3 != 2 {
            let step = sa.step(qkv_a.q.row(ta), qkv_a.k.row(ta), qkv_a.v.row(ta)).unwrap();
            assert_eq!(step, solo_a[ia], "interleaved A step {ta}");
            ia += 1;
            progressed = true;
        }
        let tb = sb.min_step() + ib;
        if tb < sb.capacity() {
            let step = sb.step(qkv_b.q.row(tb), qkv_b.k.row(tb), qkv_b.v.row(tb)).unwrap();
            assert_eq!(step, solo_b[ib], "interleaved B step {tb}");
            ib += 1;
            progressed = true;
        }
        if !progressed && ta >= sa.capacity() {
            break;
        }
    }
    assert_eq!(ia, solo_a.len());
    assert_eq!(ib, solo_b.len());
}

/// Drives one serve session to completion in lockstep, returning every
/// step's per-head outputs.
fn drive_serve_session(
    server: &SaloServer,
    request: salo::serve::SessionRequest,
    steps: &[Vec<TokenQkv>],
) -> (salo::serve::SessionInfo, Vec<salo::serve::DecodeStep>) {
    let handle = server.open_session(request).unwrap();
    let info = handle.wait_open().unwrap();
    let mut outputs = Vec::with_capacity(steps.len());
    for token in steps {
        server.step_session(handle.id(), token.clone()).unwrap();
        outputs.push(handle.next_step().unwrap());
    }
    server.close_session(handle.id()).unwrap();
    match handle.recv().unwrap() {
        SessionEvent::Closed { position, .. } => {
            assert_eq!(position, Some(info.capacity), "session ran to capacity");
        }
        other => panic!("expected Closed, got {other:?}"),
    }
    (info, outputs)
}

#[test]
fn serve_sessions_match_core_sessions_and_amortize_plans() {
    let config = AcceleratorConfig::default();
    let server =
        SaloServer::start(config.clone(), ServeOptions { workers: 2, ..Default::default() });
    let traffic = GenerationTraffic::demo_mix();
    let salo = Salo::new(config);

    for i in 0..4u64 {
        let (request, steps) = traffic.session(i);
        let shape = &traffic.shapes()[(i % traffic.len() as u64) as usize];
        let (info, outputs) = drive_serve_session(&server, request.clone(), &steps);
        assert_eq!(info.capacity, shape.pattern.n());
        assert_eq!(info.position, shape.prompt_len);
        if i >= traffic.len() as u64 {
            assert!(info.cache_hit, "session {i} should reuse a cached plan");
        }

        // The oracle: one core decode session per head over the same
        // inputs.
        for h in 0..shape.num_heads {
            let mut core = salo.decode_session(&shape.pattern, shape.head_dim).unwrap();
            core.prime_rows(&request.prompt[h], 0..shape.prompt_len).unwrap();
            for (s, token) in steps.iter().enumerate() {
                let expect = core.step(&token[h].q, &token[h].k, &token[h].v).unwrap();
                let got = &outputs[s].heads[h];
                assert_eq!(got.raw.as_ref(), Some(&expect.raw), "session {i} head {h} step {s}");
                assert_eq!(got.weight_q16, Some(expect.weight_q16));
            }
        }
    }
    assert_eq!(server.active_sessions(), 0);
    let report = server.shutdown();
    assert_eq!(report.decode_sessions, 4);
    assert_eq!(report.decode_session_errors, 0);
    let expected_steps: u64 = (0..4u64)
        .map(|i| traffic.shapes()[(i % traffic.len() as u64) as usize].steps() as u64)
        .sum();
    assert_eq!(report.decode_steps, expected_steps);
    assert_eq!(report.decode_step_errors, 0);
    assert!(report.decode_step_latency.count > 0);
}

#[test]
fn serve_session_errors_are_reported_not_hung() {
    let server = SaloServer::with_defaults(AcceleratorConfig::default());

    // Unknown ids are rejected synchronously.
    let token = vec![TokenQkv { q: vec![0.0; 4], k: vec![0.0; 4], v: vec![0.0; 4] }];
    assert!(matches!(
        server.step_session(999, token.clone()),
        Err(ServeError::UnknownSession { session: 999 })
    ));
    assert!(matches!(server.close_session(999), Err(ServeError::UnknownSession { .. })));

    // A prompt that does not cover the globals is rejected up front.
    let pattern = HybridPattern::builder(16)
        .window(Window::causal(4).unwrap())
        .global_token(2)
        .build()
        .unwrap();
    let bad = salo::serve::SessionRequest {
        pattern: pattern.clone(),
        head_dim: 4,
        num_heads: 1,
        prompt: vec![Qkv::random(1, 4, 0)], // needs >= 3 rows
    };
    assert!(matches!(server.open_session(bad), Err(ServeError::InvalidRequest { .. })));

    // A malformed step fails via the event channel; whether it kills the
    // session depends on what it touched. A pre-mutation validation
    // failure (wrong head count here) leaves every head state untouched,
    // so the session stays decodable. A failure that desynced the heads
    // (head 0 advanced, head 1 rejected) poisons it: the runtime drops
    // it everywhere, so once the client has observed the error the id is
    // gone — further steps and closes report UnknownSession instead of
    // being silently swallowed.
    let good = salo::serve::SessionRequest {
        pattern,
        head_dim: 4,
        num_heads: 2,
        prompt: vec![Qkv::random(3, 4, 0), Qkv::random(3, 4, 1)],
    };
    let handle = server.open_session(good).unwrap();
    let info = handle.wait_open().unwrap();
    assert_eq!(info.min_step, 3);
    let tok = || TokenQkv { q: vec![0.1; 4], k: vec![0.1; 4], v: vec![0.1; 4] };
    let short = || TokenQkv { q: vec![0.1; 2], k: vec![0.1; 2], v: vec![0.1; 2] };

    // Wrong head count: recoverable, the session keeps serving.
    server.step_session(handle.id(), vec![tok()]).unwrap();
    assert!(handle.next_step().is_err(), "head-count mismatch surfaces as a step error");
    server.step_session(handle.id(), vec![tok(), tok()]).unwrap();
    assert!(handle.next_step().is_ok(), "an intact session keeps decoding after the error");

    // Mixed dimensions: head 0 advances, head 1 does not — desync.
    server.step_session(handle.id(), vec![tok(), short()]).unwrap();
    assert!(handle.next_step().is_err(), "dimension mismatch surfaces as a step error");
    assert!(matches!(handle.recv().unwrap(), SessionEvent::Closed { .. }), "poison closes");
    assert_eq!(server.active_sessions(), 0, "the poisoned session is deregistered");
    assert!(matches!(
        server.step_session(handle.id(), token),
        Err(ServeError::UnknownSession { .. })
    ));
    assert!(matches!(server.close_session(handle.id()), Err(ServeError::UnknownSession { .. })));
    let report = server.shutdown();
    assert_eq!(report.decode_step_errors, 2, "the recoverable and the poisoning failures");
}

#[test]
fn steps_racing_a_poisoning_failure_error_instead_of_hanging() {
    // A step already accepted when its session is poisoned must still
    // produce an event (the client may be blocking on it); it must never
    // be silently swallowed.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 1, ..Default::default() },
    );
    let pattern = HybridPattern::builder(16).window(Window::causal(4).unwrap()).build().unwrap();
    let request = salo::serve::SessionRequest {
        pattern,
        head_dim: 4,
        num_heads: 2,
        prompt: vec![Qkv::random(2, 4, 7), Qkv::random(2, 4, 8)],
    };
    let handle = server.open_session(request).unwrap();
    handle.wait_open().unwrap();

    let full = || TokenQkv { q: vec![0.1; 4], k: vec![0.1; 4], v: vec![0.1; 4] };
    let short = || TokenQkv { q: vec![0.1; 2], k: vec![0.1; 2], v: vec![0.1; 2] };
    // Head 0 advances, head 1 is rejected: the desync poisons.
    let bad = vec![full(), short()];
    let good = vec![full(), full()];
    server.step_session(handle.id(), bad).unwrap();
    // Submitted before the poison propagates, the second step is either
    // rejected up front (the worker already deregistered the session) or
    // accepted and then failed wherever it is caught — but never dropped
    // without an event.
    let second_accepted = match server.step_session(handle.id(), good) {
        Ok(()) => true,
        Err(ServeError::UnknownSession { .. }) => false,
        Err(other) => panic!("unexpected rejection: {other}"),
    };
    // Drain to the terminal Closed event — every recv here must complete
    // (a hang is the bug), and Closed is the point past which a client
    // owes no more waiting, whatever happened to steps racing the poison.
    let mut step_errors = 0;
    loop {
        match handle.recv().unwrap() {
            SessionEvent::Step { result, .. } => {
                assert!(result.is_err(), "both steps fail");
                step_errors += 1;
            }
            SessionEvent::Closed { .. } => break,
            SessionEvent::Opened { .. } => panic!("handshake already consumed"),
        }
    }
    assert!(step_errors >= 1, "the poisoning step always reports");
    // The poisoning step always counts as an error; the racing one either
    // errors (it reached the worker) or is dropped as a benign race once
    // the route was reaped — never more than the accepted steps.
    let report = server.shutdown();
    let errors = report.decode_step_errors;
    assert!(
        (1..=1 + u64::from(second_accepted)).contains(&errors),
        "step errors {errors} outside the accepted range"
    );
}

#[test]
fn decode_plan_cache_is_head_count_independent() {
    // The compiled causal plan does not depend on the head count (state
    // is per head, the program is not), so sessions differing only in
    // num_heads must share one cache entry.
    let server = SaloServer::with_defaults(AcceleratorConfig::default());
    let pattern = HybridPattern::builder(16)
        .window(Window::causal(4).unwrap())
        .global_token(0)
        .build()
        .unwrap();
    let one = salo::serve::SessionRequest {
        pattern: pattern.clone(),
        head_dim: 4,
        num_heads: 1,
        prompt: vec![Qkv::random(3, 4, 0)],
    };
    let two = salo::serve::SessionRequest {
        pattern,
        head_dim: 4,
        num_heads: 2,
        prompt: vec![Qkv::random(3, 4, 1), Qkv::random(3, 4, 2)],
    };
    let wide = salo::serve::SessionRequest {
        pattern: two.pattern.clone(),
        head_dim: 8,
        num_heads: 1,
        prompt: vec![Qkv::random(3, 8, 3)],
    };
    let h1 = server.open_session(one).unwrap();
    assert!(!h1.wait_open().unwrap().cache_hit);
    let h2 = server.open_session(two).unwrap();
    assert!(h2.wait_open().unwrap().cache_hit, "head count must not change the plan key");
    let h3 = server.open_session(wide).unwrap();
    assert!(h3.wait_open().unwrap().cache_hit, "head dimension must not change the plan key");
    for h in [&h1, &h2, &h3] {
        server.close_session(h.id()).unwrap();
    }
    let _ = server.shutdown();
}

#[test]
fn steps_accepted_before_close_still_execute() {
    // Queue order is authoritative: a step accepted before close_session
    // executes and delivers its output, even though the close's registry
    // removal (on the caller thread) lands before the dispatcher sees
    // the queued step.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 1, ..Default::default() },
    );
    let traffic = GenerationTraffic::demo_mix();
    let (request, steps) = traffic.session(0);
    let prompt_len = traffic.shapes()[0].prompt_len;
    let handle = server.open_session(request).unwrap();
    handle.wait_open().unwrap();

    server.step_session(handle.id(), steps[0].clone()).unwrap();
    server.close_session(handle.id()).unwrap(); // before draining events
    let step = handle.next_step().expect("the accepted step must execute");
    assert_eq!(step.position, prompt_len);
    assert!(matches!(handle.recv().unwrap(), SessionEvent::Closed { .. }));

    let report = server.shutdown();
    assert_eq!(report.decode_steps, 1);
    assert_eq!(report.decode_step_errors, 0, "no retroactive failure");
}

#[test]
fn sessions_spread_across_workers() {
    // Pinning weighs live sessions, not just transient queue depth:
    // sessions opened back to back on an idle pool must not all land on
    // worker 0.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 2, ..Default::default() },
    );
    let traffic = GenerationTraffic::demo_mix();
    let mut handles = Vec::new();
    let mut workers = Vec::new();
    for i in 0..4u64 {
        let (request, _) = traffic.session(i);
        let handle = server.open_session(request).unwrap();
        workers.push(handle.wait_open().unwrap().worker);
        handles.push(handle); // keep the session open so it stays pinned
    }
    assert_eq!(workers, vec![0, 1, 0, 1], "round-robin under equal pinned load");
    for handle in &handles {
        server.close_session(handle.id()).unwrap();
    }
    let _ = server.shutdown();
}

#[test]
fn retired_sessions_free_their_placement_slot() {
    // A poisoned session's dispatcher route is reaped, so it neither
    // leaks nor counts against its worker when later sessions are placed.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 2, ..Default::default() },
    );
    let traffic = GenerationTraffic::demo_mix();
    let (request, _) = traffic.session(0);
    let poisoned = server.open_session(request.clone()).unwrap();
    assert_eq!(poisoned.wait_open().unwrap().worker, 0);
    // Head 0 advances, head 1 is rejected: the desync poisons the
    // session (demo shape 0 has head_dim 32, num_heads 2).
    let d = traffic.shapes()[0].head_dim;
    let bad = vec![
        TokenQkv { q: vec![0.1; d], k: vec![0.1; d], v: vec![0.1; d] },
        TokenQkv { q: vec![0.1; 1], k: vec![0.1; 1], v: vec![0.1; 1] },
    ];
    server.step_session(poisoned.id(), bad).unwrap();
    assert!(poisoned.next_step().is_err());
    assert!(matches!(poisoned.recv().unwrap(), SessionEvent::Closed { .. }));

    // The dead session's route must not occupy worker 0's slot.
    let a = server.open_session(request.clone()).unwrap();
    let b = server.open_session(request).unwrap();
    assert_eq!(a.wait_open().unwrap().worker, 0, "the poisoned session's slot was reaped");
    assert_eq!(b.wait_open().unwrap().worker, 1);
    server.close_session(a.id()).unwrap();
    server.close_session(b.id()).unwrap();
    let _ = server.shutdown();
}

#[test]
fn failed_opens_deregister_the_session() {
    // An open that passes front-end validation but fails asynchronously
    // (here: the pattern needs global units the configured instance does
    // not have) must not leak its id: once the failed handshake is
    // observed, the session does not count as active and steps to it are
    // rejected rather than silently dropped.
    let mut config = AcceleratorConfig::default();
    config.hw.global_rows = 0;
    config.hw.global_cols = 0;
    let server = SaloServer::with_defaults(config);
    let pattern = HybridPattern::builder(16)
        .window(Window::causal(4).unwrap())
        .global_token(1)
        .build()
        .unwrap();
    let request = salo::serve::SessionRequest {
        pattern,
        head_dim: 4,
        num_heads: 1,
        prompt: vec![Qkv::random(3, 4, 0)],
    };
    let handle = server.open_session(request).unwrap();
    assert!(handle.wait_open().is_err(), "no global units: the open must fail");
    assert_eq!(server.active_sessions(), 0, "failed opens must not leak");
    let token = vec![TokenQkv { q: vec![0.0; 4], k: vec![0.0; 4], v: vec![0.0; 4] }];
    assert!(matches!(
        server.step_session(handle.id(), token),
        Err(ServeError::UnknownSession { .. })
    ));
    assert!(matches!(server.close_session(handle.id()), Err(ServeError::UnknownSession { .. })));
    let report = server.shutdown();
    assert_eq!(report.decode_sessions, 1);
    assert_eq!(report.decode_session_errors, 1);
    assert_eq!(report.decode_steps, 0, "no step ever reached the runtime");
}

#[test]
fn mixed_layer_and_decode_traffic_share_the_runtime() {
    // Layer requests and decode sessions interleave on the same pool;
    // ordered layer delivery and per-session step order both hold.
    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions { workers: 2, max_batch: 4, ..Default::default() },
    );
    let layers = salo::serve::TrafficMix::demo_mix();
    let generation = GenerationTraffic::demo_mix();
    let (request, steps) = generation.session(0);

    let handle = server.open_session(request).unwrap();
    for i in 0..6 {
        server.submit(layers.request(i)).unwrap();
    }
    handle.wait_open().unwrap();
    for (s, token) in steps.iter().enumerate() {
        server.step_session(handle.id(), token.clone()).unwrap();
        let step = handle.next_step().unwrap();
        assert_eq!(step.position, generation.shapes()[0].prompt_len + s);
    }
    for i in 0..6 {
        let response = server.recv().unwrap();
        assert_eq!(response.id, i, "layer responses stay ordered");
        assert!(response.result.is_ok());
    }
    server.close_session(handle.id()).unwrap();
    let report = server.shutdown();
    assert_eq!(report.requests, 6);
    assert_eq!(report.decode_sessions, 1);
    assert_eq!(report.decode_steps, generation.shapes()[0].steps() as u64);
}

#[test]
fn pinned_worker_switches_sessions_without_stale_state() {
    // A single-worker pool forces every session through one thread (one
    // scratch, session map churn); outputs must equal the multi-session
    // core oracle exactly.
    let config = AcceleratorConfig::default();
    let server =
        SaloServer::start(config.clone(), ServeOptions { workers: 1, ..Default::default() });
    let traffic = GenerationTraffic::demo_mix();
    let salo = Salo::new(config);

    // Open both shapes at once so the worker holds two live sessions and
    // alternates between them.
    let (req_a, steps_a) = traffic.session(0);
    let (req_b, steps_b) = traffic.session(1);
    let ha = server.open_session(req_a.clone()).unwrap();
    let hb = server.open_session(req_b.clone()).unwrap();
    let ia = ha.wait_open().unwrap();
    let ib = hb.wait_open().unwrap();
    assert_eq!((ia.worker, ib.worker), (0, 0), "single worker hosts both sessions");

    let mut core_a: Vec<DecodeSession> = (0..req_a.num_heads)
        .map(|h| {
            let mut s = salo
                .decode_session(&traffic.shapes()[0].pattern, traffic.shapes()[0].head_dim)
                .unwrap();
            s.prime_rows(&req_a.prompt[h], 0..traffic.shapes()[0].prompt_len).unwrap();
            s
        })
        .collect();
    let mut core_b: Vec<DecodeSession> = (0..req_b.num_heads)
        .map(|h| {
            let mut s = salo
                .decode_session(&traffic.shapes()[1].pattern, traffic.shapes()[1].head_dim)
                .unwrap();
            s.prime_rows(&req_b.prompt[h], 0..traffic.shapes()[1].prompt_len).unwrap();
            s
        })
        .collect();

    let rounds = steps_a.len().max(steps_b.len());
    for s in 0..rounds {
        if let Some(token) = steps_a.get(s) {
            server.step_session(ha.id(), token.clone()).unwrap();
            let got = ha.next_step().unwrap();
            for (h, core) in core_a.iter_mut().enumerate() {
                let expect = core.step(&token[h].q, &token[h].k, &token[h].v).unwrap();
                assert_eq!(got.heads[h].raw.as_ref(), Some(&expect.raw), "A step {s} head {h}");
            }
        }
        if let Some(token) = steps_b.get(s) {
            server.step_session(hb.id(), token.clone()).unwrap();
            let got = hb.next_step().unwrap();
            for (h, core) in core_b.iter_mut().enumerate() {
                let expect = core.step(&token[h].q, &token[h].k, &token[h].v).unwrap();
                assert_eq!(got.heads[h].raw.as_ref(), Some(&expect.raw), "B step {s} head {h}");
            }
        }
    }
    server.close_session(ha.id()).unwrap();
    server.close_session(hb.id()).unwrap();
    let report = server.shutdown();
    assert_eq!(report.decode_sessions, 2);
    assert_eq!(report.decode_step_errors, 0);
}

// --- paged K/V property suite ------------------------------------------

use proptest::prelude::*;
use salo::patterns::AttentionShape;
use salo::sim::{DecodeState, ExecScratch, KvPagePool, SpatialAccelerator};

/// Random decodable hybrid pattern for the paged-decode property: one
/// dilated causal-reaching window plus an optional prefix of globals.
fn arb_paged_pattern() -> impl Strategy<Value = HybridPattern> {
    (16usize..44, -8i64..0, 1usize..6, 1usize..4, prop::collection::vec(0usize..8, 0..3))
        .prop_filter_map("valid decodable pattern", |(n, lo, width, dil, globals)| {
            let hi = lo + (width as i64) * dil as i64;
            let w = Window::dilated(lo, hi, dil).ok()?;
            let p = HybridPattern::builder(n)
                .window(w)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .ok()?;
            p.decode_view().ok()?; // decodable after causal clipping
            Some(p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant of the paged K/V arena: a decode generation
    /// through the block pool — at *any* page size, including degenerate
    /// single-row pages and pages larger than the sequence — is
    /// bit-identical to the contiguous causal prefill in raw outputs,
    /// softmax weights and saturation counts, on random hybrid patterns.
    /// Page translation and horizon reclamation are pure memory-layout
    /// concerns: they must never touch a single arithmetic bit.
    #[test]
    fn paged_decode_is_bit_identical_to_contiguous_prefill(
        pattern in arb_paged_pattern(),
        page_rows in 1usize..33,
        seed in 0u64..1000,
    ) {
        let salo = small_salo();
        let d = 8usize;
        let causal = pattern.decode_view().unwrap().into_causal_pattern();
        let n = causal.n();
        let shape = AttentionShape::new(n, d, 1).unwrap();
        let compiled = std::sync::Arc::new(salo.compile(&causal, &shape).unwrap());
        let decode = compiled.decode_plan().unwrap();
        let qkv = Qkv::random(n, d, seed);
        let prefill = prefill_oracle(&salo, std::sync::Arc::clone(&compiled), &qkv);

        let accel = salo.accelerator();
        let scale = SpatialAccelerator::default_scale(d);
        let mut state = DecodeState::new(&decode, d);
        let mut pool = KvPagePool::new(page_rows);
        let mut scratch = ExecScratch::new();
        for t in 0..decode.min_step() {
            accel
                .prime_token(
                    &decode, &mut state,
                    qkv.q.row(t), qkv.k.row(t), qkv.v.row(t),
                    scale, &mut pool, &mut scratch,
                )
                .unwrap();
        }
        for t in decode.min_step()..n {
            let step = accel
                .execute_step(
                    &decode, &mut state,
                    qkv.q.row(t), qkv.k.row(t), qkv.v.row(t),
                    scale, &mut pool, &mut scratch,
                )
                .unwrap();
            prop_assert_eq!(step.position, t);
            let row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
            prop_assert_eq!(&step.raw, &row, "step {} raw output (page_rows {})", t, page_rows);
            prop_assert_eq!(step.weight_q16, prefill.weights_q16[t], "step {} weight", t);
        }
        for i in 0..state.num_globals() {
            let (raw, weight) = state.global_row_output(i);
            let g = decode.globals()[i] as usize;
            let row: Vec<_> = (0..d).map(|c| prefill.raw.get(g, c)).collect();
            prop_assert_eq!(&raw, &row, "global row {}", g);
            prop_assert_eq!(weight, prefill.weights_q16[g], "global row {} weight", g);
        }
        prop_assert_eq!(
            state.saturation_events(),
            prefill.report.saturation_events,
            "identical MAC chains"
        );
        // Residency sanity: the state accounts for exactly the pool's
        // outstanding pages, and never more than the whole sequence.
        prop_assert_eq!(state.resident_pages(), pool.pages_in_use());
        prop_assert!(state.resident_pages() <= n.div_ceil(page_rows));
    }
}
