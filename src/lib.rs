//! # SALO — hybrid sparse attention acceleration, reproduced in Rust
//!
//! This crate is the façade of a from-scratch reproduction of
//! *SALO: An Efficient Spatial Accelerator Enabling Hybrid Sparse Attention
//! Mechanisms for Long Sequences* (DAC 2022). It re-exports the workspace
//! sub-crates:
//!
//! | module | contents |
//! |---|---|
//! | [`patterns`] | hybrid sparse attention patterns (windows + globals) |
//! | [`fixed`] | the accelerator's fixed-point arithmetic |
//! | [`kernels`] | dense/sparse reference attention kernels |
//! | [`scheduler`] | the data scheduler (splitting, reordering, Eq. 2 merge) |
//! | [`sim`] | the cycle-level spatial accelerator simulator |
//! | [`baselines`] | CPU / GPU / Sanger performance and energy models |
//! | [`models`] | Longformer / ViL / BERT workload configurations |
//! | [`quant`] | the quantization accuracy study (Table 3) |
//! | [`core`] | the unified engine API (`AttentionRequest` over pluggable `Engine` backends) plus the `Salo` façade and streaming decode sessions |
//! | [`serve`] | concurrent serving runtime: plan cache, batching, a worker pool of engines consuming typed requests, pinned decode sessions |
//! | [`gateway`] | the network front door: length-prefixed binary wire protocol over TCP, per-tenant admission control and deficit-round-robin fairness, graceful drain |
//! | [`trace`] | zero-dependency observability: spans with Perfetto (Chrome trace JSON) export, mergeable metrics, stage-level kernel profiling |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use salo::core::Salo;
//! use salo::patterns::{longformer, AttentionShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pattern = longformer(256, 32, 1)?;
//! let shape = AttentionShape::new(256, 16, 1)?;
//! let salo = Salo::default_config();
//! let plan = salo.compile(&pattern, &shape)?;
//! let report = salo.estimate(&plan);
//! assert!(report.cycles.total > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// Hybrid sparse attention patterns. See [`salo_patterns`].
pub mod patterns {
    pub use salo_patterns::*;
}

/// Fixed-point arithmetic. See [`salo_fixed`].
pub mod fixed {
    pub use salo_fixed::*;
}

/// Reference attention kernels. See [`salo_kernels`].
pub mod kernels {
    pub use salo_kernels::*;
}

/// The data scheduler. See [`salo_scheduler`].
pub mod scheduler {
    pub use salo_scheduler::*;
}

/// The spatial accelerator simulator. See [`salo_sim`].
pub mod sim {
    pub use salo_sim::*;
}

/// Baseline device models. See [`salo_baselines`].
pub mod baselines {
    pub use salo_baselines::*;
}

/// Workload model configurations. See [`salo_models`].
pub mod models {
    pub use salo_models::*;
}

/// Quantization accuracy experiments. See [`salo_quant`].
pub mod quant {
    pub use salo_quant::*;
}

/// The top-level accelerator API. See [`salo_core`].
pub mod core {
    pub use salo_core::*;
}

/// The concurrent serving runtime. See [`salo_serve`].
pub mod serve {
    pub use salo_serve::*;
}

/// The network serving front door. See [`salo_gateway`].
pub mod gateway {
    pub use salo_gateway::*;
}

/// Observability: span tracing, metrics, kernel-stage profiling. See
/// [`salo_trace`].
pub mod trace {
    pub use salo_trace::*;
}
