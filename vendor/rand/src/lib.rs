//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a cargo
//! registry, so this vendored crate provides the small slice of the `rand`
//! 0.9 API the workspace actually uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`RngExt::random`] for the primitive types sampled
//! by the workload generators.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for test-workload generation. It is *not*
//! cryptographically secure (the real `StdRng` is ChaCha-based); nothing in
//! this workspace needs a CSPRNG.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a `u64` uniformly from `[0, bound)` (Lemire-style rejection-free
    /// multiply-shift; bias is negligible for the bounds used in tests).
    fn random_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.random::<u64>(), b.random::<u64>(), c.random::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
