//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate re-implements the slice of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_filter_map`, range and tuple strategies, [`any`],
//! `prop::collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the `Debug` rendering of
//!   its inputs instead of a minimized counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from the test
//!   name, so runs are reproducible without a persistence file.

use std::fmt::Debug;
use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no shrink tree: a strategy is just a
/// sampling function.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling otherwise.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, whence }
    }

    /// Keeps only values for which `f` returns `true`, resampling otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// How many times filtering strategies resample before giving up.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// See [`Strategy::prop_filter_map`].
#[derive(Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({:?}) rejected every sample", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected every sample", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.random_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u: $t = rng.random();
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy over the whole domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Mirrors the `proptest::prop` facade module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::RngExt;

        /// A number-of-elements specification: either a fixed size or a
        /// half-open range, mirroring `proptest::collection::SizeRange`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi: r.end }
            }
        }

        /// Strategy for `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.random_below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Derives a deterministic 64-bit seed from a test name.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a; any stable string hash works, it only decouples test streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `cases` successful executions of `body`, sampling fresh inputs each
/// time. Called by the expansion of [`proptest!`]; not public API.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), (String, String)>,
) {
    let mut rng = <TestRng as SeedableRng>::seed_from_u64(seed_from_name(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = config.cases as u64 * 64;
    while passed < config.cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err((msg, inputs)) if msg == REJECT_MARKER => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}); last inputs: {inputs}"
                );
            }
            Err((msg, inputs)) => {
                panic!(
                    "proptest case failed after {passed} passing cases: {msg}\n  inputs: {inputs}"
                );
            }
        }
    }
}

/// Internal sentinel distinguishing rejections from failures in `run_cases`.
pub const REJECT_MARKER: &str = "\u{1}proptest-reject\u{1}";

/// Renders one `name = value` pair for failure messages.
pub fn render_input<T: Debug>(name: &str, value: &T) -> String {
    format!("{name} = {value:?}")
}

/// The proptest entry-point macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                let __inputs = [$($crate::render_input(stringify!($arg), &$arg)),+].join(", ");
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => Ok(()),
                    Err($crate::TestCaseError::Reject(_)) => {
                        Err(($crate::REJECT_MARKER.to_string(), __inputs))
                    }
                    Err($crate::TestCaseError::Fail(msg)) => Err((msg, __inputs)),
                }
            });
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})", format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_in_bounds(x in -20i64..20, y in 3usize..9) {
            prop_assert!((-20..20).contains(&x));
            prop_assert!((3..9).contains(&y));
        }

        #[test]
        fn float_ranges_in_bounds(x in -2.0f64..2.0) {
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(any::<bool>(), 24)) {
            prop_assert_eq!(v.len(), 24);
        }

        #[test]
        fn map_and_filter_map_compose(
            n in (1usize..10).prop_map(|x| x * 2),
            m in (0i32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x)),
        ) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_eq!(m % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
