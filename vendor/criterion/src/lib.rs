//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to a cargo registry, so this
//! vendored crate implements the slice of the criterion API the workspace's
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and the median ns/iteration is
//! printed. This is enough to track perf trajectory between PRs without the
//! real crate's bootstrap analysis. `--no-run`, bench filtering by substring,
//! and `--bench` pass-through arguments all behave as cargo expects.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` parameterized by `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing callback handle passed to bench closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, recording the median ns/iteration across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration: aim for
        // ~1 ms per sample so cheap routines aren't dominated by timer
        // resolution.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let iters_per_sample = (1_000_000 / once).clamp(1, 10_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples_ns[samples_ns.len() / 2];
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher { samples: self.sample_size, ns_per_iter: 0.0 };
        routine(&mut bencher);
        println!("{full:<60} {:>14.1} ns/iter (median)", bencher.ns_per_iter);
        self
    }

    /// Runs `routine` with `input`, as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo bench passes `--bench` plus any user filter string; honour a
        // substring filter and `--list`, ignore the rest.
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--list" => list_only = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self { filter, list_only }
    }
}

impl Criterion {
    /// Begins a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs `routine` as an ungrouped benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.id.clone();
        self.benchmark_group(name).sample_size(100).bench_function(id, routine);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        if self.list_only {
            println!("{full_name}: benchmark");
            return false;
        }
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Re-export so existing `use criterion::black_box` imports keep working.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut b = Bencher { samples: 3, ns_per_iter: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dense", 128).id, "dense/128");
        assert_eq!(BenchmarkId::from_parameter("4x8").id, "4x8");
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut c = Criterion { filter: None, list_only: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("f", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("zzz".into()), list_only: false };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |_b| ran = true);
        assert!(!ran);
    }
}
