//! The workload descriptor baseline models consume.

/// How a CPU/GPU software stack executes a hybrid-sparse attention layer.
///
/// The paper's observation (§1, §6.2) is that hybrid sparse attention "is
/// not directly supported by the highly optimized GEMM kernels", so each
/// workload family lands on a different — and differently inefficient —
/// implementation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionFamily {
    /// Full `n x n` attention via large GEMMs (BERT-style dense models).
    Dense,
    /// 1-D banded attention via Longformer's chunked sliding-window
    /// kernels: GEMM-friendly but with overlap overheads and extra copies.
    Banded1d,
    /// 2-D windowed attention via ViL's sliding-chunk/unfold path:
    /// gather-dominated and memory bound.
    Windowed2d,
}

/// One attention layer as the baseline models see it.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineWorkload {
    /// Display name (e.g. "Longformer").
    pub name: String,
    /// Sequence length `n`.
    pub seq_len: usize,
    /// Model (hidden) dimension `h * d_head`.
    pub model_dim: usize,
    /// Number of heads.
    pub num_heads: usize,
    /// Kept score positions of the pattern (one head).
    pub nnz: u64,
    /// Execution strategy on CPU/GPU.
    pub family: ExecutionFamily,
}

impl BaselineWorkload {
    /// FLOPs to execute the layer *exploiting* sparsity:
    /// `4 * nnz * model_dim` (two matmuls, two FLOPs per MAC).
    #[must_use]
    pub fn sparse_flops(&self) -> f64 {
        4.0 * self.nnz as f64 * self.model_dim as f64
    }

    /// FLOPs for the dense computation: `4 * n^2 * model_dim`.
    #[must_use]
    pub fn dense_flops(&self) -> f64 {
        4.0 * (self.seq_len as f64).powi(2) * self.model_dim as f64
    }

    /// FLOPs the family's implementation actually executes.
    #[must_use]
    pub fn executed_flops(&self) -> f64 {
        match self.family {
            ExecutionFamily::Dense => self.dense_flops(),
            // Sparse implementations compute the kept positions (chunk
            // overlap overheads are folded into the per-family
            // bytes-per-FLOP calibration).
            ExecutionFamily::Banded1d | ExecutionFamily::Windowed2d => self.sparse_flops(),
        }
    }

    /// Pattern density `nnz / n^2`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz as f64 / (self.seq_len as f64).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineWorkload {
        BaselineWorkload {
            name: "test".into(),
            seq_len: 1024,
            model_dim: 768,
            num_heads: 12,
            nnz: 1024 * 128,
            family: ExecutionFamily::Banded1d,
        }
    }

    #[test]
    fn flop_accounting() {
        let w = sample();
        assert_eq!(w.sparse_flops(), 4.0 * (1024.0 * 128.0) * 768.0);
        assert_eq!(w.dense_flops(), 4.0 * 1024.0 * 1024.0 * 768.0);
        assert!(w.executed_flops() < w.dense_flops());
        assert!((w.density() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn dense_family_executes_dense_flops() {
        let mut w = sample();
        w.family = ExecutionFamily::Dense;
        assert_eq!(w.executed_flops(), w.dense_flops());
    }
}
