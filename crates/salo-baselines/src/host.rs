//! Real measured kernel timings on the host machine.
//!
//! The analytical device models are calibrated to the paper's testbed; this
//! module complements them with *actual wall-clock measurements* of the
//! `salo-kernels` software attention on whatever machine runs the
//! benchmarks. The motivation experiment (E1) uses it to demonstrate the
//! quadratic growth of dense attention with genuinely measured numbers,
//! and `bench_kernels` uses it for the dense-vs-sparse crossover.

use std::time::Instant;

use salo_kernels::{dense_attention, sparse_attention, Qkv};
use salo_patterns::HybridPattern;

/// A wall-clock measurement: median over `reps` runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMeasurement {
    /// Median latency in seconds.
    pub median_s: f64,
    /// Minimum latency in seconds.
    pub min_s: f64,
    /// Number of repetitions measured.
    pub reps: usize,
}

fn measure(mut f: impl FnMut(), reps: usize) -> HostMeasurement {
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    HostMeasurement { median_s: times[times.len() / 2], min_s: times[0], reps }
}

/// Measures dense attention for one `n x d` head.
#[must_use]
pub fn measure_dense(n: usize, d: usize, reps: usize, seed: u64) -> HostMeasurement {
    let qkv = Qkv::random(n, d, seed);
    let scale = 1.0 / (d.max(1) as f32).sqrt();
    measure(
        || {
            let out = dense_attention(&qkv.q, &qkv.k, &qkv.v, scale).expect("dense");
            std::hint::black_box(out);
        },
        reps,
    )
}

/// Measures pattern-restricted sparse attention for one head.
#[must_use]
pub fn measure_sparse(
    pattern: &HybridPattern,
    d: usize,
    reps: usize,
    seed: u64,
) -> HostMeasurement {
    let qkv = Qkv::random(pattern.n(), d, seed);
    let scale = 1.0 / (d.max(1) as f32).sqrt();
    measure(
        || {
            let out = sparse_attention(pattern, &qkv.q, &qkv.k, &qkv.v, scale).expect("sparse");
            std::hint::black_box(out);
        },
        reps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::sliding_only;

    #[test]
    fn measurements_are_positive_and_ordered() {
        let m = measure_dense(64, 16, 3, 1);
        assert!(m.min_s > 0.0);
        assert!(m.median_s >= m.min_s);
        assert_eq!(m.reps, 3);
    }

    #[test]
    fn sparse_beats_dense_at_scale() {
        // Even unoptimized, O(n w d) beats O(n^2 d) once n >> w.
        let n = 512;
        let d = 16;
        let pattern = sliding_only(n, 16).unwrap();
        let dense = measure_dense(n, d, 3, 2);
        let sparse = measure_sparse(&pattern, d, 3, 2);
        assert!(
            sparse.median_s < dense.median_s,
            "sparse {} vs dense {}",
            sparse.median_s,
            dense.median_s
        );
    }

    #[test]
    fn reps_zero_clamped() {
        let m = measure_dense(16, 4, 0, 3);
        assert_eq!(m.reps, 1);
    }
}
