//! Roofline-style CPU/GPU latency and energy models.

use crate::{BaselineWorkload, ExecutionFamily};

/// A calibrated baseline device.
///
/// Latency model per workload family:
///
/// ```text
/// t = max(executed_flops / (peak_flops * eff_family),
///         executed_flops * bytes_per_flop_family / mem_bw) + overhead
/// ```
///
/// Dense attention on big GEMMs is compute-limited (with an efficiency
/// well below peak because the softmax and unfused elementwise stages sit
/// between the two matmuls). Sparse window implementations are
/// memory-limited: chunking/unfolding multiplies buffer traffic, which the
/// per-family `bytes_per_flop` captures.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Device display name.
    pub name: String,
    /// Peak f32 throughput (FLOP/s).
    pub peak_flops: f64,
    /// Memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Achieved fraction of peak on dense attention chains.
    pub dense_efficiency: f64,
    /// Effective buffer bytes moved per executed FLOP for 1-D banded
    /// (Longformer-style chunked) implementations.
    pub banded1d_bytes_per_flop: f64,
    /// Effective bytes per FLOP for 2-D windowed (ViL sliding-chunk /
    /// unfold) implementations.
    pub windowed2d_bytes_per_flop: f64,
    /// Fixed per-layer overhead (kernel launches, framework dispatch).
    pub overhead_s: f64,
    /// Energy per executed FLOP (picojoules) — the measured-energy model
    /// implied by the paper's Fig. 7b ratios.
    pub energy_per_flop_pj: f64,
    /// Nameplate board/package power (W), for the alternative
    /// `P x t` energy accounting.
    pub tdp_w: f64,
}

impl Device {
    /// Latency of one attention layer under the workload's family.
    #[must_use]
    pub fn latency_s(&self, w: &BaselineWorkload) -> f64 {
        let flops = w.executed_flops();
        let (eff, bpf) = match w.family {
            // Dense GEMMs keep data resident; memory time is folded into
            // the dense efficiency (anchored to the paper's BERT
            // latencies, which scale perfectly quadratically).
            ExecutionFamily::Dense => (self.dense_efficiency, 0.0),
            ExecutionFamily::Banded1d => (self.dense_efficiency, self.banded1d_bytes_per_flop),
            ExecutionFamily::Windowed2d => (self.dense_efficiency, self.windowed2d_bytes_per_flop),
        };
        let compute = flops / (self.peak_flops * eff);
        let memory = flops * bpf / self.mem_bw;
        compute.max(memory) + self.overhead_s
    }

    /// Energy of one attention layer (per-FLOP model).
    #[must_use]
    pub fn energy_j(&self, w: &BaselineWorkload) -> f64 {
        w.executed_flops() * self.energy_per_flop_pj * 1e-12
    }

    /// Energy under the nameplate `P x t` accounting (reported alongside
    /// the per-FLOP model; the paper's own methodology is closer to the
    /// per-FLOP one — see EXPERIMENTS.md).
    #[must_use]
    pub fn energy_nameplate_j(&self, w: &BaselineWorkload) -> f64 {
        self.tdp_w * self.latency_s(w)
    }
}

/// The paper's CPU baseline: Intel Xeon E5-2630 v3 (8 cores, 2.4 GHz,
/// AVX2) with MKL.
///
/// Calibration: peak = 8 cores x 2.4 GHz x 32 FLOP/cycle = 614.4 GFLOP/s;
/// stream bandwidth 59 GB/s (4-channel DDR4-1866); dense efficiency 0.25
/// (MKL GEMM chain with interleaved softmax); banded/windowed bytes-per-
/// FLOP 3.1/4.0 fit the paper's CPU speedups (83.57x / 83.12x / 101.31x)
/// to within ~15 %; 68 pJ/FLOP reproduces the Fig. 7b CPU energy ratios.
#[must_use]
pub fn cpu_xeon_e5_2630_v3() -> Device {
    Device {
        name: "Intel Xeon E5-2630 v3 (MKL)".into(),
        peak_flops: 614.4e9,
        mem_bw: 59.0e9,
        dense_efficiency: 0.25,
        banded1d_bytes_per_flop: 3.1,
        windowed2d_bytes_per_flop: 4.0,
        overhead_s: 20e-6,
        energy_per_flop_pj: 68.0,
        tdp_w: 85.0,
    }
}

/// The paper's GPU baseline: NVIDIA GTX 1080Ti with PyTorch 1.5 + cuDNN.
///
/// Calibration: peak 11.34 TFLOP/s, 484 GB/s. Dense efficiency 0.1235
/// anchors the §2.1 measurements exactly (9.20 ms at n = 2048 -> achieved
/// ~1.4 TFLOP/s on the unfused attention chain, and the same efficiency
/// reproduces 145.70 ms at n = 8192). Banded/windowed bytes-per-FLOP
/// 2.2/8.0 fit the paper's GPU speedups (7.38x / 20.10x / 25.51x) to
/// within ~12 %; 115 pJ/FLOP reproduces the Fig. 7b GPU energy ratios.
#[must_use]
pub fn gtx_1080ti() -> Device {
    Device {
        name: "NVIDIA GTX 1080Ti (cuDNN)".into(),
        peak_flops: 11.34e12,
        mem_bw: 484.0e9,
        dense_efficiency: 0.1235,
        banded1d_bytes_per_flop: 2.2,
        windowed2d_bytes_per_flop: 8.0,
        overhead_s: 50e-6,
        energy_per_flop_pj: 115.0,
        tdp_w: 250.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert(n: usize) -> BaselineWorkload {
        BaselineWorkload {
            name: format!("BERT-base n={n}"),
            seq_len: n,
            model_dim: 768,
            num_heads: 12,
            nnz: (n as u64) * (n as u64),
            family: ExecutionFamily::Dense,
        }
    }

    #[test]
    fn gpu_anchors_match_section_2_1() {
        let gpu = gtx_1080ti();
        // 9.20 ms at n = 2048.
        let t2048 = gpu.latency_s(&bert(2048)) * 1e3;
        assert!((t2048 - 9.20).abs() / 9.20 < 0.10, "t(2048) = {t2048} ms");
        // 145.70 ms at n = 8192 (the paper calls it ~16x).
        let t8192 = gpu.latency_s(&bert(8192)) * 1e3;
        assert!((t8192 - 145.70).abs() / 145.70 < 0.10, "t(8192) = {t8192} ms");
        let ratio = t8192 / t2048;
        assert!((ratio - 16.0).abs() < 1.0, "quadratic ratio {ratio}");
    }

    #[test]
    fn cpu_slower_than_gpu_on_dense() {
        let (cpu, gpu) = (cpu_xeon_e5_2630_v3(), gtx_1080ti());
        let w = bert(2048);
        assert!(cpu.latency_s(&w) > 5.0 * gpu.latency_s(&w));
    }

    #[test]
    fn sparse_families_memory_bound() {
        let gpu = gtx_1080ti();
        let w = BaselineWorkload {
            name: "longformer".into(),
            seq_len: 4096,
            model_dim: 768,
            num_heads: 12,
            nnz: 2_105_344,
            family: ExecutionFamily::Banded1d,
        };
        let t = gpu.latency_s(&w);
        // Effective throughput ~ bw / bytes-per-flop = 220 GFLOP/s.
        let eff = w.sparse_flops() / t;
        assert!((eff - 220e9).abs() / 220e9 < 0.15, "effective {eff}");
        // The 2-D family is slower per FLOP.
        let mut w2 = w.clone();
        w2.family = ExecutionFamily::Windowed2d;
        assert!(gpu.latency_s(&w2) > t);
    }

    #[test]
    fn energy_models() {
        let cpu = cpu_xeon_e5_2630_v3();
        let w = bert(1024);
        let e = cpu.energy_j(&w);
        assert!((e - w.dense_flops() * 68e-12).abs() < 1e-9);
        // Nameplate accounting is far larger than the per-FLOP model for
        // memory-bound kernels — both are reported, only one is used for
        // the Fig. 7b reproduction.
        assert!(cpu.energy_nameplate_j(&w) > 0.0);
    }

    #[test]
    fn overhead_dominates_tiny_layers() {
        let gpu = gtx_1080ti();
        let tiny = BaselineWorkload {
            name: "tiny".into(),
            seq_len: 8,
            model_dim: 64,
            num_heads: 1,
            nnz: 64,
            family: ExecutionFamily::Dense,
        };
        let t = gpu.latency_s(&tiny);
        assert!(t >= gpu.overhead_s);
        assert!(t < gpu.overhead_s * 1.1);
    }
}
