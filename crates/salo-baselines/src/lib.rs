//! Baseline device models for the SALO evaluation (§6).
//!
//! The paper compares SALO against a server CPU (Intel Xeon E5-2630 v3,
//! MKL backend), a server GPU (GTX 1080Ti, cuDNN backend) and the Sanger
//! accelerator. We do not have that 2022 testbed, so this crate provides
//! *calibrated analytical models*:
//!
//! * [`Device`] — a roofline-style latency model
//!   (`max(compute, memory) + overhead`) with per-execution-strategy
//!   parameters, anchored to the two latencies the paper reports for
//!   BERT-base attention on the GTX 1080Ti (9.20 ms at `n = 2048`,
//!   145.70 ms at `n = 8192`, §2.1) and to the relative throughputs its
//!   speedup figures imply. Energies use per-FLOP constants derived from
//!   the paper's energy-saving figures (~68 pJ/FLOP CPU, ~115 pJ/FLOP
//!   GPU — consistent with published 28–45 nm measurements);
//! * [`SangerModel`] — the §6.3 comparison: a `64 x 16` systolic array
//!   with a quadratic low-precision score-prediction step and 55–75 %
//!   utilization on irregular sparsity;
//! * [`host`] — *real measured* kernel timings on the machine running
//!   this crate, used by the motivation experiment to demonstrate the
//!   quadratic-vs-linear scaling with actual wall-clock numbers.
//!
//! Every calibration constant is documented at its definition and
//! revisited in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod device;
pub mod host;
mod related;
mod sanger;
mod workload;

pub use device::{cpu_xeon_e5_2630_v3, gtx_1080ti, Device};
pub use related::{A3Model, SpAttenModel};
pub use sanger::SangerModel;
pub use workload::{BaselineWorkload, ExecutionFamily};
