//! Quantitative models of the other attention accelerators the paper
//! discusses (§2.2): A³ and SpAtten.
//!
//! The paper's critiques are qualitative; these models make them
//! measurable so the `table_related_work` harness can show *where* each
//! design stops scaling:
//!
//! * **A³** (HPCA 2020) approximates attention by scanning sorted key
//!   components, but "stores the whole preprocessed key matrix on the SRAM
//!   buffer, making it difficult to scale up … given long input
//!   sequences". The model charges its preprocessing and candidate search,
//!   and reports the hard sequence-length ceiling its SRAM imposes —
//!   beyond it, per-query DRAM streaming dominates.
//! * **SpAtten** (HPCA 2021) prunes tokens and heads in cascade, but "its
//!   relatively low pruning ratio leads to low sparsity and cannot
//!   effectively reduce the input size". The model keeps a
//!   `keep_ratio` fraction of tokens and computes dense attention on the
//!   survivors — quadratic in `keep_ratio * n`.

/// Analytical model of the A³ accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct A3Model {
    /// On-chip SRAM for the preprocessed key matrix (bytes). The A³
    /// prototype provisions on the order of a few hundred KB.
    pub key_sram_bytes: usize,
    /// MAC throughput (ops/s) of its datapath at 1 GHz-class clocking.
    pub macs_per_s: f64,
    /// Candidates examined per query by the approximate search (its `k`).
    pub candidates_per_query: usize,
    /// Throughput penalty once keys spill to DRAM (effective slowdown of
    /// the candidate search when each probe misses on-chip).
    pub spill_penalty: f64,
}

impl Default for A3Model {
    fn default() -> Self {
        Self {
            key_sram_bytes: 512 * 1024,
            macs_per_s: 1.0e12,
            candidates_per_query: 64,
            spill_penalty: 8.0,
        }
    }
}

impl A3Model {
    /// The longest sequence whose preprocessed key matrix (16-bit words)
    /// fits on chip for head dimension `d`.
    #[must_use]
    pub fn max_resident_seq_len(&self, head_dim: usize) -> usize {
        self.key_sram_bytes / (2 * head_dim.max(1))
    }

    /// Latency of one layer (seconds).
    ///
    /// Preprocessing sorts/scans the key matrix (`n * d` work), then each
    /// query examines `candidates_per_query` keys (`k * d` MACs each) and
    /// accumulates the same number of value rows. Past the SRAM ceiling
    /// the search throughput divides by `spill_penalty`.
    #[must_use]
    pub fn latency_s(&self, n: usize, head_dim: usize, heads: usize) -> f64 {
        let d = head_dim as f64;
        let per_head_preprocess = n as f64 * d;
        let per_head_search = n as f64 * self.candidates_per_query as f64 * d * 2.0;
        let mut macs = (per_head_preprocess + per_head_search) * heads as f64;
        if n > self.max_resident_seq_len(head_dim) {
            macs *= self.spill_penalty;
        }
        macs / self.macs_per_s
    }
}

/// Analytical model of the SpAtten accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SpAttenModel {
    /// Fraction of tokens surviving cascade pruning for this layer.
    /// SpAtten reports ~1.9x cumulative token reduction on BERT-class
    /// models — mid-network layers keep roughly 60-75 % of tokens.
    pub token_keep_ratio: f64,
    /// Fraction of heads kept.
    pub head_keep_ratio: f64,
    /// MAC throughput (ops/s).
    pub macs_per_s: f64,
    /// Utilization of its datapath.
    pub utilization: f64,
}

impl Default for SpAttenModel {
    fn default() -> Self {
        Self { token_keep_ratio: 0.65, head_keep_ratio: 0.9, macs_per_s: 1.0e12, utilization: 0.7 }
    }
}

impl SpAttenModel {
    /// Latency of one layer (seconds): dense attention over the surviving
    /// tokens and heads, plus the top-k ranking pass over the full input.
    #[must_use]
    pub fn latency_s(&self, n: usize, head_dim: usize, heads: usize) -> f64 {
        let kept_n = (n as f64 * self.token_keep_ratio).ceil();
        let kept_heads = (heads as f64 * self.head_keep_ratio).ceil();
        let attention_macs = 2.0 * kept_n * kept_n * head_dim as f64 * kept_heads;
        let ranking_macs = (n as f64) * head_dim as f64 * heads as f64;
        (attention_macs / self.utilization + ranking_macs) / self.macs_per_s
    }

    /// The effective density SpAtten achieves (`kept_n^2 / n^2`).
    #[must_use]
    pub fn effective_density(&self) -> f64 {
        self.token_keep_ratio * self.token_keep_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_sram_ceiling_matches_paper_critique() {
        let a3 = A3Model::default();
        // 512 KB of 16-bit keys at d = 64: 4096 tokens fit...
        assert_eq!(a3.max_resident_seq_len(64), 4096);
        // ...so Longformer-4096 sits at the edge and 8k/16k spill.
        let at_4k = a3.latency_s(4096, 64, 12);
        let at_8k = a3.latency_s(8192, 64, 12);
        // Work doubled but latency jumps by the spill penalty too.
        assert!(at_8k / at_4k > 10.0, "spill ratio {}", at_8k / at_4k);
    }

    #[test]
    fn a3_scales_linearly_while_resident() {
        let a3 = A3Model::default();
        let t1 = a3.latency_s(1024, 64, 1);
        let t2 = a3.latency_s(2048, 64, 1);
        assert!((t2 / t1 - 2.0).abs() < 0.01, "resident scaling {}", t2 / t1);
    }

    #[test]
    fn spatten_stays_quadratic() {
        let sp = SpAttenModel::default();
        let t1 = sp.latency_s(2048, 64, 12);
        let t2 = sp.latency_s(4096, 64, 12);
        let ratio = t2 / t1;
        assert!(ratio > 3.5, "pruning does not linearize: ratio {ratio}");
        // Effective density far above hybrid sparse patterns.
        assert!(sp.effective_density() > 0.4);
    }

    #[test]
    fn pruning_helps_but_modestly() {
        let pruned = SpAttenModel::default();
        let unpruned =
            SpAttenModel { token_keep_ratio: 1.0, head_keep_ratio: 1.0, ..SpAttenModel::default() };
        let n = 4096;
        let gain = unpruned.latency_s(n, 64, 12) / pruned.latency_s(n, 64, 12);
        // The paper's point: low pruning ratios buy only ~2-3x, not the
        // ~8x a 0.125-density hybrid pattern provides.
        assert!((1.5..4.0).contains(&gain), "pruning gain {gain}");
    }
}
