//! The Sanger comparison model (§6.3).
//!
//! Sanger (MICRO 2021) accelerates *dynamic* sparse attention: it first
//! predicts the score matrix in low precision, masks it, then computes the
//! surviving positions on a reconfigurable `64 x 16` systolic array. The
//! paper's comparison points (§6.3):
//!
//! * nearly equal peak throughput (1024 PEs at the same frequency);
//! * the prediction step costs a *quadratic* number of low-precision
//!   MACs regardless of sparsity — the term that dominates for long
//!   sequences;
//! * PE utilization of 55–75 % on its irregular (unstructured) sparsity,
//!   against SALO's >75 % on hybrid structured patterns;
//! * net effect: SALO is ~1.33x faster at equal PE count, sparsity and
//!   frequency.

/// Analytical Sanger performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct SangerModel {
    /// PE array rows (64 in the paper).
    pub pe_rows: usize,
    /// PE array columns (16 in the paper).
    pub pe_cols: usize,
    /// Clock frequency (GHz).
    pub freq_ghz: f64,
    /// Throughput multiplier of the low-precision (4-bit) prediction pass
    /// relative to full-precision MACs.
    pub predict_speedup: f64,
    /// Utilization at the sparse end of the measured range (density 0.05).
    pub util_low: f64,
    /// Utilization at the dense end of the measured range (density 0.30).
    pub util_high: f64,
}

impl Default for SangerModel {
    fn default() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 16,
            freq_ghz: 1.0,
            predict_speedup: 4.0,
            util_low: 0.55,
            util_high: 0.75,
        }
    }
}

impl SangerModel {
    /// Total PEs.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Utilization at a given pattern density, interpolating the paper's
    /// 55–75 % over its measured density range 0.05–0.30 (clamped
    /// outside).
    #[must_use]
    pub fn utilization(&self, density: f64) -> f64 {
        let t = ((density - 0.05) / 0.25).clamp(0.0, 1.0);
        self.util_low + t * (self.util_high - self.util_low)
    }

    /// Cycles for the low-precision score prediction: `n^2 * d` MACs per
    /// head at `predict_speedup` MACs per PE-cycle.
    #[must_use]
    pub fn predict_cycles(&self, n: usize, head_dim: usize, heads: usize) -> f64 {
        let macs = (n as f64).powi(2) * head_dim as f64 * heads as f64;
        macs / (self.pes() as f64 * self.predict_speedup)
    }

    /// Cycles for the sparse attention itself: `2 * nnz * d` MACs per head
    /// (score + value matmuls) at the density-dependent utilization.
    #[must_use]
    pub fn attention_cycles(&self, n: usize, nnz: u64, head_dim: usize, heads: usize) -> f64 {
        let density = nnz as f64 / (n as f64).powi(2);
        let macs = 2.0 * nnz as f64 * head_dim as f64 * heads as f64;
        macs / (self.pes() as f64 * self.utilization(density))
    }

    /// End-to-end latency in seconds for one layer.
    #[must_use]
    pub fn latency_s(&self, n: usize, nnz: u64, head_dim: usize, heads: usize) -> f64 {
        let cycles = self.predict_cycles(n, head_dim, heads)
            + self.attention_cycles(n, nnz, head_dim, heads);
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        let m = SangerModel::default();
        assert_eq!(m.pes(), 1024);
    }

    #[test]
    fn utilization_interpolates_measured_range() {
        let m = SangerModel::default();
        assert!((m.utilization(0.05) - 0.55).abs() < 1e-12);
        assert!((m.utilization(0.30) - 0.75).abs() < 1e-12);
        let mid = m.utilization(0.175);
        assert!(mid > 0.55 && mid < 0.75);
        // Clamped outside the measured range.
        assert!((m.utilization(0.01) - 0.55).abs() < 1e-12);
        assert!((m.utilization(0.9) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prediction_is_quadratic_regardless_of_sparsity() {
        let m = SangerModel::default();
        let a = m.predict_cycles(1024, 64, 1);
        let b = m.predict_cycles(2048, 64, 1);
        assert!((b / a - 4.0).abs() < 1e-9);
    }

    #[test]
    fn salo_advantage_in_paper_range() {
        // SALO at equal PEs/frequency: MAC utilization ~0.78, no predict
        // step: cycles = 2*nnz*d / (1024 * 0.78). At the dense end of the
        // paper's sparsity range (0.30) the model lands on the paper's
        // 1.33x headline; at lower densities Sanger's quadratic predict
        // step dominates and SALO's advantage grows.
        let m = SangerModel::default();
        let n = 4096usize;
        let d = 64usize;
        for (density, lo, hi) in [(0.30, 1.25, 1.5), (0.125, 1.8, 2.2), (0.05, 3.0, 3.7)] {
            let nnz = (density * (n as f64).powi(2)) as u64;
            let sanger = m.latency_s(n, nnz, d, 1);
            let salo = (2.0 * nnz as f64 * d as f64) / (1024.0 * 0.78) / 1e9;
            let speedup = sanger / salo;
            assert!(
                (lo..hi).contains(&speedup),
                "density {density}: speedup {speedup} outside [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn latency_increases_with_work() {
        let m = SangerModel::default();
        assert!(m.latency_s(2048, 500_000, 64, 12) > m.latency_s(1024, 250_000, 64, 12));
    }
}
