//! The unified engine API: typed attention requests over pluggable
//! execution backends.
//!
//! Every way of running hybrid sparse attention in this repository —
//! one-shot prefill, streaming decode, the serving runtime's workers —
//! speaks one request shape: an [`AttentionRequest`] goes into an
//! [`Engine`], an [`AttentionResponse`] comes out. Backends are
//! interchangeable objects behind the object-safe [`Engine`] trait, each
//! describing itself through an [`EngineCaps`] capability descriptor:
//!
//! * [`LoweredEngine`] — the fast allocation-free fixed-point datapath
//!   (the default; what the serving runtime's workers run);
//! * [`SystolicEngine`] — the event-accurate systolic oracle, bit-identical
//!   to the lowered engine by construction;
//! * [`ReferenceEngine`] — plain `f32` softmax attention, the accuracy
//!   yardstick the fixed-point engines are measured against.
//!
//! Comparing backends is a one-liner per engine:
//!
//! ```
//! use salo_core::{AttentionRequest, Engine, Salo};
//! use salo_kernels::Qkv;
//! use salo_patterns::{longformer, AttentionShape};
//!
//! # fn main() -> Result<(), salo_core::SaloError> {
//! let salo = Salo::default_config();
//! let pattern = longformer(64, 8, 1)?;
//! let shape = AttentionShape::new(64, 8, 1)?;
//! let heads = Qkv::random_heads(&shape, 7);
//!
//! let mut outputs = Vec::new();
//! for mut engine in salo.all_engines() {
//!     let handle = engine.prepare(&pattern, &shape)?;
//!     let request = AttentionRequest::Prefill { pattern: handle, shape, heads: heads.clone() };
//!     outputs.push(engine.execute(request)?.into_prefill()?);
//! }
//! // lowered and systolic agree bit for bit; the reference is the f32 yardstick
//! assert_eq!(outputs[0].heads[0].raw, outputs[1].heads[0].raw);
//! assert!(outputs[0].heads[0].output.max_abs_diff(&outputs[2].heads[0].output) < 0.3);
//! # Ok(())
//! # }
//! ```

mod fixed;
mod reference;

use std::fmt;
use std::sync::Arc;

use salo_fixed::Fix16x8;
use salo_kernels::{Matrix, Qkv};
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::ExecutionReport;

use crate::{CompiledPlan, MultiHeadRun, Salo, SaloError};

pub use fixed::{LoweredEngine, SystolicEngine};
pub use reference::{reference_head, ReferenceEngine};

/// Identifier of a decode session held inside an engine.
pub type SessionId = u64;

/// One generated token's inputs for a single head: the query, key and
/// value rows of the next position (each `head_dim` elements).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenQkv {
    /// Query row.
    pub q: Vec<f32>,
    /// Key row.
    pub k: Vec<f32>,
    /// Value row.
    pub v: Vec<f32>,
}

impl TokenQkv {
    /// Extracts row `t` of a full-sequence [`Qkv`] as a token — the demo
    /// and test form, where the "generated" sequence is known up front.
    #[must_use]
    pub fn from_row(qkv: &Qkv, t: usize) -> Self {
        Self { q: qkv.q.row(t).to_vec(), k: qkv.k.row(t).to_vec(), v: qkv.v.row(t).to_vec() }
    }
}

/// What an [`Engine`] can do, and with which fidelity.
///
/// The descriptor lets callers pick a backend without knowing its
/// concrete type: the serving runtime requires `supports_decode`, the
/// equivalence tests group engines by `bit_exact`, and the timing studies
/// ask for `event_accurate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// Whether the engine executes streaming-decode requests
    /// ([`AttentionRequest::DecodeOpen`] / `DecodeStep` / `DecodeClose`).
    pub supports_decode: bool,
    /// Whether outputs follow the accelerator's exact fixed-point
    /// arithmetic: two `bit_exact` engines produce identical raw bits on
    /// identical requests.
    pub bit_exact: bool,
    /// Whether prefill passes are stepped through the event-accurate
    /// systolic array model (explicit skew, rippled row sums) rather than
    /// the closed-form lowered program.
    pub event_accurate: bool,
}

/// A pattern, optionally paired with a plan pre-compiled for one
/// accelerator configuration.
///
/// The handle is what [`AttentionRequest`]s carry instead of raw
/// patterns: it lets the serving runtime attach the cache's
/// [`CompiledPlan`] (so engines skip the scheduler pass) while still
/// giving pattern-level engines like [`ReferenceEngine`] the exact key
/// sets. Build one with [`Engine::prepare`] — each engine attaches
/// whatever it needs — or from parts when the plan is already at hand.
#[derive(Debug, Clone)]
pub struct PatternHandle {
    pattern: Option<Arc<HybridPattern>>,
    plan: Option<Arc<CompiledPlan>>,
}

impl PatternHandle {
    /// A handle carrying only the pattern; engines that need a compiled
    /// plan will compile it themselves.
    #[must_use]
    pub fn from_pattern(pattern: HybridPattern) -> Self {
        Self { pattern: Some(Arc::new(pattern)), plan: None }
    }

    /// A handle carrying only a compiled plan — sufficient for the
    /// fixed-point engines, rejected by pattern-level engines.
    #[must_use]
    pub fn from_plan(plan: Arc<CompiledPlan>) -> Self {
        Self { pattern: None, plan: Some(plan) }
    }

    /// A handle carrying both the pattern and its compiled plan — what
    /// the serving runtime builds from its plan cache.
    #[must_use]
    pub fn new(pattern: Arc<HybridPattern>, plan: Arc<CompiledPlan>) -> Self {
        Self { pattern: Some(pattern), plan: Some(plan) }
    }

    /// The pattern, when the handle carries one.
    #[must_use]
    pub fn pattern(&self) -> Option<&Arc<HybridPattern>> {
        self.pattern.as_ref()
    }

    /// The pre-compiled plan, when the handle carries one.
    #[must_use]
    pub fn plan(&self) -> Option<&Arc<CompiledPlan>> {
        self.plan.as_ref()
    }

    /// The pattern, or an [`SaloError::Unsupported`] naming `engine` —
    /// for engines that cannot work from a compiled plan alone.
    pub(crate) fn require_pattern(
        &self,
        engine: &'static str,
    ) -> Result<&Arc<HybridPattern>, SaloError> {
        self.pattern.as_ref().ok_or_else(|| SaloError::Unsupported {
            engine,
            reason: "request handle carries no pattern (plan-only handles need a \
                     fixed-point engine)"
                .into(),
        })
    }
}

/// A typed attention request — the single entry point every backend
/// serves.
///
/// Prefill is stateless; the three decode variants drive a session whose
/// state (persistent K/V history, one slot per head) lives inside the
/// engine under a caller-chosen [`SessionId`].
#[derive(Debug, Clone)]
pub enum AttentionRequest {
    /// Execute all heads of one attention layer.
    Prefill {
        /// The hybrid pattern (with or without a pre-compiled plan).
        pattern: PatternHandle,
        /// Sequence/head dimensions; `heads.len()` must equal
        /// `shape.num_heads`.
        shape: AttentionShape,
        /// Per-head Q/K/V inputs.
        heads: Vec<Qkv>,
    },
    /// Open a streaming decode session and ingest its prompt.
    DecodeOpen {
        /// Caller-chosen session id; must not collide with a live session.
        session: SessionId,
        /// The pattern over the session's full capacity (prompt plus
        /// generated tokens); the engine clips it causally.
        pattern: PatternHandle,
        /// Head dimension of every token row.
        head_dim: usize,
        /// Number of heads (one persistent state each).
        num_heads: usize,
        /// Per-head prompt rows; each head the same length, covering at
        /// least every global token and leaving capacity to decode.
        prompt: Vec<Qkv>,
    },
    /// Decode one token of an open session (all heads).
    DecodeStep {
        /// The session to advance.
        session: SessionId,
        /// One [`TokenQkv`] per head.
        token: Vec<TokenQkv>,
    },
    /// Decode one token from each of several open sessions as a single
    /// fused pass — the iteration-level continuous-batching form. Each
    /// entry is exactly one [`AttentionRequest::DecodeStep`]; results are
    /// per entry (one failing session never affects its neighbours) and
    /// bit-identical to issuing the steps individually.
    DecodeStepBatch {
        /// One `(session, per-head token)` entry per session to advance,
        /// in execution order.
        steps: Vec<(SessionId, Vec<TokenQkv>)>,
    },
    /// Close a session, dropping its state.
    DecodeClose {
        /// The session to drop.
        session: SessionId,
    },
}

/// Per-request execution telemetry, tagged with the backend that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// The engine's [`Engine::name`].
    pub engine: &'static str,
    /// Whether the outputs follow the accelerator's exact fixed-point
    /// arithmetic (copied from the engine's [`EngineCaps`]).
    pub bit_exact: bool,
    /// Total simulated cycles, when the backend models timing.
    pub sim_cycles: Option<u64>,
    /// Simulated wall time in seconds, when the backend models timing.
    pub sim_time_s: Option<f64>,
    /// Simulated energy in joules, when the backend models energy.
    pub sim_energy_j: Option<f64>,
    /// Fixed-point MAC saturation events (0 for float backends).
    pub saturation_events: u64,
    /// Bytes of quantized K/V the request's session(s) keep resident
    /// after this request, summed across heads. Present on fixed-point
    /// decode steps (whose histories live in pool pages); `None` for
    /// prefill and for backends without paged state.
    pub resident_kv_bytes: Option<u64>,
    /// Host-measured per-stage datapath cost, present on fixed-point
    /// backends when stage profiling is enabled (`SALO_TRACE=1` or
    /// [`salo_trace::set_enabled`]). Summed across the request's heads.
    pub stages: Option<salo_sim::StageProfile>,
}

/// One head's prefill output in backend-neutral form.
///
/// Every backend fills `output`; the fixed-point artifacts (`raw`,
/// `weights_q16`, `report`) are `None` on float backends.
#[derive(Debug, Clone)]
pub struct HeadOutput {
    /// The attention output, dequantized to `f32` (or computed in float).
    pub output: Matrix<f32>,
    /// The 16-bit accelerator-format output, on fixed-point backends.
    pub raw: Option<Matrix<Fix16x8>>,
    /// Final per-row softmax weights (Q.16), on fixed-point backends.
    pub weights_q16: Option<Vec<i64>>,
    /// Timing/energy/saturation report, on backends that model them.
    pub report: Option<ExecutionReport>,
}

/// The response to an [`AttentionRequest::Prefill`].
#[derive(Debug, Clone)]
pub struct PrefillOutput {
    /// Per-head outputs, in input order.
    pub heads: Vec<HeadOutput>,
    /// Aggregate execution telemetry.
    pub telemetry: Telemetry,
}

impl PrefillOutput {
    /// Concatenates head outputs into the layer output
    /// (`n x (heads * d)`).
    #[must_use]
    pub fn concat_output(&self) -> Matrix<f32> {
        let n = self.heads.first().map_or(0, |h| h.output.rows());
        let d = self.heads.first().map_or(0, |h| h.output.cols());
        Matrix::from_fn(n, self.heads.len() * d, |i, j| self.heads[j / d].output.get(i, j % d))
    }

    /// Converts to the legacy [`MultiHeadRun`] shape, for callers still on
    /// the pre-engine API (the serving response keeps this type).
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::Unsupported`] when the producing backend did
    /// not emit the fixed-point artifacts (`raw`, `weights_q16`,
    /// `report`) the legacy type requires.
    pub fn into_multi_head_run(self) -> Result<MultiHeadRun, SaloError> {
        let engine = self.telemetry.engine;
        let heads = self
            .heads
            .into_iter()
            .map(|h| match (h.raw, h.weights_q16, h.report) {
                (Some(raw), Some(weights_q16), Some(report)) => {
                    Ok(salo_sim::ExecutionOutput { raw, output: h.output, weights_q16, report })
                }
                _ => Err(SaloError::Unsupported {
                    engine,
                    reason: "backend emits no fixed-point artifacts; MultiHeadRun needs them"
                        .into(),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let total_time_s = heads.iter().map(|o| o.report.timing.time_s).sum();
        let total_energy_j = heads.iter().map(|o| o.report.timing.energy_j).sum();
        Ok(MultiHeadRun { heads, total_time_s, total_energy_j })
    }
}

/// The response to an [`AttentionRequest::DecodeOpen`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOpened {
    /// The session id now live inside the engine.
    pub session: SessionId,
    /// First decodable position (the prompt covers up to here).
    pub min_step: usize,
    /// Position the next step will produce (the prompt length).
    pub position: usize,
    /// Sequence capacity (prompt plus generated tokens).
    pub capacity: usize,
}

/// One head's decode-step output in backend-neutral form.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadStep {
    /// The position's attention output row, in `f32`.
    pub output: Vec<f32>,
    /// The 16-bit accelerator-format row, on fixed-point backends.
    pub raw: Option<Vec<Fix16x8>>,
    /// The row's softmax weight `W = Σ exp` (Q.16), on fixed-point
    /// backends.
    pub weight_q16: Option<i64>,
    /// MAC saturation events this token caused (0 on float backends).
    pub saturation_events: u64,
}

/// The response to an [`AttentionRequest::DecodeStep`]: one generated
/// token across every head of the session.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// The session that advanced.
    pub session: SessionId,
    /// The position this step produced.
    pub position: usize,
    /// Per-head output rows.
    pub heads: Vec<HeadStep>,
    /// Aggregate execution telemetry.
    pub telemetry: Telemetry,
}

/// The response to an [`AttentionRequest::DecodeClose`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionClosed {
    /// The session that was dropped.
    pub session: SessionId,
    /// Tokens the session had ingested (prompt plus steps).
    pub position: usize,
}

/// The typed response to an [`AttentionRequest`]; variants correspond
/// one-to-one.
#[derive(Debug, Clone)]
pub enum AttentionResponse {
    /// Response to [`AttentionRequest::Prefill`].
    Prefill(PrefillOutput),
    /// Response to [`AttentionRequest::DecodeOpen`].
    DecodeOpened(SessionOpened),
    /// Response to [`AttentionRequest::DecodeStep`].
    DecodeStep(StepResult),
    /// Response to [`AttentionRequest::DecodeStepBatch`]: one entry per
    /// requested step, in request order.
    DecodeStepBatch(Vec<(SessionId, Result<StepResult, SaloError>)>),
    /// Response to [`AttentionRequest::DecodeClose`].
    DecodeClosed(SessionClosed),
}

impl AttentionResponse {
    /// Unwraps a prefill response.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::ResponseMismatch`] on any other variant.
    pub fn into_prefill(self) -> Result<PrefillOutput, SaloError> {
        match self {
            AttentionResponse::Prefill(out) => Ok(out),
            other => Err(SaloError::ResponseMismatch { got: other.variant_name() }),
        }
    }

    /// Unwraps a decode-open response.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::ResponseMismatch`] on any other variant.
    pub fn into_opened(self) -> Result<SessionOpened, SaloError> {
        match self {
            AttentionResponse::DecodeOpened(out) => Ok(out),
            other => Err(SaloError::ResponseMismatch { got: other.variant_name() }),
        }
    }

    /// Unwraps a decode-step response.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::ResponseMismatch`] on any other variant.
    pub fn into_step(self) -> Result<StepResult, SaloError> {
        match self {
            AttentionResponse::DecodeStep(out) => Ok(out),
            other => Err(SaloError::ResponseMismatch { got: other.variant_name() }),
        }
    }

    /// Unwraps a fused decode-step-batch response.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::ResponseMismatch`] on any other variant.
    #[allow(clippy::type_complexity)] // the per-entry result list IS the shape
    pub fn into_step_batch(
        self,
    ) -> Result<Vec<(SessionId, Result<StepResult, SaloError>)>, SaloError> {
        match self {
            AttentionResponse::DecodeStepBatch(out) => Ok(out),
            other => Err(SaloError::ResponseMismatch { got: other.variant_name() }),
        }
    }

    /// Unwraps a decode-close response.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::ResponseMismatch`] on any other variant.
    pub fn into_closed(self) -> Result<SessionClosed, SaloError> {
        match self {
            AttentionResponse::DecodeClosed(out) => Ok(out),
            other => Err(SaloError::ResponseMismatch { got: other.variant_name() }),
        }
    }

    /// The variant's name, for error reporting.
    #[must_use]
    pub fn variant_name(&self) -> &'static str {
        match self {
            AttentionResponse::Prefill(_) => "Prefill",
            AttentionResponse::DecodeOpened(_) => "DecodeOpened",
            AttentionResponse::DecodeStep(_) => "DecodeStep",
            AttentionResponse::DecodeStepBatch(_) => "DecodeStepBatch",
            AttentionResponse::DecodeClosed(_) => "DecodeClosed",
        }
    }
}

/// An execution backend serving [`AttentionRequest`]s.
///
/// The trait is object-safe: the serving runtime's workers, the
/// comparison harnesses and future backends (threaded, SIMD, remote) all
/// plug in as `Box<dyn Engine>`. Engines are single-threaded objects —
/// `Send` but not `Sync` by contract — mirroring one accelerator
/// instance; run one per worker thread, as the serving pool does.
pub trait Engine: Send + fmt::Debug {
    /// Short stable backend name (`"lowered"`, `"systolic"`,
    /// `"reference"`), used in telemetry and errors.
    fn name(&self) -> &'static str;

    /// The backend's capability descriptor.
    fn capabilities(&self) -> EngineCaps;

    /// Resolves a pattern into a [`PatternHandle`] ready for requests on
    /// this engine — compiling and attaching whatever the backend needs
    /// (the fixed-point engines attach a [`CompiledPlan`]; the reference
    /// engine only keeps the pattern).
    ///
    /// # Errors
    ///
    /// Shape/scheduler errors when the pattern cannot be compiled for
    /// this backend.
    fn prepare(
        &self,
        pattern: &HybridPattern,
        shape: &AttentionShape,
    ) -> Result<PatternHandle, SaloError>;

    /// Executes one request.
    ///
    /// # Errors
    ///
    /// Validation errors (shape, head count, unknown session), capability
    /// errors ([`SaloError::Unsupported`]) and execution-layer failures.
    /// A decode step that fails after mutating any head's state retires
    /// the session (it disappears from [`has_session`](Self::has_session)
    /// and further steps report [`SaloError::UnknownSession`]); a
    /// validation failure caught before any mutation leaves the session
    /// decodable.
    fn execute(&mut self, request: AttentionRequest) -> Result<AttentionResponse, SaloError>;

    /// Whether a decode session is currently live inside the engine.
    fn has_session(&self, session: SessionId) -> bool;

    /// The position a live session's next step will produce, or `None`
    /// for unknown sessions.
    fn session_position(&self, session: SessionId) -> Option<usize>;

    /// Occupancy counters of the engine's shared K/V page pool, when the
    /// backend keeps decode state in pool pages (`None` otherwise — the
    /// default, kept by float backends).
    fn kv_pool_stats(&self) -> Option<salo_sim::KvPoolStats> {
        None
    }

    /// Reconfigures the engine's K/V page pool (`page_rows` rows per
    /// page; `None` capacity = unbounded). Backends without a pool ignore
    /// it; pooled backends apply it only while no pages are in use, so a
    /// live session's translation can never change underneath it.
    fn configure_kv_pool(&mut self, page_rows: usize, capacity_pages: Option<usize>) {
        let _ = (page_rows, capacity_pages);
    }
}

/// Prefill parallelism requested through the environment: the
/// `SALO_PARALLELISM` variable, parsed as a shard count, defaulting to 1
/// (sequential) when absent or unparseable. Read once per engine
/// construction — parallelism is bit-transparent, so the setting affects
/// wall-clock only, never outputs.
#[must_use]
pub fn env_parallelism() -> usize {
    std::env::var("SALO_PARALLELISM").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1)
}

impl Salo {
    /// A fresh [`LoweredEngine`] over this instance's accelerator — the
    /// default backend. Engines built from one `Salo` share its
    /// exponential/reciprocal lookup tables. Prefill parallelism comes
    /// from the `SALO_PARALLELISM` environment variable (default 1);
    /// [`engine_with_parallelism`](Self::engine_with_parallelism) sets it
    /// explicitly.
    #[must_use]
    pub fn engine(&self) -> LoweredEngine {
        self.engine_with_parallelism(env_parallelism())
    }

    /// A fresh [`LoweredEngine`] whose prefill shards each layer's heads
    /// over `parallelism` threads (deterministic partition —
    /// bit-identical to sequential at any value).
    #[must_use]
    pub fn engine_with_parallelism(&self, parallelism: usize) -> LoweredEngine {
        LoweredEngine::with_parallelism(self.accelerator().clone(), parallelism)
    }

    /// A fresh [`SystolicEngine`] (event-accurate oracle) over this
    /// instance's accelerator.
    #[must_use]
    pub fn systolic_engine(&self) -> SystolicEngine {
        SystolicEngine::new(self.accelerator().clone())
    }

    /// A fresh [`ReferenceEngine`] (plain `f32` softmax attention).
    #[must_use]
    pub fn reference_engine(&self) -> ReferenceEngine {
        ReferenceEngine::new()
    }

    /// All three backends, boxed — the comparison loop's starting point
    /// (lowered, systolic, reference, in that order).
    #[must_use]
    pub fn all_engines(&self) -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(self.engine()),
            Box::new(self.systolic_engine()),
            Box::new(self.reference_engine()),
        ]
    }
}

/// The one wording of decode-capacity exhaustion, shared by every
/// backend so they stay interchangeable on errors, not just outputs.
pub(crate) fn capacity_error(n: usize) -> SaloError {
    SaloError::InvalidRequest {
        reason: format!("decode session exhausted its capacity of {n} positions"),
    }
}

/// The one wording of stepping an unprimed session, shared by every
/// backend.
pub(crate) fn not_primed_error(position: usize, min_step: usize) -> SaloError {
    SaloError::InvalidRequest {
        reason: format!(
            "position {position} is not decodable before {min_step}: the prompt must cover \
             every global token"
        ),
    }
}

/// Shared request validation: heads agree with the shape.
pub(crate) fn check_prefill_heads(shape: &AttentionShape, heads: &[Qkv]) -> Result<(), SaloError> {
    if heads.len() != shape.num_heads {
        return Err(SaloError::HeadCountMismatch { expected: shape.num_heads, got: heads.len() });
    }
    for h in heads {
        if h.seq_len() != shape.seq_len || h.head_dim() != shape.head_dim {
            return Err(SaloError::ShapeMismatch {
                expected: (shape.seq_len, shape.head_dim),
                got: (h.seq_len(), h.head_dim()),
            });
        }
    }
    Ok(())
}

/// Shared decode-open validation, mirroring the serving runtime's
/// front-end checks: consistent head count, prompt length covering the
/// globals and leaving decode capacity, per-head dimensions.
pub(crate) fn check_open_prompt(
    n: usize,
    min_step: usize,
    head_dim: usize,
    num_heads: usize,
    prompt: &[Qkv],
) -> Result<usize, SaloError> {
    let invalid = |reason: String| SaloError::InvalidRequest { reason };
    if num_heads == 0 || head_dim == 0 {
        return Err(invalid("empty session shape".into()));
    }
    if prompt.len() != num_heads {
        return Err(SaloError::HeadCountMismatch { expected: num_heads, got: prompt.len() });
    }
    let prompt_len = prompt.first().map_or(0, Qkv::seq_len);
    if prompt_len < min_step {
        return Err(invalid(format!(
            "prompt of {prompt_len} rows does not cover every global token \
             (first decodable step is {min_step})"
        )));
    }
    if prompt_len >= n {
        return Err(invalid(format!(
            "prompt of {prompt_len} rows leaves no capacity in a sequence of {n}"
        )));
    }
    for h in prompt {
        if h.seq_len() != prompt_len || h.head_dim() != head_dim {
            return Err(SaloError::ShapeMismatch {
                expected: (prompt_len, head_dim),
                got: (h.seq_len(), h.head_dim()),
            });
        }
    }
    Ok(prompt_len)
}
