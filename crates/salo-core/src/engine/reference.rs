//! The accuracy-yardstick backend: plain floating-point softmax attention.
//!
//! [`ReferenceEngine`] computes exact sparse attention (f64 accumulation,
//! f32 outputs, no quantization, no LUTs) over the same hybrid patterns
//! the fixed-point engines execute. It is the yardstick the accelerator's
//! fixed-point error is measured against: the root `engines` tests pin
//! the lowered/systolic outputs to within a documented bound of this
//! engine on random hybrid patterns, prefill and decode alike.

use std::collections::HashMap;

use salo_fixed::softmax_f64;
use salo_kernels::{sparse_attention, Matrix, Qkv};
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::SpatialAccelerator;

use crate::engine::{
    check_open_prompt, check_prefill_heads, AttentionRequest, AttentionResponse, Engine,
    EngineCaps, HeadOutput, HeadStep, PatternHandle, PrefillOutput, SessionClosed, SessionId,
    SessionOpened, StepResult, Telemetry,
};
use crate::SaloError;

/// One head's float decode state: the growing K/V history.
#[derive(Debug, Clone, Default)]
struct RefHeadState {
    /// Key rows ingested so far, position-major.
    k: Vec<Vec<f32>>,
    /// Value rows ingested so far, position-major.
    v: Vec<Vec<f32>>,
}

/// A float decode session: the causal pattern plus per-head histories.
#[derive(Debug, Clone)]
struct RefSession {
    /// The causally clipped pattern (per-step key sets).
    causal: HybridPattern,
    head_dim: usize,
    scale: f32,
    /// Position the next step will produce.
    position: usize,
    heads: Vec<RefHeadState>,
}

/// The floating-point reference backend.
///
/// `bit_exact` is `false`: outputs are exact softmax attention, not the
/// accelerator's arithmetic. No timing or energy is modeled. Decode is
/// supported by replaying each step's pattern row over the session's
/// K/V history — numerically identical to the same row of a float
/// prefill over the causal pattern.
#[derive(Debug, Default)]
pub struct ReferenceEngine {
    sessions: HashMap<SessionId, RefSession>,
}

impl ReferenceEngine {
    /// A fresh engine with no live sessions.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn telemetry() -> Telemetry {
        Telemetry {
            engine: "reference",
            bit_exact: false,
            sim_cycles: None,
            sim_time_s: None,
            sim_energy_j: None,
            saturation_events: 0,
            resident_kv_bytes: None,
            stages: None,
        }
    }
}

/// One attention row in f64: softmax over `keys` of `q . k[j] * scale`,
/// then the weighted sum of value rows — the same arithmetic as
/// [`sparse_attention`], factored for the decode path's history-backed
/// K/V rows.
fn reference_row(
    q: &[f32],
    keys: &[usize],
    k: &[Vec<f32>],
    v: &[Vec<f32>],
    d: usize,
    scale: f32,
) -> Vec<f32> {
    let scores: Vec<f64> = keys
        .iter()
        .map(|&j| {
            let dot: f64 = q.iter().zip(&k[j]).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
            dot * f64::from(scale)
        })
        .collect();
    let probs = softmax_f64(&scores);
    let mut out = vec![0.0f32; d];
    for (&j, &p) in keys.iter().zip(&probs) {
        for (o, &ve) in out.iter_mut().zip(&v[j]) {
            *o += (p * f64::from(ve)) as f32;
        }
    }
    out
}

impl Engine for ReferenceEngine {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps { supports_decode: true, bit_exact: false, event_accurate: false }
    }

    fn prepare(
        &self,
        pattern: &HybridPattern,
        _shape: &AttentionShape,
    ) -> Result<PatternHandle, SaloError> {
        // The reference engine works straight off the pattern's key sets;
        // there is nothing to compile.
        Ok(PatternHandle::from_pattern(pattern.clone()))
    }

    fn execute(&mut self, request: AttentionRequest) -> Result<AttentionResponse, SaloError> {
        match request {
            AttentionRequest::Prefill { pattern, shape, heads } => {
                check_prefill_heads(&shape, &heads)?;
                let pattern = pattern.require_pattern(self.name())?;
                if pattern.n() != shape.seq_len {
                    return Err(SaloError::ShapeMismatch {
                        expected: (shape.seq_len, shape.head_dim),
                        got: (pattern.n(), shape.head_dim),
                    });
                }
                let scale = SpatialAccelerator::default_scale(shape.head_dim);
                let outputs = heads
                    .iter()
                    .map(|h| {
                        sparse_attention(pattern, &h.q, &h.k, &h.v, scale).map(|output| {
                            HeadOutput { output, raw: None, weights_q16: None, report: None }
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(AttentionResponse::Prefill(PrefillOutput {
                    heads: outputs,
                    telemetry: Self::telemetry(),
                }))
            }
            AttentionRequest::DecodeOpen { session, pattern, head_dim, num_heads, prompt } => {
                if self.sessions.contains_key(&session) {
                    return Err(SaloError::SessionInUse { session });
                }
                let pattern = pattern.require_pattern(self.name())?;
                let view = pattern.decode_view()?;
                let min_step = view.min_step();
                let causal = view.into_causal_pattern();
                let prompt_len =
                    check_open_prompt(causal.n(), min_step, head_dim, num_heads, &prompt)?;
                let heads = prompt
                    .iter()
                    .map(|h| RefHeadState {
                        k: (0..prompt_len).map(|t| h.k.row(t).to_vec()).collect(),
                        v: (0..prompt_len).map(|t| h.v.row(t).to_vec()).collect(),
                    })
                    .collect();
                let opened =
                    SessionOpened { session, min_step, position: prompt_len, capacity: causal.n() };
                self.sessions.insert(
                    session,
                    RefSession {
                        causal,
                        head_dim,
                        scale: SpatialAccelerator::default_scale(head_dim),
                        position: prompt_len,
                        heads,
                    },
                );
                Ok(AttentionResponse::DecodeOpened(opened))
            }
            AttentionRequest::DecodeStep { session, token } => {
                let state =
                    self.sessions.get_mut(&session).ok_or(SaloError::UnknownSession { session })?;
                if token.len() != state.heads.len() {
                    return Err(SaloError::HeadCountMismatch {
                        expected: state.heads.len(),
                        got: token.len(),
                    });
                }
                let t = state.position;
                if t >= state.causal.n() {
                    return Err(crate::engine::capacity_error(state.causal.n()));
                }
                // No unprimed-step check: `check_open_prompt` pins the
                // prompt at >= min_step and `position` only grows, so
                // every step here is decodable (the fixed engines reach
                // that error only through the simulator's own gate).
                let d = state.head_dim;
                for tok in &token {
                    if tok.q.len() != d || tok.k.len() != d || tok.v.len() != d {
                        return Err(SaloError::ShapeMismatch {
                            expected: (1, d),
                            got: (1, tok.q.len().max(tok.k.len()).max(tok.v.len())),
                        });
                    }
                }
                // All-or-nothing from here: the history appends below
                // cannot fail, so heads never desync and float sessions
                // never poison.
                let keys = state.causal.row_keys(t);
                debug_assert!(
                    keys.iter().all(|&j| j <= t),
                    "causal clip guarantees step {t} reads only the past"
                );
                let scale = state.scale;
                let mut heads_out = Vec::with_capacity(token.len());
                for (head, tok) in state.heads.iter_mut().zip(&token) {
                    head.k.push(tok.k.clone());
                    head.v.push(tok.v.clone());
                    let out = reference_row(&tok.q, &keys, &head.k, &head.v, d, scale);
                    heads_out.push(HeadStep {
                        output: out,
                        raw: None,
                        weight_q16: None,
                        saturation_events: 0,
                    });
                }
                state.position += 1;
                Ok(AttentionResponse::DecodeStep(StepResult {
                    session,
                    position: t,
                    heads: heads_out,
                    telemetry: Self::telemetry(),
                }))
            }
            AttentionRequest::DecodeStepBatch { steps } => {
                // Float sessions have no fused kernel to gain from; the
                // batch is the same steps run in order, which is also
                // exactly the fused path's semantics (per-entry results,
                // request order preserved).
                let results = steps
                    .into_iter()
                    .map(|(session, token)| {
                        let result = self
                            .execute(AttentionRequest::DecodeStep { session, token })
                            .and_then(AttentionResponse::into_step);
                        (session, result)
                    })
                    .collect();
                Ok(AttentionResponse::DecodeStepBatch(results))
            }
            AttentionRequest::DecodeClose { session } => match self.sessions.remove(&session) {
                Some(state) => Ok(AttentionResponse::DecodeClosed(SessionClosed {
                    session,
                    position: state.position,
                })),
                None => Err(SaloError::UnknownSession { session }),
            },
        }
    }

    fn has_session(&self, session: SessionId) -> bool {
        self.sessions.contains_key(&session)
    }

    fn session_position(&self, session: SessionId) -> Option<usize> {
        self.sessions.get(&session).map(|s| s.position)
    }
}

/// Exact float prefill over a full [`Qkv`] — a convenience wrapper around
/// [`sparse_attention`] used by tests comparing engines head by head.
///
/// # Errors
///
/// Dimension errors from the kernel layer.
pub fn reference_head(
    pattern: &HybridPattern,
    head: &Qkv,
    scale: f32,
) -> Result<Matrix<f32>, SaloError> {
    Ok(sparse_attention(pattern, &head.q, &head.k, &head.v, scale)?)
}
