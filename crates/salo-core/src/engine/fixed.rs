//! The fixed-point execution backends: [`LoweredEngine`] (fast datapath)
//! and [`SystolicEngine`] (event-accurate oracle).
//!
//! Both engines run the accelerator's exact fixed-point arithmetic over
//! one shared core ([`FixedCore`]): compiled-plan resolution, a
//! worker-lifetime [`ExecScratch`], and per-session persistent
//! [`DecodeState`]s. They differ **only** in the per-head prefill kernel
//! — the lowered engine walks the flat pass programs, the systolic
//! engine steps every array pass through the cycle-level
//! [`SystolicArray`](salo_sim::SystolicArray) — and are bit-identical by
//! construction (asserted by the root `engines` tests). Every other
//! request arm is one implementation, so decode dispatch, validation
//! order and telemetry cannot drift between the two.

use std::collections::HashMap;
use std::sync::Arc;

use salo_kernels::Qkv;
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::{
    BatchStep, DecodePlan, DecodeState, ExecScratch, ExecutionOutput, HeadsScratch, KvPagePool,
    KvPoolStats, SimError, SpatialAccelerator, StepOutput, DEFAULT_PAGE_ROWS,
};

use crate::engine::{
    check_open_prompt, check_prefill_heads, AttentionRequest, AttentionResponse, Engine,
    EngineCaps, HeadOutput, HeadStep, PatternHandle, PrefillOutput, SessionClosed, SessionId,
    SessionOpened, StepResult, Telemetry, TokenQkv,
};
use crate::{salo::compile_with, CompiledPlan, SaloError};

/// One layer's whole-heads prefill execution — the only point where the
/// two fixed-point engines differ. Receives both scratches and the
/// engine's parallelism so the lowered backend can route through the
/// partitioned multi-head datapath
/// ([`execute_heads_lowered`](SpatialAccelerator::execute_heads_lowered))
/// when `parallelism > 1`.
type PrefillKernel = fn(
    &SpatialAccelerator,
    &CompiledPlan,
    &[Qkv],
    f32,
    &mut ExecScratch,
    &mut HeadsScratch,
    usize,
) -> Result<Vec<ExecutionOutput>, SimError>;

/// A decode session resident in a fixed-point engine: the step program
/// shared by every head, one persistent quantized K/V state per head.
#[derive(Debug)]
struct FixedSession {
    decode: Arc<DecodePlan>,
    states: Vec<DecodeState>,
    scale: f32,
}

impl FixedSession {
    /// Position the next step will produce (heads advance in lockstep).
    fn position(&self) -> usize {
        self.states.first().map_or(0, DecodeState::position)
    }

    /// Whether the session is still fully consistent after a failed step
    /// that began at `position`: no head poisoned, no head advanced. Once
    /// any head advanced while another did not, the heads are desynced
    /// and the session must be retired.
    fn is_intact(&self, position: usize) -> bool {
        self.states.iter().all(|s| !s.is_poisoned() && s.position() == position)
    }

    /// Bytes of quantized K/V the session keeps resident, summed across
    /// its head states.
    fn resident_kv_bytes(&self) -> u64 {
        self.states.iter().map(DecodeState::resident_kv_bytes).sum()
    }

    /// Hands every head's pages back to the pool — mandatory on every
    /// path that drops a session (close, retirement, failed open), or the
    /// pool's occupancy accounting leaks.
    fn release_pages(&mut self, pool: &mut KvPagePool) {
        for state in &mut self.states {
            state.release(pool);
        }
    }
}

/// The engine shared by [`LoweredEngine`] and [`SystolicEngine`]:
/// everything except the per-head prefill kernel, which is injected per
/// request.
#[derive(Debug)]
struct FixedCore {
    accel: SpatialAccelerator,
    scratch: ExecScratch,
    heads_scratch: HeadsScratch,
    /// Prefill shard count; `<= 1` keeps the sequential per-head path.
    parallelism: usize,
    sessions: HashMap<SessionId, FixedSession>,
    /// The physical K/V pages every decode session of this engine draws
    /// from — one pool per engine, exactly like the scratch.
    kv_pool: KvPagePool,
}

/// Maps a simulator step error onto the unified API's error taxonomy, so
/// the fixed-point engines report request-level validation failures the
/// same way [`ReferenceEngine`](crate::ReferenceEngine) does (capacity
/// exhaustion and unprimed sessions are `InvalidRequest`, wrong token
/// rows are `ShapeMismatch`) — backends stay interchangeable on errors,
/// not just outputs. Everything else (numeric degeneracy, poisoning)
/// stays a simulator error.
fn normalize_step_error(e: SimError) -> SaloError {
    match e {
        SimError::DecodeCapacity { n } => crate::engine::capacity_error(n),
        SimError::DecodeNotPrimed { position, min_step } => {
            crate::engine::not_primed_error(position, min_step)
        }
        SimError::TokenDim { expected, got } => {
            SaloError::ShapeMismatch { expected: (1, expected), got: (1, got) }
        }
        other => SaloError::Sim(other),
    }
}

/// The engine's pool geometry from the environment: `SALO_KV_PAGE_ROWS`
/// (rows per page, default [`DEFAULT_PAGE_ROWS`]) and `SALO_KV_POOL_PAGES`
/// (capacity bound, default unbounded). Read once per engine
/// construction; [`Engine::configure_kv_pool`] overrides at runtime.
fn env_kv_pool() -> KvPagePool {
    let page_rows = std::env::var("SALO_KV_PAGE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r: &usize| r > 0)
        .unwrap_or(DEFAULT_PAGE_ROWS);
    match std::env::var("SALO_KV_POOL_PAGES").ok().and_then(|v| v.parse().ok()) {
        Some(capacity) => KvPagePool::bounded(page_rows, capacity),
        None => KvPagePool::new(page_rows),
    }
}

impl FixedCore {
    fn new(accel: SpatialAccelerator) -> Self {
        Self {
            accel,
            scratch: ExecScratch::new(),
            heads_scratch: HeadsScratch::new(),
            parallelism: 1,
            sessions: HashMap::new(),
            kv_pool: env_kv_pool(),
        }
    }

    /// Swaps in a freshly configured pool — only while no pages are in
    /// use, so no live session's page translation can change underneath
    /// it (the serving runtime calls this right after spawning workers,
    /// before any session opens).
    fn configure_kv_pool(&mut self, page_rows: usize, capacity_pages: Option<usize>) {
        if self.kv_pool.pages_in_use() > 0 {
            return;
        }
        self.kv_pool = match capacity_pages {
            Some(capacity) => KvPagePool::bounded(page_rows, capacity),
            None => KvPagePool::new(page_rows),
        };
    }

    /// The shared [`Engine::prepare`]: compile for this core's array
    /// geometry and attach both the pattern and the plan.
    fn prepare(
        &self,
        pattern: &HybridPattern,
        shape: &AttentionShape,
    ) -> Result<PatternHandle, SaloError> {
        let plan = compile_with(self.accel.config().hw, pattern, shape)?;
        Ok(PatternHandle::new(Arc::new(pattern.clone()), Arc::new(plan)))
    }

    /// The shared [`Engine::execute`], parameterized by the per-head
    /// prefill kernel.
    fn execute(
        &mut self,
        name: &'static str,
        prefill: PrefillKernel,
        request: AttentionRequest,
    ) -> Result<AttentionResponse, SaloError> {
        let tracer = salo_trace::Tracer::global();
        match request {
            AttentionRequest::Prefill { pattern, shape, heads } => {
                let _span = tracer.span_with("engine.prefill", "engine", heads.len() as u64);
                check_prefill_heads(&shape, &heads)?;
                let plan = self.resolve_prefill_plan(name, &pattern, &shape)?;
                let scale = SpatialAccelerator::default_scale(shape.head_dim);
                let Self { accel, scratch, heads_scratch, parallelism, .. } = self;
                // Stage profiling follows the tracer switch: one relaxed
                // load per request, zero per-op cost when off.
                let profiling = tracer.enabled();
                scratch.set_profiling(profiling);
                heads_scratch.set_profiling(profiling);
                let outputs =
                    prefill(accel, &plan, &heads, scale, scratch, heads_scratch, *parallelism)?;
                let telemetry = Self::prefill_telemetry(name, &outputs);
                Ok(AttentionResponse::Prefill(PrefillOutput {
                    heads: outputs.into_iter().map(fixed_head_output).collect(),
                    telemetry,
                }))
            }
            AttentionRequest::DecodeOpen { session, pattern, head_dim, num_heads, prompt } => {
                let _span = tracer.span_with("engine.decode_open", "engine", session);
                let opened = self.open(name, session, &pattern, head_dim, num_heads, &prompt)?;
                Ok(AttentionResponse::DecodeOpened(opened))
            }
            AttentionRequest::DecodeStep { session, token } => {
                let _span = tracer.span_with("engine.decode_step", "engine", session);
                Ok(AttentionResponse::DecodeStep(self.step(name, session, &token)?))
            }
            AttentionRequest::DecodeStepBatch { steps } => {
                let _span =
                    tracer.span_with("engine.decode_step_batch", "engine", steps.len() as u64);
                Ok(AttentionResponse::DecodeStepBatch(self.step_batch(name, steps)))
            }
            AttentionRequest::DecodeClose { session } => {
                let _span = tracer.span_with("engine.decode_close", "engine", session);
                Ok(AttentionResponse::DecodeClosed(self.close(session)?))
            }
        }
    }

    /// Resolves a prefill handle into a compiled plan for this engine's
    /// configuration: the attached plan when present (shape-checked),
    /// otherwise a fresh compile of the pattern.
    fn resolve_prefill_plan(
        &self,
        engine: &'static str,
        handle: &PatternHandle,
        shape: &AttentionShape,
    ) -> Result<Arc<CompiledPlan>, SaloError> {
        if let Some(plan) = handle.plan() {
            if plan.shape.seq_len != shape.seq_len || plan.shape.head_dim != shape.head_dim {
                return Err(SaloError::ShapeMismatch {
                    expected: (plan.shape.seq_len, plan.shape.head_dim),
                    got: (shape.seq_len, shape.head_dim),
                });
            }
            return Ok(Arc::clone(plan));
        }
        let pattern = handle.require_pattern(engine)?;
        Ok(Arc::new(compile_with(self.accel.config().hw, pattern, shape)?))
    }

    /// Resolves a decode-open handle into the step program. The attached
    /// plan (when present) must be causal; otherwise the pattern is
    /// causally clipped and compiled at the canonical unit shape — the
    /// decode program depends only on the pattern and the hardware, not
    /// on head count or head dimension.
    fn resolve_decode_plan(
        &self,
        engine: &'static str,
        handle: &PatternHandle,
    ) -> Result<Arc<DecodePlan>, SaloError> {
        if let Some(plan) = handle.plan() {
            match plan.decode_plan() {
                Ok(decode) => return Ok(decode),
                // The attached plan was compiled from the *uncausal*
                // pattern (e.g. a prefill handle reused for decode). If
                // the handle also carries the pattern, clip and compile
                // below; a plan-only handle has nothing to fall back to.
                Err(e) => {
                    if handle.pattern().is_none() {
                        return Err(e);
                    }
                }
            }
        }
        let pattern = handle.require_pattern(engine)?;
        let causal = pattern.decode_view()?.into_causal_pattern();
        let shape = AttentionShape::new(causal.n(), 1, 1)?;
        let compiled = compile_with(self.accel.config().hw, &causal, &shape)?;
        compiled.decode_plan()
    }

    fn open(
        &mut self,
        engine: &'static str,
        session: SessionId,
        handle: &PatternHandle,
        head_dim: usize,
        num_heads: usize,
        prompt: &[Qkv],
    ) -> Result<SessionOpened, SaloError> {
        if self.sessions.contains_key(&session) {
            return Err(SaloError::SessionInUse { session });
        }
        let decode = self.resolve_decode_plan(engine, handle)?;
        let prompt_len =
            check_open_prompt(decode.n(), decode.min_step(), head_dim, num_heads, prompt)?;
        let scale = SpatialAccelerator::default_scale(head_dim);
        let mut states: Vec<DecodeState> =
            (0..num_heads).map(|_| DecodeState::new(&decode, head_dim)).collect();
        let mut prime_err = None;
        'prime: for (state, head) in states.iter_mut().zip(prompt) {
            for t in 0..prompt_len {
                if let Err(e) = self.accel.prime_token(
                    &decode,
                    state,
                    head.q.row(t),
                    head.k.row(t),
                    head.v.row(t),
                    scale,
                    &mut self.kv_pool,
                    &mut self.scratch,
                ) {
                    prime_err = Some(e);
                    break 'prime;
                }
            }
        }
        if let Some(e) = prime_err {
            // The session never became live: hand back whatever pages the
            // partial prime drew before reporting the failure.
            for state in &mut states {
                state.release(&mut self.kv_pool);
            }
            return Err(e.into());
        }
        let opened = SessionOpened {
            session,
            min_step: decode.min_step(),
            position: prompt_len,
            capacity: decode.n(),
        };
        self.sessions.insert(session, FixedSession { decode, states, scale });
        Ok(opened)
    }

    fn step(
        &mut self,
        name: &'static str,
        session: SessionId,
        token: &[TokenQkv],
    ) -> Result<StepResult, SaloError> {
        let state = self.sessions.get_mut(&session).ok_or(SaloError::UnknownSession { session })?;
        if token.len() != state.states.len() {
            // Pre-mutation validation: the session stays decodable.
            return Err(SaloError::HeadCountMismatch {
                expected: state.states.len(),
                got: token.len(),
            });
        }
        let position = state.position();
        let profiling = salo_trace::enabled();
        self.scratch.set_profiling(profiling);
        let mut step_stages = salo_sim::StageProfile::default();
        let mut heads = Vec::with_capacity(token.len());
        let mut result: Result<(), SaloError> = Ok(());
        for (head_state, tok) in state.states.iter_mut().zip(token) {
            match self.accel.execute_step(
                &state.decode,
                head_state,
                &tok.q,
                &tok.k,
                &tok.v,
                state.scale,
                &mut self.kv_pool,
                &mut self.scratch,
            ) {
                Ok(out) => {
                    if profiling {
                        step_stages.merge(&self.scratch.take_profile());
                    }
                    heads.push(out);
                }
                Err(e) => {
                    result = Err(normalize_step_error(e));
                    break;
                }
            }
        }
        if let Err(e) = result {
            // A failure that left any head advanced or poisoned desyncs
            // the session: retire it so later steps report
            // `UnknownSession` instead of silently wrong outputs. A
            // failure caught before any per-head mutation (wrong token
            // dimension on the first head, capacity exhaustion) leaves
            // every head in place and the session live.
            if !state.is_intact(position) {
                if let Some(mut retired) = self.sessions.remove(&session) {
                    retired.release_pages(&mut self.kv_pool);
                }
            }
            return Err(e);
        }
        let saturation_events = heads.iter().map(|h| h.saturation_events).sum();
        let resident_kv_bytes = state.resident_kv_bytes();
        Ok(StepResult {
            session,
            position,
            heads: heads.into_iter().map(fixed_head_step).collect(),
            telemetry: Telemetry {
                engine: name,
                bit_exact: true,
                sim_cycles: None,
                sim_time_s: None,
                sim_energy_j: None,
                saturation_events,
                resident_kv_bytes: Some(resident_kv_bytes),
                stages: profiling.then_some(step_stages),
            },
        })
    }

    /// The fused decode tick: execute one pending step from each of many
    /// sessions, grouping maximal runs that share a decode-plan
    /// fingerprint into single [`SpatialAccelerator::execute_steps`]
    /// passes (one scratch, one pool, per-dispatch overhead paid once).
    /// Results are per entry, in request order; grouping preserves it
    /// (each group is a contiguous run) and never spans a duplicate
    /// session id, so per-session step ordering is exactly the
    /// one-at-a-time order. Poisoning/retirement semantics per entry are
    /// identical to [`step`](Self::step).
    fn step_batch(
        &mut self,
        name: &'static str,
        steps: Vec<(SessionId, Vec<TokenQkv>)>,
    ) -> Vec<(SessionId, Result<StepResult, SaloError>)> {
        let mut results = Vec::with_capacity(steps.len());
        let mut iter = steps.into_iter().peekable();
        while let Some((session, token)) = iter.next() {
            let Some(live) = self.sessions.get(&session) else {
                results.push((session, Err(SaloError::UnknownSession { session })));
                continue;
            };
            let fingerprint = live.decode.fingerprint();
            let mut group = vec![(session, token)];
            while let Some((next, _)) = iter.peek() {
                if group.iter().any(|(sid, _)| sid == next) {
                    break; // a second step for a session starts a new group
                }
                match self.sessions.get(next) {
                    Some(s) if s.decode.fingerprint() == fingerprint => {
                        group.push(iter.next().expect("peeked entry exists"));
                    }
                    _ => break,
                }
            }
            results.extend(self.run_step_group(name, group));
        }
        results
    }

    /// Executes one fused group (live sessions sharing a plan, one step
    /// each) and maps the per-head outputs back to per-session results.
    fn run_step_group(
        &mut self,
        name: &'static str,
        group: Vec<(SessionId, Vec<TokenQkv>)>,
    ) -> Vec<(SessionId, Result<StepResult, SaloError>)> {
        // One entry per grouped session: taken out of the map (for
        // simultaneous `&mut` access), its pending token, its pre-step
        // position, and any pre-validation error.
        type GroupEntry = (SessionId, FixedSession, Vec<TokenQkv>, usize, Option<SaloError>);
        // Every session is reinserted below unless its step desynced it
        // (same retirement rule as the single-step path).
        let mut entries: Vec<GroupEntry> = group
            .into_iter()
            .map(|(sid, token)| {
                let sess = self.sessions.remove(&sid).expect("grouped sessions are live");
                let position = sess.position();
                // Pre-mutation validation: head count AND every
                // head's row dimensions, rejected without touching
                // the session (which stays live). The dimension check
                // must happen up front here — in the fused pass a
                // mid-session malformed head can no longer stop its
                // sibling heads the way the sequential loop's early
                // break does.
                let d = sess.states.first().map_or(0, DecodeState::head_dim);
                let err = if token.len() != sess.states.len() {
                    Some(SaloError::HeadCountMismatch {
                        expected: sess.states.len(),
                        got: token.len(),
                    })
                } else {
                    token
                        .iter()
                        .flat_map(|tok| [&tok.q, &tok.k, &tok.v])
                        .find(|row| row.len() != d)
                        .map(|row| {
                            normalize_step_error(SimError::TokenDim { expected: d, got: row.len() })
                        })
                };
                (sid, sess, token, position, err)
            })
            .collect();
        let decode = entries
            .iter()
            .find(|(_, _, _, _, err)| err.is_none())
            .map(|(_, sess, ..)| Arc::clone(&sess.decode));

        // The fused pass skips host-side stage attribution (stages are a
        // per-dispatch profile; the batch shares one scratch), so switch
        // profiling off for the kernel call — trace spans still record.
        self.scratch.set_profiling(false);
        let mut batch: Vec<BatchStep<'_>> = Vec::new();
        for (_, sess, token, _, err) in &mut entries {
            if err.is_some() {
                continue;
            }
            let scale = sess.scale;
            for (state, tok) in sess.states.iter_mut().zip(token.iter()) {
                batch.push(BatchStep { state, q_t: &tok.q, k_t: &tok.k, v_t: &tok.v, scale });
            }
        }
        let mut outputs = if batch.is_empty() {
            Vec::new()
        } else {
            let decode = decode.as_ref().expect("non-empty batch has a plan");
            self.accel.execute_steps(decode, &mut batch, &mut self.kv_pool, &mut self.scratch)
        }
        .into_iter();
        drop(batch);

        let mut results = Vec::with_capacity(entries.len());
        for (sid, mut sess, _token, position, err) in entries {
            if let Some(e) = err {
                self.sessions.insert(sid, sess);
                results.push((sid, Err(e)));
                continue;
            }
            let mut heads = Vec::with_capacity(sess.states.len());
            let mut failure: Option<SaloError> = None;
            for _ in 0..sess.states.len() {
                match outputs.next().expect("one output per batched head") {
                    Ok(out) => heads.push(out),
                    Err(e) => {
                        failure = Some(normalize_step_error(e));
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                if sess.is_intact(position) {
                    self.sessions.insert(sid, sess);
                } else {
                    sess.release_pages(&mut self.kv_pool);
                }
                results.push((sid, Err(e)));
                continue;
            }
            let saturation_events = heads.iter().map(|h| h.saturation_events).sum();
            let resident_kv_bytes = sess.resident_kv_bytes();
            let result = StepResult {
                session: sid,
                position,
                heads: heads.into_iter().map(fixed_head_step).collect(),
                telemetry: Telemetry {
                    engine: name,
                    bit_exact: true,
                    sim_cycles: None,
                    sim_time_s: None,
                    sim_energy_j: None,
                    saturation_events,
                    resident_kv_bytes: Some(resident_kv_bytes),
                    stages: None,
                },
            };
            self.sessions.insert(sid, sess);
            results.push((sid, Ok(result)));
        }
        results
    }

    fn close(&mut self, session: SessionId) -> Result<SessionClosed, SaloError> {
        match self.sessions.remove(&session) {
            Some(mut state) => {
                let position = state.position();
                state.release_pages(&mut self.kv_pool);
                Ok(SessionClosed { session, position })
            }
            None => Err(SaloError::UnknownSession { session }),
        }
    }

    fn prefill_telemetry(name: &'static str, heads: &[ExecutionOutput]) -> Telemetry {
        // Per-head stage profiles sum exactly; under the partitioned path
        // the whole-layer aggregate rides on the first head, so the sum is
        // the layer total either way.
        let mut stages: Option<salo_sim::StageProfile> = None;
        for head in heads {
            if let Some(s) = &head.report.stages {
                stages.get_or_insert_with(Default::default).merge(s);
            }
        }
        Telemetry {
            engine: name,
            bit_exact: true,
            sim_cycles: Some(heads.iter().map(|h| h.report.timing.cycles.total).sum()),
            sim_time_s: Some(heads.iter().map(|h| h.report.timing.time_s).sum()),
            sim_energy_j: Some(heads.iter().map(|h| h.report.timing.energy_j).sum()),
            saturation_events: heads.iter().map(|h| h.report.saturation_events).sum(),
            resident_kv_bytes: None,
            stages,
        }
    }
}

/// Converts a simulator [`ExecutionOutput`] into the backend-neutral
/// [`HeadOutput`] (every fixed-point artifact present).
fn fixed_head_output(out: ExecutionOutput) -> HeadOutput {
    HeadOutput {
        output: out.output,
        raw: Some(out.raw),
        weights_q16: Some(out.weights_q16),
        report: Some(out.report),
    }
}

/// Converts a simulator [`StepOutput`] into the backend-neutral
/// [`HeadStep`].
fn fixed_head_step(out: StepOutput) -> HeadStep {
    HeadStep {
        output: out.output,
        raw: Some(out.raw),
        weight_q16: Some(out.weight_q16),
        saturation_events: out.saturation_events,
    }
}

/// The default backend: the allocation-free lowered fixed-point datapath.
///
/// Prefill walks the plan's flat pass programs
/// ([`execute_lowered`](SpatialAccelerator::execute_lowered)) with an
/// engine-lifetime scratch; decode drives persistent per-head
/// [`DecodeState`]s through the step programs. This is what the serving
/// runtime's workers run — one engine per worker thread.
#[derive(Debug)]
pub struct LoweredEngine {
    core: FixedCore,
}

impl LoweredEngine {
    /// An engine over `accel` (clones share the lookup tables), with
    /// sequential prefill (`parallelism == 1`).
    #[must_use]
    pub fn new(accel: SpatialAccelerator) -> Self {
        Self { core: FixedCore::new(accel) }
    }

    /// An engine whose prefill shards each layer's heads over
    /// `parallelism` threads via the deterministic work partition —
    /// bit-identical to sequential execution at any value.
    #[must_use]
    pub fn with_parallelism(accel: SpatialAccelerator, parallelism: usize) -> Self {
        let mut engine = Self::new(accel);
        engine.set_parallelism(parallelism);
        engine
    }

    /// Changes the prefill shard count (`<= 1` restores the sequential
    /// path). Outputs are unaffected — parallelism is bit-transparent.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.core.parallelism = parallelism.max(1);
    }

    /// The prefill shard count in use.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.core.parallelism
    }

    /// The underlying accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &SpatialAccelerator {
        &self.core.accel
    }
}

impl Engine for LoweredEngine {
    fn name(&self) -> &'static str {
        "lowered"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps { supports_decode: true, bit_exact: true, event_accurate: false }
    }

    fn prepare(
        &self,
        pattern: &HybridPattern,
        shape: &AttentionShape,
    ) -> Result<PatternHandle, SaloError> {
        self.core.prepare(pattern, shape)
    }

    fn execute(&mut self, request: AttentionRequest) -> Result<AttentionResponse, SaloError> {
        self.core.execute(
            self.name(),
            |accel, plan, heads, scale, scratch, heads_scratch, parallelism| {
                if parallelism > 1 {
                    accel.execute_heads_lowered(
                        &plan.lowered,
                        heads,
                        scale,
                        parallelism,
                        heads_scratch,
                    )
                } else {
                    heads
                        .iter()
                        .map(|h| {
                            accel.execute_lowered(&plan.lowered, &h.q, &h.k, &h.v, scale, scratch)
                        })
                        .collect()
                }
            },
            request,
        )
    }

    fn has_session(&self, session: SessionId) -> bool {
        self.core.sessions.contains_key(&session)
    }

    fn session_position(&self, session: SessionId) -> Option<usize> {
        self.core.sessions.get(&session).map(FixedSession::position)
    }

    fn kv_pool_stats(&self) -> Option<KvPoolStats> {
        Some(self.core.kv_pool.stats())
    }

    fn configure_kv_pool(&mut self, page_rows: usize, capacity_pages: Option<usize>) {
        self.core.configure_kv_pool(page_rows, capacity_pages);
    }
}

/// The event-accurate oracle backend.
///
/// Prefill steps every array pass through the cycle-level
/// [`SystolicArray`](salo_sim::SystolicArray) (explicit systolic skew,
/// rippled row sums) — roughly an order of magnitude more host time than
/// [`LoweredEngine`], bit-identical by construction. Decode shares the
/// lowered step kernels (the decode datapath has a single implementation,
/// itself bit-identical to causal prefill), so `event_accurate` describes
/// the prefill path.
#[derive(Debug)]
pub struct SystolicEngine {
    core: FixedCore,
}

impl SystolicEngine {
    /// An engine over `accel` (clones share the lookup tables).
    #[must_use]
    pub fn new(accel: SpatialAccelerator) -> Self {
        Self { core: FixedCore::new(accel) }
    }

    /// The underlying accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &SpatialAccelerator {
        &self.core.accel
    }
}

impl Engine for SystolicEngine {
    fn name(&self) -> &'static str {
        "systolic"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps { supports_decode: true, bit_exact: true, event_accurate: true }
    }

    fn prepare(
        &self,
        pattern: &HybridPattern,
        shape: &AttentionShape,
    ) -> Result<PatternHandle, SaloError> {
        self.core.prepare(pattern, shape)
    }

    fn execute(&mut self, request: AttentionRequest) -> Result<AttentionResponse, SaloError> {
        self.core.execute(
            self.name(),
            |accel, plan, heads, scale, _scratch, _heads_scratch, _parallelism| {
                heads
                    .iter()
                    .map(|h| accel.execute_systolic(&plan.plan, &h.q, &h.k, &h.v, scale))
                    .collect()
            },
            request,
        )
    }

    fn has_session(&self, session: SessionId) -> bool {
        self.core.sessions.contains_key(&session)
    }

    fn session_position(&self, session: SessionId) -> Option<usize> {
        self.core.sessions.get(&session).map(FixedSession::position)
    }

    fn kv_pool_stats(&self) -> Option<KvPoolStats> {
        Some(self.core.kv_pool.stats())
    }

    fn configure_kv_pool(&mut self, page_rows: usize, capacity_pages: Option<usize>) {
        self.core.configure_kv_pool(page_rows, capacity_pages);
    }
}
