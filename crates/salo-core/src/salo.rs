//! The `Salo` façade: compile, execute, estimate.

use std::sync::{Arc, OnceLock};

use salo_kernels::{Matrix, Qkv};
use salo_patterns::{AttentionShape, HybridPattern};
use salo_scheduler::{ExecutionPlan, PlanStats};
use salo_sim::{
    AcceleratorConfig, DecodePlan, ExecScratch, ExecutionOutput, LoweredPlan, SpatialAccelerator,
    TimingReport,
};

use crate::SaloError;

/// A pattern compiled for a specific accelerator instance and shape.
///
/// Produced by [`Salo::compile`]; reusable across executions (the plan
/// depends only on the pattern and the array geometry, not on the data).
/// Compilation also lowers the plan once into its flat execution program
/// ([`LoweredPlan`]), so every later execution — including cache hits in
/// the serving runtime, which stores `CompiledPlan`s whole — skips both
/// the scheduler pass and the lowering pass.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// The scheduler's execution plan (one head).
    pub plan: ExecutionPlan,
    /// The attention shape the plan was compiled for.
    pub shape: AttentionShape,
    /// Plan statistics (passes, occupancy, traffic inputs).
    pub stats: PlanStats,
    /// The plan resolved into flat pass programs for the execution hot
    /// path.
    pub lowered: LoweredPlan,
    /// Lazily built step-indexed decode program, shared by every decode
    /// session of this compiled plan (see
    /// [`decode_plan`](Self::decode_plan)).
    decode: OnceLock<Arc<DecodePlan>>,
}

impl CompiledPlan {
    /// The plan's step-indexed decode program, lowered on first use and
    /// cached — sessions opened on the same compiled plan (e.g. through
    /// the serving runtime's plan cache, which shares `CompiledPlan`s
    /// behind `Arc`) all reuse one program instead of re-bucketing per
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::Sim`] with
    /// [`AnticausalPlan`](salo_sim::SimError::AnticausalPlan) if the plan
    /// was not compiled from a causally clipped pattern.
    pub fn decode_plan(&self) -> Result<Arc<DecodePlan>, SaloError> {
        if let Some(decode) = self.decode.get() {
            return Ok(Arc::clone(decode));
        }
        // Two threads may race here and both lower; lowering is
        // deterministic, so the first insert wins and both see the same
        // program.
        let decode = Arc::new(DecodePlan::lower(&self.plan, &self.lowered)?);
        Ok(Arc::clone(self.decode.get_or_init(|| decode)))
    }
}

/// The result of executing all heads of a layer.
#[derive(Debug, Clone)]
pub struct MultiHeadRun {
    /// Per-head execution outputs.
    pub heads: Vec<ExecutionOutput>,
    /// Layer latency: heads run back to back.
    pub total_time_s: f64,
    /// Layer energy (lumped model).
    pub total_energy_j: f64,
}

impl MultiHeadRun {
    /// Concatenates head outputs into the layer output
    /// (`n x (heads * d)`).
    #[must_use]
    pub fn concat_output(&self) -> Matrix<f32> {
        let n = self.heads.first().map_or(0, |h| h.output.rows());
        let d = self.heads.first().map_or(0, |h| h.output.cols());
        Matrix::from_fn(n, self.heads.len() * d, |i, j| self.heads[j / d].output.get(i, j % d))
    }
}

/// Compiles `pattern` for an array geometry and shape: the scheduler pass
/// plus the one-time lowering into flat pass programs. Shared by
/// [`Salo::compile`] and the engines' handle resolution.
pub(crate) fn compile_with(
    hw: salo_scheduler::HardwareMeta,
    pattern: &HybridPattern,
    shape: &AttentionShape,
) -> Result<CompiledPlan, crate::SaloError> {
    if pattern.n() != shape.seq_len {
        return Err(SaloError::ShapeMismatch {
            expected: (shape.seq_len, shape.head_dim),
            got: (pattern.n(), shape.head_dim),
        });
    }
    let plan = ExecutionPlan::build(pattern, hw)?;
    let stats = plan.stats();
    let lowered = LoweredPlan::lower(&plan);
    Ok(CompiledPlan { plan, shape: *shape, stats, lowered, decode: OnceLock::new() })
}

/// The SALO accelerator: data scheduler + spatial array, behind one API.
///
/// `Salo` is a thin façade over the [`Engine`](crate::Engine) API: it
/// owns one simulated accelerator instance, compiles patterns into
/// [`CompiledPlan`]s, and hands out execution backends
/// ([`engine`](Salo::engine) and friends) that serve typed
/// [`AttentionRequest`](crate::AttentionRequest)s. The legacy
/// `execute`/`execute_head` methods remain as deprecated shims for one
/// release.
#[derive(Debug, Clone)]
pub struct Salo {
    accel: SpatialAccelerator,
}

impl Default for Salo {
    /// The paper's synthesized instance (Table 1) — delegates to
    /// [`AcceleratorConfig::default`], the single canonical source of the
    /// Table 1 constants.
    fn default() -> Self {
        Self::new(AcceleratorConfig::default())
    }
}

impl Salo {
    /// Creates an instance with a custom configuration.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { accel: SpatialAccelerator::new(config) }
    }

    /// The paper's synthesized instance (Table 1); equivalent to
    /// [`Salo::default`], which it delegates to.
    #[must_use]
    pub fn default_config() -> Self {
        Self::default()
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        self.accel.config()
    }

    /// The underlying simulated accelerator.
    ///
    /// Clones of a `Salo` share the accelerator's exponential/reciprocal
    /// lookup tables (they live behind `Arc`), so a worker pool built
    /// from clones holds one set of tables.
    #[must_use]
    pub fn accelerator(&self) -> &SpatialAccelerator {
        &self.accel
    }

    /// Runs the data scheduler: splits (and, for dilated windows,
    /// reorders) the pattern into an execution plan for this instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern length disagrees with the shape or
    /// the pattern yields no work.
    pub fn compile(
        &self,
        pattern: &HybridPattern,
        shape: &AttentionShape,
    ) -> Result<CompiledPlan, SaloError> {
        compile_with(self.accel.config().hw, pattern, shape)
    }

    /// Timing/energy estimate for the whole layer (all heads).
    #[must_use]
    pub fn estimate(&self, compiled: &CompiledPlan) -> TimingReport {
        self.accel.estimate(&compiled.plan, compiled.shape.head_dim, compiled.shape.num_heads)
    }

    /// Searches the pattern zoo for the cheapest pattern covering `mask`,
    /// priced by this instance's simulated cycle count: each candidate is
    /// compiled onto the configured array geometry and estimated for
    /// `shape`, so the winner reflects window splitting, global duty and
    /// gather-pass costs on *this* hardware, not an abstract nnz count.
    /// Candidates that fail to compile (e.g. global tokens on an instance
    /// without global units) are priced out at infinite cost.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask is empty, disagrees with `shape`'s
    /// sequence length, or no candidate meets `coverage_budget`.
    pub fn autotune_pattern(
        &self,
        mask: &salo_patterns::DenseMask,
        shape: &AttentionShape,
        coverage_budget: f64,
        config: salo_patterns::FitConfig,
    ) -> Result<salo_patterns::AutotuneReport, SaloError> {
        if mask.n() != shape.seq_len {
            return Err(SaloError::ShapeMismatch {
                expected: (shape.seq_len, shape.head_dim),
                got: (mask.n(), shape.head_dim),
            });
        }
        let report = salo_patterns::autotune(mask, coverage_budget, config, |pattern| match self
            .compile(pattern, shape)
        {
            Ok(compiled) => self.estimate(&compiled).cycles.total as f64,
            Err(_) => f64::INFINITY,
        })?;
        if report.cost.is_infinite() {
            return Err(SaloError::InvalidRequest {
                reason: "no covering candidate compiles on this instance".to_string(),
            });
        }
        Ok(report)
    }

    /// Functionally executes one head.
    ///
    /// Deprecated shim over the engine datapath: build a
    /// [`LoweredEngine`](crate::LoweredEngine) via
    /// [`engine`](Self::engine) and send an
    /// [`AttentionRequest::Prefill`](crate::AttentionRequest::Prefill)
    /// instead — the engine holds its own scratch and serves every
    /// request kind through one call. Bit-identical to the engine path.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the inputs do not match the compiled
    /// shape, or a simulator error on numeric degeneracy.
    #[deprecated(
        since = "0.2.0",
        note = "use Salo::engine() and AttentionRequest::Prefill; this shim lasts one release"
    )]
    pub fn execute_head(
        &self,
        compiled: &CompiledPlan,
        head: &Qkv,
    ) -> Result<ExecutionOutput, SaloError> {
        self.run_head(compiled, head, &mut ExecScratch::new())
    }

    /// Executes one head through the pre-lowered plan, reusing
    /// caller-owned scratch. Deprecated shim: a
    /// [`LoweredEngine`](crate::LoweredEngine) owns its scratch for the
    /// engine's lifetime, making this call shape redundant.
    ///
    /// # Errors
    ///
    /// Same as [`execute_head`](Self::execute_head).
    #[deprecated(
        since = "0.2.0",
        note = "use Salo::engine(); a LoweredEngine reuses its own scratch across requests"
    )]
    pub fn execute_head_with_scratch(
        &self,
        compiled: &CompiledPlan,
        head: &Qkv,
        scratch: &mut ExecScratch,
    ) -> Result<ExecutionOutput, SaloError> {
        self.run_head(compiled, head, scratch)
    }

    /// The one-head fixed-point execution shared by the deprecated shims
    /// and the [`DecodeSession`](crate::DecodeSession) oracle tests.
    pub(crate) fn run_head(
        &self,
        compiled: &CompiledPlan,
        head: &Qkv,
        scratch: &mut ExecScratch,
    ) -> Result<ExecutionOutput, SaloError> {
        if head.seq_len() != compiled.shape.seq_len || head.head_dim() != compiled.shape.head_dim {
            return Err(SaloError::ShapeMismatch {
                expected: (compiled.shape.seq_len, compiled.shape.head_dim),
                got: (head.seq_len(), head.head_dim()),
            });
        }
        let scale = SpatialAccelerator::default_scale(compiled.shape.head_dim);
        Ok(self.accel.execute_lowered(
            &compiled.lowered,
            &head.q,
            &head.k,
            &head.v,
            scale,
            scratch,
        )?)
    }

    /// Functionally executes all heads of a layer (sequentially, as the
    /// hardware does).
    ///
    /// Deprecated shim over the engine datapath — see
    /// [`execute_head`](Self::execute_head).
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::HeadCountMismatch`] if the number of heads
    /// differs from the compiled shape, or any per-head error.
    #[deprecated(
        since = "0.2.0",
        note = "use Salo::engine() and AttentionRequest::Prefill; this shim lasts one release"
    )]
    pub fn execute(
        &self,
        compiled: &CompiledPlan,
        heads: &[Qkv],
    ) -> Result<MultiHeadRun, SaloError> {
        self.run_heads(compiled, heads, &mut ExecScratch::new())
    }

    /// [`execute`](Self::execute) with caller-owned scratch. Deprecated
    /// shim: a [`LoweredEngine`](crate::LoweredEngine) owns its scratch.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute).
    #[deprecated(
        since = "0.2.0",
        note = "use Salo::engine(); a LoweredEngine reuses its own scratch across requests"
    )]
    pub fn execute_with_scratch(
        &self,
        compiled: &CompiledPlan,
        heads: &[Qkv],
        scratch: &mut ExecScratch,
    ) -> Result<MultiHeadRun, SaloError> {
        self.run_heads(compiled, heads, scratch)
    }

    /// The multi-head execution loop behind the deprecated shims.
    pub(crate) fn run_heads(
        &self,
        compiled: &CompiledPlan,
        heads: &[Qkv],
        scratch: &mut ExecScratch,
    ) -> Result<MultiHeadRun, SaloError> {
        if heads.len() != compiled.shape.num_heads {
            return Err(SaloError::HeadCountMismatch {
                expected: compiled.shape.num_heads,
                got: heads.len(),
            });
        }
        let outputs: Vec<ExecutionOutput> =
            heads.iter().map(|h| self.run_head(compiled, h, scratch)).collect::<Result<_, _>>()?;
        let total_time_s = outputs.iter().map(|o| o.report.timing.time_s).sum();
        let total_energy_j = outputs.iter().map(|o| o.report.timing.energy_j).sum();
        Ok(MultiHeadRun { heads: outputs, total_time_s, total_energy_j })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttentionRequest, Engine, PatternHandle};
    use salo_kernels::{multi_head_attention, sparse_attention};
    use salo_patterns::longformer;
    use salo_scheduler::HardwareMeta;

    fn small_salo() -> Salo {
        let config =
            AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
        Salo::new(config)
    }

    #[test]
    fn compile_validates_length() {
        let salo = small_salo();
        let pattern = longformer(64, 8, 1).unwrap();
        let shape = AttentionShape::new(32, 8, 1).unwrap();
        assert!(matches!(salo.compile(&pattern, &shape), Err(SaloError::ShapeMismatch { .. })));
    }

    #[test]
    fn default_delegates_to_the_canonical_config() {
        assert_eq!(Salo::default().config(), &AcceleratorConfig::default());
        assert_eq!(Salo::default_config().config(), Salo::default().config());
    }

    #[test]
    fn end_to_end_matches_reference() {
        let salo = small_salo();
        let pattern = longformer(48, 9, 1).unwrap();
        let shape = AttentionShape::new(48, 8, 2).unwrap();
        let compiled = Arc::new(salo.compile(&pattern, &shape).unwrap());
        let heads = Qkv::random_heads(&shape, 77);
        let mut engine = salo.engine();
        let run = engine
            .execute(AttentionRequest::Prefill {
                pattern: PatternHandle::from_plan(Arc::clone(&compiled)),
                shape,
                heads: heads.clone(),
            })
            .unwrap()
            .into_prefill()
            .unwrap();
        assert_eq!(run.heads.len(), 2);

        let reference = multi_head_attention(&pattern, &heads).unwrap();
        for (ours, exact) in run.heads.iter().zip(&reference.heads) {
            let diff = ours.output.max_abs_diff(exact);
            assert!(diff < 0.3, "head diff {diff}");
        }
        let cat = run.concat_output();
        assert_eq!(cat.shape(), (48, 16));
        assert!(run.telemetry.sim_time_s.unwrap() > 0.0);
        assert!(run.telemetry.sim_energy_j.unwrap() > 0.0);
        assert_eq!(run.telemetry.engine, "lowered");
    }

    #[test]
    fn execute_checks_head_shape_and_count() {
        let salo = small_salo();
        let pattern = longformer(32, 8, 1).unwrap();
        let shape = AttentionShape::new(32, 8, 2).unwrap();
        let compiled = Arc::new(salo.compile(&pattern, &shape).unwrap());
        let mut engine = salo.engine();
        // Wrong head count.
        let one = Qkv::random_heads(&AttentionShape::new(32, 8, 1).unwrap(), 1);
        assert!(matches!(
            engine.execute(AttentionRequest::Prefill {
                pattern: PatternHandle::from_plan(Arc::clone(&compiled)),
                shape,
                heads: one,
            }),
            Err(SaloError::HeadCountMismatch { expected: 2, got: 1 })
        ));
        // Wrong head dimension.
        let bad_shape = AttentionShape::new(32, 4, 1).unwrap();
        let bad = Qkv::random_heads(&bad_shape, 1);
        assert!(matches!(
            engine.execute(AttentionRequest::Prefill {
                pattern: PatternHandle::from_plan(Arc::clone(&compiled)),
                shape: bad_shape,
                heads: bad,
            }),
            Err(SaloError::ShapeMismatch { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine_bit_for_bit() {
        // The one-release compatibility shims must keep producing the
        // engine datapath's exact bits until they are removed.
        let salo = small_salo();
        let pattern = longformer(48, 9, 1).unwrap();
        let shape = AttentionShape::new(48, 8, 2).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        let mut scratch = salo_sim::ExecScratch::new();
        for seed in [1u64, 2, 3] {
            let heads = Qkv::random_heads(&shape, seed);
            let reused = salo.execute_with_scratch(&compiled, &heads, &mut scratch).unwrap();
            let fresh = salo.execute(&compiled, &heads).unwrap();
            let mut engine = salo.engine();
            let via_engine = engine
                .execute(AttentionRequest::Prefill {
                    pattern: PatternHandle::from_plan(Arc::new(compiled.clone())),
                    shape,
                    heads: heads.clone(),
                })
                .unwrap()
                .into_prefill()
                .unwrap();
            for ((a, b), c) in reused.heads.iter().zip(&fresh.heads).zip(&via_engine.heads) {
                assert_eq!(a.raw, b.raw);
                assert_eq!(a.weights_q16, b.weights_q16);
                assert_eq!(Some(&a.raw), c.raw.as_ref());
                assert_eq!(Some(&a.weights_q16), c.weights_q16.as_ref());
            }
            let single = salo.execute_head(&compiled, &heads[0]).unwrap();
            assert_eq!(single.raw, fresh.heads[0].raw);
        }
    }

    #[test]
    fn clones_share_lookup_tables() {
        // The serving worker pool clones one Salo per worker; the clones
        // must share the exp/recip tables rather than rebuild them.
        let salo = small_salo();
        let clone = salo.clone();
        let (ea, ra) = salo.accelerator().shared_tables();
        let (eb, rb) = clone.accelerator().shared_tables();
        assert!(std::sync::Arc::ptr_eq(ea, eb));
        assert!(std::sync::Arc::ptr_eq(ra, rb));
    }

    #[test]
    fn estimate_scales_with_heads() {
        let salo = small_salo();
        let pattern = longformer(64, 8, 1).unwrap();
        let s1 = AttentionShape::new(64, 16, 1).unwrap();
        let s4 = AttentionShape::new(64, 16, 4).unwrap();
        let t1 = salo.estimate(&salo.compile(&pattern, &s1).unwrap());
        let t4 = salo.estimate(&salo.compile(&pattern, &s4).unwrap());
        assert_eq!(t4.cycles.total, 4 * t1.cycles.total);
    }

    #[test]
    fn autotune_prices_candidates_by_simulated_cycles() {
        use salo_patterns::{DenseMask, FitConfig};
        let salo = small_salo();
        let n = 64;
        let pattern = longformer(n, 8, 1).unwrap();
        let mask = DenseMask::from_pattern(&pattern);
        let shape = AttentionShape::new(n, 8, 1).unwrap();
        let report = salo.autotune_pattern(&mask, &shape, 1.0, FitConfig::default()).unwrap();
        assert!(report.coverage >= 1.0 - 1e-12, "full budget means full coverage");
        assert!(report.candidates > 1, "the sweep must price several candidates");
        // The winner's cost is the real estimate of its own compiled plan.
        let compiled = salo.compile(&report.pattern, &shape).unwrap();
        let estimate = salo.estimate(&compiled).cycles.total as f64;
        assert!((report.cost - estimate).abs() < 1e-9);
        // And it is no worse than recompiling the preset the mask came from.
        let baseline = salo.estimate(&salo.compile(&pattern, &shape).unwrap()).cycles.total as f64;
        assert!(report.cost <= baseline, "winner {} vs preset {baseline}", report.cost);
    }

    #[test]
    fn autotune_rejects_mismatched_mask_and_shape() {
        use salo_patterns::{DenseMask, FitConfig};
        let salo = small_salo();
        let mask = DenseMask::from_pattern(&longformer(32, 4, 0).unwrap());
        let shape = AttentionShape::new(64, 8, 1).unwrap();
        assert!(matches!(
            salo.autotune_pattern(&mask, &shape, 1.0, FitConfig::default()),
            Err(SaloError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn single_head_consistency_with_sparse_reference() {
        let salo = small_salo();
        let pattern = longformer(40, 7, 2).unwrap();
        let shape = AttentionShape::new(40, 8, 1).unwrap();
        let mut engine = salo.engine();
        let handle = engine.prepare(&pattern, &shape).unwrap();
        let head = Qkv::random(40, 8, 5);
        let out = engine
            .execute(AttentionRequest::Prefill {
                pattern: handle,
                shape,
                heads: vec![head.clone()],
            })
            .unwrap()
            .into_prefill()
            .unwrap();
        let scale = 1.0 / (8f32).sqrt();
        let exact = sparse_attention(&pattern, &head.q, &head.k, &head.v, scale).unwrap();
        assert!(out.heads[0].output.max_abs_diff(&exact) < 0.3);
    }
}
