//! The top-level SALO API.
//!
//! [`Salo`] ties the reproduction together: configure an accelerator
//! instance, *compile* a hybrid sparse attention pattern into an execution
//! plan (the data scheduler), then *execute* it functionally (bit-accurate
//! fixed point) or *estimate* it (cycle/energy model). The
//! [`experiment`] module packages the paper's evaluation protocol —
//! workload vs CPU/GPU baselines — used by the `salo-bench` harness to
//! regenerate Fig. 7.
//!
//! ```
//! use salo_core::Salo;
//! use salo_patterns::{longformer, AttentionShape};
//!
//! # fn main() -> Result<(), salo_core::SaloError> {
//! let salo = Salo::default_config();
//! let pattern = longformer(256, 32, 1)?;
//! let shape = AttentionShape::new(256, 64, 2)?;
//! let plan = salo.compile(&pattern, &shape)?;
//! let report = salo.estimate(&plan);
//! assert!(report.cycles.total > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod decode;
mod error;
pub mod experiment;
mod salo;
mod verify;

pub use decode::DecodeSession;
pub use error::SaloError;
pub use experiment::{compare_workload, figure7_comparisons, Comparison};
pub use salo::{CompiledPlan, MultiHeadRun, Salo};
pub use verify::{validate, ValidationConfig, ValidationReport};
