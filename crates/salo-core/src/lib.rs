//! The top-level SALO API.
//!
//! The public surface is the unified [`engine`] API: a typed
//! [`AttentionRequest`] (prefill, or the decode-session trio
//! open/step/close) executed by any backend implementing the object-safe
//! [`Engine`] trait — [`LoweredEngine`] (fast fixed point, the default),
//! [`SystolicEngine`] (event-accurate oracle) and [`ReferenceEngine`]
//! (`f32` accuracy yardstick). [`Salo`] is the thin façade over it:
//! configure an accelerator instance, *compile* a hybrid sparse attention
//! pattern into an execution plan (the data scheduler), hand out engines,
//! or *estimate* a plan (cycle/energy model). The [`experiment`] module
//! packages the paper's evaluation protocol — workload vs CPU/GPU
//! baselines — used by the `salo-bench` harness to regenerate Fig. 7.
//!
//! ```
//! use salo_core::{AttentionRequest, Engine, Salo};
//! use salo_kernels::Qkv;
//! use salo_patterns::{longformer, AttentionShape};
//!
//! # fn main() -> Result<(), salo_core::SaloError> {
//! let salo = Salo::default_config();
//! let pattern = longformer(256, 32, 1)?;
//! let shape = AttentionShape::new(256, 64, 2)?;
//!
//! // Estimate: compile once, ask the timing model.
//! let plan = salo.compile(&pattern, &shape)?;
//! let report = salo.estimate(&plan);
//! assert!(report.cycles.total > 0);
//!
//! // Execute: one typed request through the default engine.
//! let mut engine = salo.engine();
//! let handle = engine.prepare(&pattern, &shape)?;
//! let heads = Qkv::random_heads(&shape, 7);
//! let out = engine
//!     .execute(AttentionRequest::Prefill { pattern: handle, shape, heads })?
//!     .into_prefill()?;
//! assert_eq!(out.heads.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod decode;
pub mod engine;
mod error;
pub mod experiment;
mod salo;
mod verify;

pub use decode::DecodeSession;
pub use engine::{
    env_parallelism, reference_head, AttentionRequest, AttentionResponse, Engine, EngineCaps,
    HeadOutput, HeadStep, LoweredEngine, PatternHandle, PrefillOutput, ReferenceEngine,
    SessionClosed, SessionId, SessionOpened, StepResult, SystolicEngine, Telemetry, TokenQkv,
};
pub use error::SaloError;
pub use experiment::{compare_workload, figure7_comparisons, Comparison};
pub use salo::{CompiledPlan, MultiHeadRun, Salo};
pub use verify::{validate, ValidationConfig, ValidationReport};
