//! The paper's evaluation protocol: SALO vs CPU/GPU per workload (§6.2).

use salo_baselines::Device;
use salo_models::Workload;

use crate::{Salo, SaloError};

/// One workload's comparison row (a bar group of Fig. 7a + 7b).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// SALO layer latency (seconds).
    pub salo_latency_s: f64,
    /// SALO layer energy (joules, lumped `P x t`).
    pub salo_energy_j: f64,
    /// SALO PE-array MAC utilization.
    pub salo_utilization: f64,
    /// CPU layer latency (seconds).
    pub cpu_latency_s: f64,
    /// CPU layer energy (joules, per-FLOP model).
    pub cpu_energy_j: f64,
    /// GPU layer latency (seconds).
    pub gpu_latency_s: f64,
    /// GPU layer energy (joules).
    pub gpu_energy_j: f64,
}

impl Comparison {
    /// Speedup over the CPU baseline.
    #[must_use]
    pub fn speedup_cpu(&self) -> f64 {
        self.cpu_latency_s / self.salo_latency_s
    }

    /// Speedup over the GPU baseline.
    #[must_use]
    pub fn speedup_gpu(&self) -> f64 {
        self.gpu_latency_s / self.salo_latency_s
    }

    /// Energy saving over the CPU baseline.
    #[must_use]
    pub fn energy_saving_cpu(&self) -> f64 {
        self.cpu_energy_j / self.salo_energy_j
    }

    /// Energy saving over the GPU baseline.
    #[must_use]
    pub fn energy_saving_gpu(&self) -> f64 {
        self.gpu_energy_j / self.salo_energy_j
    }
}

/// Runs one workload through the SALO estimate and both baseline models.
///
/// # Errors
///
/// Returns compile errors from the scheduler.
pub fn compare_workload(
    salo: &Salo,
    workload: &Workload,
    cpu: &Device,
    gpu: &Device,
) -> Result<Comparison, SaloError> {
    let compiled = salo.compile(&workload.pattern, &workload.shape)?;
    let report = salo.estimate(&compiled);
    let baseline = workload.baseline();
    Ok(Comparison {
        workload: workload.name.clone(),
        salo_latency_s: report.time_s,
        salo_energy_j: report.energy_j,
        salo_utilization: report.utilization.mac_utilization,
        cpu_latency_s: cpu.latency_s(&baseline),
        cpu_energy_j: cpu.energy_j(&baseline),
        gpu_latency_s: gpu.latency_s(&baseline),
        gpu_energy_j: gpu.energy_j(&baseline),
    })
}

/// Runs the three Fig. 7 workloads (Longformer, ViL stage 1, ViL stage 2)
/// against the paper's CPU and GPU baselines.
///
/// # Errors
///
/// Returns the first compile error encountered.
pub fn figure7_comparisons(salo: &Salo) -> Result<Vec<Comparison>, SaloError> {
    let cpu = salo_baselines::cpu_xeon_e5_2630_v3();
    let gpu = salo_baselines::gtx_1080ti();
    let workloads =
        [salo_models::longformer_base_4096(), salo_models::vil_stage1(), salo_models::vil_stage2()];
    workloads.iter().map(|w| compare_workload(salo, w, &cpu, &gpu)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_models::paper;

    #[test]
    fn figure7_shape_holds() {
        let salo = Salo::default_config();
        let rows = figure7_comparisons(&salo).unwrap();
        assert_eq!(rows.len(), 3);

        for (row, expect) in rows.iter().zip(&paper::FIGURE7) {
            // SALO wins everywhere, by a lot.
            assert!(row.speedup_cpu() > 20.0, "{}: cpu {}", row.workload, row.speedup_cpu());
            assert!(row.speedup_gpu() > 3.0, "{}: gpu {}", row.workload, row.speedup_gpu());
            // Within ~35 % of the paper's reported ratios.
            let rel = |ours: f64, theirs: f64| (ours / theirs - 1.0).abs();
            assert!(
                rel(row.speedup_cpu(), expect.speedup_cpu) < 0.35,
                "{}: cpu speedup {} vs paper {}",
                row.workload,
                row.speedup_cpu(),
                expect.speedup_cpu
            );
            assert!(
                rel(row.speedup_gpu(), expect.speedup_gpu) < 0.35,
                "{}: gpu speedup {} vs paper {}",
                row.workload,
                row.speedup_gpu(),
                expect.speedup_gpu
            );
            assert!(
                rel(row.energy_saving_cpu(), expect.energy_cpu) < 0.35,
                "{}: cpu energy {} vs paper {}",
                row.workload,
                row.energy_saving_cpu(),
                expect.energy_cpu
            );
            assert!(
                rel(row.energy_saving_gpu(), expect.energy_gpu) < 0.45,
                "{}: gpu energy {} vs paper {}",
                row.workload,
                row.energy_saving_gpu(),
                expect.energy_gpu
            );
        }

        // Averages in the neighbourhood of the abstract's 89.33x / 17.66x.
        let avg_cpu: f64 = rows.iter().map(Comparison::speedup_cpu).sum::<f64>() / 3.0;
        let avg_gpu: f64 = rows.iter().map(Comparison::speedup_gpu).sum::<f64>() / 3.0;
        assert!((avg_cpu / paper::AVG_SPEEDUP_CPU - 1.0).abs() < 0.25, "avg cpu speedup {avg_cpu}");
        assert!((avg_gpu / paper::AVG_SPEEDUP_GPU - 1.0).abs() < 0.25, "avg gpu speedup {avg_gpu}");

        // Orderings the paper's bars show: GPU gains are smallest on
        // Longformer (large GEMM-friendly bands) and larger on ViL stages.
        assert!(rows[0].speedup_gpu() < rows[1].speedup_gpu());
        assert!(rows[0].speedup_gpu() < rows[2].speedup_gpu());
        // Energy savings are in the hundreds against both baselines.
        for row in &rows {
            assert!(row.energy_saving_cpu() > 100.0);
            assert!(row.energy_saving_gpu() > 100.0);
        }
    }

    #[test]
    fn longformer_utilization_above_threshold() {
        let salo = Salo::default_config();
        let rows = figure7_comparisons(&salo).unwrap();
        assert!(
            rows[0].salo_utilization > paper::SALO_UTILIZATION_MIN,
            "Longformer utilization {}",
            rows[0].salo_utilization
        );
    }
}
