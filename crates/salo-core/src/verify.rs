//! Deployment validation: prove a compiled plan is trustworthy before
//! committing silicon time to it.
//!
//! Users bringing custom hybrid patterns get three independent checks:
//! structural (every kept position scheduled exactly once), numerical
//! (simulated output tracks the exact `f32` reference within the
//! quantization budget), and physical (the working set against the
//! instance's buffers). [`validate`] runs all three and returns a single
//! report; `examples/custom_pattern.rs` shows the workflow.

use salo_kernels::{sparse_attention, Qkv};
use salo_scheduler::verify_coverage;
use salo_sim::BufferAnalysis;

use crate::{CompiledPlan, Salo, SaloError};
use salo_patterns::HybridPattern;

/// The outcome of validating a compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Structural check: exactly-once coverage of the pattern.
    pub coverage_exact: bool,
    /// Positions missing/duplicated/spurious (zero when exact).
    pub coverage_defects: usize,
    /// Numerical check: worst absolute deviation from the `f32` reference
    /// on a probe execution.
    pub max_abs_error: f32,
    /// Whether the numerical check passed the tolerance.
    pub numerics_ok: bool,
    /// Fixed-point saturation events during the probe (0 is healthy).
    pub saturation_events: u64,
    /// Physical check: buffer working-set analysis.
    pub buffers: BufferAnalysis,
}

impl ValidationReport {
    /// All checks green.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.coverage_exact && self.numerics_ok && self.saturation_events == 0
    }
}

/// Validation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationConfig {
    /// Seed of the probe inputs.
    pub seed: u64,
    /// Numerical tolerance on `max |fixed - f32|` (default 0.35 — the
    /// Q.4 input budget on unit-normal data).
    pub tolerance: f32,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self { seed: 0xC0FFEE, tolerance: 0.35 }
    }
}

/// Runs the three checks on a compiled plan.
///
/// Cost: one `O(n^2)` coverage replay plus one probe execution — meant
/// for deployment-time validation of custom patterns, not inner loops.
///
/// # Errors
///
/// Propagates simulator/kernel errors from the probe execution.
pub fn validate(
    salo: &Salo,
    compiled: &CompiledPlan,
    pattern: &HybridPattern,
    config: ValidationConfig,
) -> Result<ValidationReport, SaloError> {
    // 1. Structural.
    let coverage = verify_coverage(&compiled.plan, pattern);
    let defects = coverage.missing.len() + coverage.duplicated.len() + coverage.spurious.len();

    // 2. Numerical probe (one head).
    let head = Qkv::random(compiled.shape.seq_len, compiled.shape.head_dim, config.seed);
    let out = salo.run_head(compiled, &head, &mut salo_sim::ExecScratch::new())?;
    let scale = 1.0 / (compiled.shape.head_dim.max(1) as f32).sqrt();
    let reference = sparse_attention(pattern, &head.q, &head.k, &head.v, scale)?;
    let max_abs_error = out.output.max_abs_diff(&reference);

    // 3. Physical.
    let buffers = BufferAnalysis::analyze(salo.config(), &compiled.plan, compiled.shape.head_dim);

    Ok(ValidationReport {
        coverage_exact: coverage.is_exact(),
        coverage_defects: defects,
        max_abs_error,
        numerics_ok: max_abs_error < config.tolerance,
        saturation_events: out.report.saturation_events,
        buffers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{longformer, AttentionShape, HybridPattern, Window};
    use salo_scheduler::HardwareMeta;
    use salo_sim::AcceleratorConfig;

    fn small_salo() -> Salo {
        let config =
            AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
        Salo::new(config)
    }

    #[test]
    fn healthy_pattern_validates() {
        let salo = small_salo();
        let pattern = longformer(64, 9, 1).unwrap();
        let shape = AttentionShape::new(64, 8, 1).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        let report = validate(&salo, &compiled, &pattern, ValidationConfig::default()).unwrap();
        assert!(report.is_ok(), "{report:?}");
        assert_eq!(report.coverage_defects, 0);
        assert!(report.buffers.fits);
    }

    #[test]
    fn exotic_pattern_validates_too() {
        let salo = small_salo();
        let pattern = HybridPattern::builder(60)
            .window(Window::dilated(-15, 15, 5).unwrap())
            .window(Window::symmetric(3).unwrap())
            .global_tokens([0, 30])
            .build()
            .unwrap();
        let shape = AttentionShape::new(60, 8, 1).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        let report = validate(&salo, &compiled, &pattern, ValidationConfig::default()).unwrap();
        assert!(report.is_ok(), "{report:?}");
    }

    #[test]
    fn tolerance_knob_bites() {
        let salo = small_salo();
        let pattern = longformer(48, 7, 1).unwrap();
        let shape = AttentionShape::new(48, 8, 1).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        let strict = ValidationConfig { tolerance: 1e-6, ..ValidationConfig::default() };
        let report = validate(&salo, &compiled, &pattern, strict).unwrap();
        assert!(!report.numerics_ok, "quantization error must exceed 1e-6");
        assert!(report.coverage_exact, "coverage is independent of tolerance");
    }

    #[test]
    fn deterministic_per_seed() {
        let salo = small_salo();
        let pattern = longformer(32, 5, 1).unwrap();
        let shape = AttentionShape::new(32, 8, 1).unwrap();
        let compiled = salo.compile(&pattern, &shape).unwrap();
        let a = validate(&salo, &compiled, &pattern, ValidationConfig::default()).unwrap();
        let b = validate(&salo, &compiled, &pattern, ValidationConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
