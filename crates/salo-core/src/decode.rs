//! Streaming decode sessions over the [`Salo`] façade.
//!
//! A [`DecodeSession`] packages the execution-level decode machinery
//! (`salo-sim`'s [`DecodePlan`]/[`DecodeState`]) behind the same
//! compile-once/execute-many shape as the rest of the API: opening a
//! session causally clips the pattern, runs the scheduler and lowering
//! passes once, and compiles the step program; every generated token is
//! then one allocation-free [`step`](DecodeSession::step) against the
//! session's persistent K/V arenas.

use std::sync::Arc;

use salo_kernels::Qkv;
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::{DecodePlan, DecodeState, ExecScratch, KvPagePool, SpatialAccelerator, StepOutput};

use crate::{CompiledPlan, Salo, SaloError};

/// One head's autoregressive decode session: a compiled causal plan, the
/// persistent quantized K/V state and the per-step scratch, bound
/// together.
///
/// Obtained from [`Salo::decode_session`]. The session holds a clone of
/// the accelerator (clones share the exponential/reciprocal lookup tables
/// behind `Arc`), so it is self-contained and can outlive the `Salo` it
/// came from.
///
/// # Example
///
/// ```
/// use salo_core::Salo;
/// use salo_kernels::Qkv;
/// use salo_patterns::{HybridPattern, Window};
///
/// # fn main() -> Result<(), salo_core::SaloError> {
/// let pattern = HybridPattern::builder(32)
///     .window(Window::causal(8)?)
///     .global_token(0)
///     .build()?;
/// let salo = Salo::default_config();
/// let mut session = salo.decode_session(&pattern, 16)?;
///
/// let qkv = Qkv::random(32, 16, 7);
/// session.prime_rows(&qkv, 0..session.min_step())?;
/// for t in session.min_step()..32 {
///     let out = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t))?;
///     assert_eq!(out.position, t);
///     assert!(out.weight_q16 > 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecodeSession {
    accel: SpatialAccelerator,
    compiled: Arc<CompiledPlan>,
    decode: Arc<DecodePlan>,
    state: DecodeState,
    pool: KvPagePool,
    scratch: ExecScratch,
    scale: f32,
}

impl Salo {
    /// Opens a single-head streaming decode session for `pattern` with
    /// head dimension `head_dim`.
    ///
    /// The pattern is causally clipped first
    /// ([`HybridPattern::decode_view`]), then compiled and lowered once;
    /// the session's capacity is the pattern's sequence length (prompt
    /// plus generated tokens). Multi-head decoding runs one session per
    /// head, all sharing one compiled plan: compile (or take the first
    /// session's [`shared_plan`](DecodeSession::shared_plan)) once, then
    /// open the rest with
    /// [`decode_session_with_plan`](Self::decode_session_with_plan) —
    /// the serving runtime does exactly that with a cached plan.
    ///
    /// # Errors
    ///
    /// Returns a pattern error if nothing survives causal clipping, or a
    /// scheduler error if the clipped pattern yields no work for this
    /// instance.
    pub fn decode_session(
        &self,
        pattern: &HybridPattern,
        head_dim: usize,
    ) -> Result<DecodeSession, SaloError> {
        let view = pattern.decode_view()?;
        let shape = AttentionShape::new(pattern.n(), head_dim, 1)?;
        let compiled = Arc::new(self.compile(view.causal_pattern(), &shape)?);
        DecodeSession::open(self.accelerator().clone(), compiled)
    }

    /// Opens a decode session over an already-compiled **causal** plan,
    /// sharing it instead of recompiling — the per-head entry point of
    /// multi-head decoding, and the way to start many generations of one
    /// pattern without paying the scheduler and lowering passes again.
    ///
    /// # Errors
    ///
    /// As [`DecodeSession::open`].
    pub fn decode_session_with_plan(
        &self,
        plan: &Arc<CompiledPlan>,
    ) -> Result<DecodeSession, SaloError> {
        DecodeSession::open(self.accelerator().clone(), Arc::clone(plan))
    }
}

impl DecodeSession {
    /// Opens a session over an already-compiled **causal** plan — the
    /// serving runtime's entry point, where the plan comes from the
    /// shared cache.
    ///
    /// # Errors
    ///
    /// Returns [`SaloError::Sim`] with
    /// [`AnticausalPlan`](salo_sim::SimError::AnticausalPlan) if the plan
    /// was not compiled from a causally clipped pattern.
    pub fn open(accel: SpatialAccelerator, compiled: Arc<CompiledPlan>) -> Result<Self, SaloError> {
        let decode = compiled.decode_plan()?;
        let state = DecodeState::new(&decode, compiled.shape.head_dim);
        let scale = SpatialAccelerator::default_scale(compiled.shape.head_dim);
        Ok(Self {
            accel,
            compiled,
            decode,
            state,
            pool: KvPagePool::default(),
            scratch: ExecScratch::new(),
            scale,
        })
    }

    /// The session's compiled plan, shareable with further sessions via
    /// [`Salo::decode_session_with_plan`].
    #[must_use]
    pub fn shared_plan(&self) -> Arc<CompiledPlan> {
        Arc::clone(&self.compiled)
    }

    /// The compiled causal plan the session executes.
    #[must_use]
    pub fn compiled(&self) -> &CompiledPlan {
        &self.compiled
    }

    /// The step-indexed decode program.
    #[must_use]
    pub fn decode_plan(&self) -> &DecodePlan {
        &self.decode
    }

    /// Sequence capacity (prompt + generated tokens).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.decode.n()
    }

    /// First decodable position — the prompt must cover `0..min_step()`.
    #[must_use]
    pub fn min_step(&self) -> usize {
        self.decode.min_step()
    }

    /// Position the next token will occupy.
    #[must_use]
    pub fn position(&self) -> usize {
        self.state.position()
    }

    /// Tokens the session can still ingest.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.capacity() - self.position()
    }

    /// Cumulative MAC saturation events over the session.
    #[must_use]
    pub fn saturation_events(&self) -> u64 {
        self.state.saturation_events()
    }

    /// Ingests one prompt token (no output row). Returns the saturation
    /// events it caused.
    ///
    /// # Errors
    ///
    /// Capacity/dimension errors from the simulator layer.
    pub fn prime_token(&mut self, q: &[f32], k: &[f32], v: &[f32]) -> Result<u64, SaloError> {
        Ok(self.accel.prime_token(
            &self.decode,
            &mut self.state,
            q,
            k,
            v,
            self.scale,
            &mut self.pool,
            &mut self.scratch,
        )?)
    }

    /// Ingests a range of rows of a full-sequence [`Qkv`] as prompt
    /// tokens — convenience for tests and demos that hold the whole
    /// sequence up front.
    ///
    /// # Errors
    ///
    /// As [`prime_token`](Self::prime_token); the range must start at the
    /// session's current position.
    pub fn prime_rows(&mut self, qkv: &Qkv, rows: std::ops::Range<usize>) -> Result<(), SaloError> {
        for t in rows {
            self.prime_token(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t))?;
        }
        Ok(())
    }

    /// Decodes one token: ingests `(q, k, v)` at the next position and
    /// returns that position's attention output row, bit-identical to the
    /// corresponding causal-prefill row.
    ///
    /// # Errors
    ///
    /// Capacity, priming, dimension or fixed-point errors from the
    /// simulator layer. A failure that occurs after the token already
    /// entered the history poisons the session
    /// ([`is_poisoned`](Self::is_poisoned)): further steps report
    /// [`PoisonedDecodeState`](salo_sim::SimError::PoisonedDecodeState)
    /// until [`reset`](Self::reset) — never silently wrong outputs.
    pub fn step(&mut self, q: &[f32], k: &[f32], v: &[f32]) -> Result<StepOutput, SaloError> {
        Ok(self.accel.execute_step(
            &self.decode,
            &mut self.state,
            q,
            k,
            v,
            self.scale,
            &mut self.pool,
            &mut self.scratch,
        )?)
    }

    /// The running outputs of the global tokens' rows, as
    /// `(token, raw_row, weight_q16)` — each catches up incrementally as
    /// the history grows and equals the prefill row once the session is
    /// complete.
    #[must_use]
    pub fn global_rows(&self) -> Vec<(usize, Vec<salo_fixed::Fix16x8>, i64)> {
        self.decode
            .globals()
            .iter()
            .enumerate()
            .map(|(gi, &g)| {
                let (raw, weight) = self.state.global_row_output(gi);
                (g as usize, raw, weight)
            })
            .collect()
    }

    /// Whether an earlier failed step left the session inconsistent; a
    /// poisoned session refuses further tokens until
    /// [`reset`](Self::reset).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.state.is_poisoned()
    }

    /// Bytes of quantized K/V the session currently keeps resident — the
    /// pinned pages only, not the full history (the horizon reclaimer
    /// returns dead pages to the session's pool as the generation runs).
    #[must_use]
    pub fn resident_kv_bytes(&self) -> u64 {
        self.state.resident_kv_bytes()
    }

    /// Resets the session to an empty history (clearing any poisoning),
    /// keeping the compiled plan and grown buffers — its pages go back to
    /// the session's pool and are recycled by the next generation. The
    /// cheap way to start a new generation with the same pattern.
    pub fn reset(&mut self) {
        let d = self.compiled.shape.head_dim;
        self.state.reset(&self.decode, d, &mut self.pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::Window;
    use salo_scheduler::HardwareMeta;
    use salo_sim::AcceleratorConfig;

    fn small_salo() -> Salo {
        let config =
            AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
        Salo::new(config)
    }

    fn sink_pattern(n: usize) -> HybridPattern {
        HybridPattern::builder(n)
            .window(Window::symmetric(9).unwrap())
            .global_token(0)
            .build()
            .unwrap()
    }

    #[test]
    fn session_steps_match_causal_prefill_rows() {
        let salo = small_salo();
        let n = 48;
        let d = 8;
        let pattern = sink_pattern(n);
        let mut session = salo.decode_session(&pattern, d).unwrap();
        assert_eq!(session.capacity(), n);
        assert_eq!(session.min_step(), 1);

        // The oracle: one-shot execution of the session's own causal plan.
        let qkv = Qkv::random(n, d, 99);
        let prefill =
            salo.run_head(session.compiled(), &qkv, &mut salo_sim::ExecScratch::new()).unwrap();

        session.prime_rows(&qkv, 0..1).unwrap();
        for t in 1..n {
            let out = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
            let row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
            assert_eq!(out.raw, row, "row {t}");
            assert_eq!(out.weight_q16, prefill.weights_q16[t]);
        }
        assert_eq!(session.remaining(), 0);
        let globals = session.global_rows();
        assert_eq!(globals.len(), 1);
        let (g, raw, weight) = &globals[0];
        assert_eq!(*g, 0);
        assert_eq!(*raw, (0..d).map(|c| prefill.raw.get(0, c)).collect::<Vec<_>>());
        assert_eq!(*weight, prefill.weights_q16[0]);
        assert_eq!(session.saturation_events(), prefill.report.saturation_events);
    }

    #[test]
    fn reset_starts_an_identical_generation() {
        let salo = small_salo();
        let pattern = sink_pattern(24);
        let mut session = salo.decode_session(&pattern, 4).unwrap();
        let qkv = Qkv::random(24, 4, 3);

        let run = |s: &mut DecodeSession| {
            s.prime_rows(&qkv, 0..1).unwrap();
            (1..24).map(|t| s.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap()).collect()
        };
        let first: Vec<_> = run(&mut session);
        session.reset();
        assert_eq!(session.position(), 0);
        let second: Vec<_> = run(&mut session);
        assert_eq!(first, second, "reset session replays bit-identically");
    }

    #[test]
    fn shared_plan_sessions_decode_identically_without_recompiling() {
        let salo = small_salo();
        let pattern = sink_pattern(24);
        let mut first = salo.decode_session(&pattern, 4).unwrap();
        let plan = first.shared_plan();
        let mut second = salo.decode_session_with_plan(&plan).unwrap();
        assert!(Arc::ptr_eq(&plan, &second.shared_plan()), "the plan is shared, not recompiled");

        let qkv = Qkv::random(24, 4, 11);
        first.prime_rows(&qkv, 0..1).unwrap();
        second.prime_rows(&qkv, 0..1).unwrap();
        for t in 1..24 {
            let a = first.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
            let b = second.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).unwrap();
            assert_eq!(a, b, "step {t}");
        }
    }

    #[test]
    fn session_rejects_unprimed_and_overflow() {
        let salo = small_salo();
        let pattern = sink_pattern(12);
        let mut session = salo.decode_session(&pattern, 4).unwrap();
        let row = [0.25f32; 4];
        assert!(session.step(&row, &row, &row).is_err(), "global not primed yet");
        session.prime_token(&row, &row, &row).unwrap();
        for _ in 1..12 {
            session.step(&row, &row, &row).unwrap();
        }
        assert!(session.step(&row, &row, &row).is_err(), "capacity exhausted");
    }
}
