use std::error::Error;
use std::fmt;

use salo_fixed::FixedError;
use salo_kernels::KernelError;
use salo_patterns::PatternError;
use salo_scheduler::SchedulerError;
use salo_sim::SimError;

/// The unified error type of the top-level API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SaloError {
    /// The compiled plan and the provided inputs disagree.
    ShapeMismatch {
        /// Expected sequence length and head dimension.
        expected: (usize, usize),
        /// What was provided.
        got: (usize, usize),
    },
    /// Wrong number of heads provided to a multi-head execution.
    HeadCountMismatch {
        /// Heads declared in the compiled shape.
        expected: usize,
        /// Heads provided.
        got: usize,
    },
    /// A request is internally inconsistent (prompt does not cover the
    /// globals, no decode capacity left, empty session shape).
    InvalidRequest {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A decode request referenced a session the engine does not hold —
    /// never opened, closed, or retired by a desyncing step failure.
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// A decode-open reused a session id that is still live.
    SessionInUse {
        /// The colliding session id.
        session: u64,
    },
    /// The engine cannot serve the request: a capability it lacks, or a
    /// [`PatternHandle`](crate::PatternHandle) missing the data it needs.
    Unsupported {
        /// The engine's name.
        engine: &'static str,
        /// What was asked of it.
        reason: String,
    },
    /// An [`AttentionResponse`](crate::AttentionResponse) variant did not
    /// match the request it answered — an engine-implementation bug.
    ResponseMismatch {
        /// The variant actually returned.
        got: &'static str,
    },
    /// Pattern-layer error.
    Pattern(PatternError),
    /// Scheduler-layer error.
    Scheduler(SchedulerError),
    /// Simulator-layer error.
    Sim(SimError),
    /// Kernel-layer error.
    Kernel(KernelError),
    /// Fixed-point-layer error.
    Fixed(FixedError),
}

impl fmt::Display for SaloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaloError::ShapeMismatch { expected, got } => write!(
                f,
                "input shape {}x{} does not match compiled plan {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            SaloError::HeadCountMismatch { expected, got } => {
                write!(f, "expected {expected} heads, got {got}")
            }
            SaloError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            SaloError::UnknownSession { session } => {
                write!(f, "unknown decode session {session}")
            }
            SaloError::SessionInUse { session } => {
                write!(f, "decode session id {session} is already live")
            }
            SaloError::Unsupported { engine, reason } => {
                write!(f, "engine '{engine}' cannot serve the request: {reason}")
            }
            SaloError::ResponseMismatch { got } => {
                write!(f, "engine answered with mismatched response variant {got}")
            }
            SaloError::Pattern(e) => write!(f, "pattern error: {e}"),
            SaloError::Scheduler(e) => write!(f, "scheduler error: {e}"),
            SaloError::Sim(e) => write!(f, "simulator error: {e}"),
            SaloError::Kernel(e) => write!(f, "kernel error: {e}"),
            SaloError::Fixed(e) => write!(f, "fixed-point error: {e}"),
        }
    }
}

impl Error for SaloError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SaloError::Pattern(e) => Some(e),
            SaloError::Scheduler(e) => Some(e),
            SaloError::Sim(e) => Some(e),
            SaloError::Kernel(e) => Some(e),
            SaloError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_impl {
    ($source:ty, $variant:ident) => {
        impl From<$source> for SaloError {
            fn from(e: $source) -> Self {
                SaloError::$variant(e)
            }
        }
    };
}

from_impl!(PatternError, Pattern);
from_impl!(SchedulerError, Scheduler);
from_impl!(SimError, Sim);
from_impl!(KernelError, Kernel);
from_impl!(FixedError, Fixed);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SaloError = PatternError::EmptySequence.into();
        assert!(e.source().is_some());
        let e: SaloError = SchedulerError::EmptyPlan.into();
        assert!(e.to_string().contains("scheduler"));
        let e = SaloError::ShapeMismatch { expected: (8, 4), got: (8, 2) };
        assert!(e.to_string().contains("8x2"));
        let e = SaloError::HeadCountMismatch { expected: 12, got: 3 };
        assert!(e.to_string().contains("12"));
    }
}
