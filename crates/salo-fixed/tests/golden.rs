//! Golden-value tests for the fixed-point datapath: hand-computed reference
//! points for the exponential LUT, the Newton–Raphson reciprocal unit, and
//! Eq. 2 partial-row merging.
//!
//! Unlike the property tests these pin exact, human-auditable values, so a
//! regression in the arithmetic shows up as "exp(1) is wrong", not as a
//! statistical drift.

use salo_fixed::{merge_partials, ExpLut, PartialRow, RecipUnit, EXP_FRAC};

/// Q.19 encoding used by the stage-5 accumulator.
fn q19(v: f64) -> i64 {
    (v * (1u64 << 19) as f64).round() as i64
}

#[test]
fn exp_lut_matches_f32_exp_on_golden_points() {
    // 32 segments over [-8, 8]: segment width 0.5. The chord of exp over a
    // width-w segment over-estimates by at most ~w^2/8 relative, ≈ 3.2%.
    let lut = ExpLut::new(32);
    let golden: &[f64] = &[-8.0, -4.0, -2.0, -1.0, -0.25, 0.0, 0.25, 1.0, 2.0, 4.0, 7.5];
    for &x in golden {
        let approx = lut.eval_f64(x);
        let exact = f64::from((x as f32).exp());
        let rel = (approx - exact).abs() / exact.max(1e-2);
        assert!(rel < 0.033, "exp({x}): lut {approx} vs f32 {exact} (rel {rel})");
    }
}

#[test]
fn exp_lut_is_exact_at_segment_endpoints() {
    // The construction interpolates exp exactly at segment endpoints; only
    // Q.16/Q.18 quantization of intercept and slope remains.
    let lut = ExpLut::new(32);
    for &x in &[-1.0f64, -0.5, 0.0, 0.5, 1.0, 1.5, 2.0] {
        let approx = lut.eval_f64(x);
        let exact = x.exp();
        assert!(
            (approx - exact).abs() < 2e-3 * exact.max(1.0),
            "exp({x}) at endpoint: {approx} vs {exact}"
        );
    }
}

#[test]
fn exp_lut_known_fixed_point_values() {
    let lut = ExpLut::new(32);
    // exp(0) = 1.0 -> Q.16 raw 65536 (x = 0 sits on a segment boundary).
    let one = lut.eval_q8(0);
    assert!((one - 65536).abs() <= 66, "exp(0) raw {one}");
    // exp(-8) = 0.000335 -> Q.16 raw ≈ 22. The chord over [-8, -7.5]
    // over-estimates small exponentials; it must stay tiny and non-negative.
    let tiny = lut.eval_q8(-8 * 256);
    assert!((0..=400).contains(&tiny), "exp(-8) raw {tiny}");
    // Saturation: inputs beyond the domain clamp to the endpoint values.
    assert_eq!(lut.eval_q8(-10_000), lut.eval_q8(-8 * 256));
    assert_eq!(lut.eval_q8(10_000), lut.eval_q8(8 * 256));
}

#[test]
fn exp_lut_more_segments_reduce_error() {
    let coarse = ExpLut::new(8).max_relative_error();
    let default = ExpLut::new(32).max_relative_error();
    let fine = ExpLut::new(128).max_relative_error();
    assert!(default < coarse, "32 segments ({default}) vs 8 ({coarse})");
    assert!(fine < default, "128 segments ({fine}) vs 32 ({default})");
    // The paper-default configuration keeps the softmax-relevant relative
    // error under the 5% the property tests advertise (measured: ~3.2%,
    // the chord error of the right-most segment).
    assert!(default < 0.05, "default LUT error {default}");
}

#[test]
fn recip_unit_matches_inverse_on_golden_points() {
    let unit = RecipUnit::new(64);
    // (raw, frac, exact 1/x)
    let golden: &[(i64, u32, f64)] = &[
        (1 << 16, 16, 1.0),       // 1/1
        (2 << 16, 16, 0.5),       // 1/2
        (3 << 16, 16, 1.0 / 3.0), // 1/3: non-terminating binary fraction
        (7, 0, 1.0 / 7.0),        // integer domain
        (100 << 16, 16, 0.01),    // two decades down
        (655_360_000, 16, 1e-4),  // 1/10000
        (1, 16, 65536.0),         // smallest positive Q.16 value
    ];
    for &(raw, frac, exact) in golden {
        let r = unit.recip(raw, frac).expect("positive input");
        let approx = r.to_f64();
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 1e-3, "1/({raw} * 2^-{frac}): {approx} vs {exact} (rel {rel})");
    }
}

#[test]
fn recip_newton_steps_square_the_error() {
    // One Newton–Raphson iteration (y <- y(2 - my)) roughly squares the
    // relative error of the raw table lookup.
    let raw_err = RecipUnit::with_entries(16, 0).expect("unit").max_relative_error();
    let one_step = RecipUnit::with_entries(16, 1).expect("unit").max_relative_error();
    assert!(raw_err > 1e-3, "raw 16-entry table should be coarse, got {raw_err}");
    assert!(one_step < raw_err * raw_err * 4.0 + 1e-4, "{one_step} vs raw {raw_err}");
    assert!(one_step < 1e-3, "one Newton step: {one_step}");
}

#[test]
fn recip_rejects_non_positive() {
    let unit = RecipUnit::new(64);
    assert!(unit.recip(0, EXP_FRAC).is_err());
    assert!(unit.recip(-5, EXP_FRAC).is_err());
}

#[test]
fn merge_partials_golden_three_way() {
    // Hand-computed Eq. 2 case: weights 1, 2, 5 with scalar outputs
    // 1.0, -1.0, 3.0. Exact merged output:
    //   (1*1 + 2*(-1) + 5*3) / (1 + 2 + 5) = 14/8 = 1.75
    let recip = RecipUnit::new(64);
    let parts = [
        PartialRow { weight_q16: 1 << 16, out_q19: vec![q19(1.0)] },
        PartialRow { weight_q16: 2 << 16, out_q19: vec![q19(-1.0)] },
        PartialRow { weight_q16: 5 << 16, out_q19: vec![q19(3.0)] },
    ];
    let left = merge_partials(
        &merge_partials(&parts[0], &parts[1], &recip).expect("ab"),
        &parts[2],
        &recip,
    )
    .expect("(ab)c");
    let right = merge_partials(
        &parts[0],
        &merge_partials(&parts[1], &parts[2], &recip).expect("bc"),
        &recip,
    )
    .expect("a(bc)");

    for m in [&left, &right] {
        assert!((m.to_f64()[0] - 1.75).abs() < 0.02, "merged {:?}", m.to_f64());
        assert_eq!(m.weight_q16, 8 << 16, "total weight is exact integer arithmetic");
    }
    // Associativity: both association orders agree within merge rounding.
    assert!((left.to_f64()[0] - right.to_f64()[0]).abs() < 0.02);
}

#[test]
fn merge_partials_golden_multi_column() {
    // Weights 3 and 1; rows [8, -4] and [0, 4]:
    //   col0: (3*8 + 1*0)/4 = 6.0
    //   col1: (3*(-4) + 1*4)/4 = -2.0
    let recip = RecipUnit::new(64);
    let a = PartialRow { weight_q16: 3 << 16, out_q19: vec![q19(8.0), q19(-4.0)] };
    let b = PartialRow { weight_q16: 1 << 16, out_q19: vec![q19(0.0), q19(4.0)] };
    let m = merge_partials(&a, &b, &recip).expect("merge");
    let out = m.to_f64();
    assert!((out[0] - 6.0).abs() < 0.05, "col0 {out:?}");
    assert!((out[1] - -2.0).abs() < 0.05, "col1 {out:?}");
}

#[test]
fn merge_partials_identity_and_commutativity() {
    let recip = RecipUnit::new(64);
    let a = PartialRow { weight_q16: 9 << 16, out_q19: vec![q19(2.5)] };
    let e = PartialRow::empty(1);
    assert_eq!(merge_partials(&a, &e, &recip).expect("a+e"), a);
    assert_eq!(merge_partials(&e, &a, &recip).expect("e+a"), a);

    let b = PartialRow { weight_q16: 4 << 16, out_q19: vec![q19(-1.25)] };
    let ab = merge_partials(&a, &b, &recip).expect("ab");
    let ba = merge_partials(&b, &a, &recip).expect("ba");
    assert_eq!(ab.weight_q16, ba.weight_q16);
    assert!((ab.to_f64()[0] - ba.to_f64()[0]).abs() < 0.01);
}
