//! Property tests for the fixed-point datapath primitives.

use proptest::prelude::*;
use salo_fixed::{
    fixed_softmax, merge_partials, ExpLut, Fix16x8, Fix8x4, PartialRow, RecipUnit, EXP_FRAC,
    PROB_ONE,
};

proptest! {
    /// Quantization round trip never moves a value by more than half an
    /// LSB inside the representable range.
    #[test]
    fn fix8x4_round_trip(x in -7.9f32..7.9) {
        let q = Fix8x4::from_f32(x);
        prop_assert!((q.to_f32() - x).abs() <= 0.03125 + 1e-6);
    }

    /// Saturating arithmetic is ordered and never wraps.
    #[test]
    fn saturating_ops_never_wrap(a in any::<i8>(), b in any::<i8>()) {
        let (fa, fb) = (Fix8x4::from_raw(a), Fix8x4::from_raw(b));
        let sum = fa.saturating_add(fb).to_f32();
        let exact = fa.to_f32() + fb.to_f32();
        prop_assert!((sum - exact.clamp(Fix8x4::MIN.to_f32(), Fix8x4::MAX.to_f32())).abs() < 1e-6);
        let prod = fa.saturating_mul(fb).to_f32();
        let exactp = (fa.to_f32() * fb.to_f32())
            .clamp(Fix8x4::MIN.to_f32(), Fix8x4::MAX.to_f32());
        // Truncation toward zero plus saturation: within one LSB.
        prop_assert!((prod - exactp).abs() <= Fix8x4::resolution() + 1e-6);
    }

    /// The exponential LUT stays within its advertised relative error on
    /// random in-domain points.
    #[test]
    fn exp_lut_tracks_exp(x in -8.0f64..8.0) {
        let lut = ExpLut::new(32);
        let approx = lut.eval_f64(x);
        let exact = x.exp();
        let rel = (approx - exact).abs() / exact.max(1e-2);
        prop_assert!(rel < 0.05, "x {x}: {approx} vs {exact}");
    }

    /// The reciprocal unit is accurate across six decades.
    #[test]
    fn recip_accurate(raw in 1i64..1_000_000_000) {
        let unit = RecipUnit::new(64);
        let r = unit.recip(raw, EXP_FRAC).expect("positive");
        let approx = r.to_f64();
        let exact = 65536.0 / raw as f64;
        prop_assert!(((approx - exact) / exact).abs() < 2e-3, "raw {raw}");
    }

    /// Fixed softmax outputs are valid probabilities summing to ~1.
    #[test]
    fn softmax_is_a_distribution(
        scores in prop::collection::vec(-2048i32..2048, 1..64)
    ) {
        let exp = ExpLut::new(32);
        let recip = RecipUnit::new(64);
        let probs = fixed_softmax(&scores, &exp, &recip).expect("softmax");
        let total: f64 = probs.iter().map(|&p| p as f64 / PROB_ONE as f64).sum();
        prop_assert!((total - 1.0).abs() < 0.02, "sum {total}");
        prop_assert!(probs.iter().all(|&p| p <= PROB_ONE));
    }

    /// Eq. 2 merging matches exact f64 renormalization on random parts.
    #[test]
    fn merge_matches_f64(
        w1 in 1i64..1_000_000,
        w2 in 1i64..1_000_000,
        o1 in -6.0f64..6.0,
        o2 in -6.0f64..6.0,
    ) {
        let recip = RecipUnit::new(64);
        let q19 = |v: f64| (v * (1u64 << 19) as f64).round() as i64;
        let a = PartialRow { weight_q16: w1, out_q19: vec![q19(o1)] };
        let b = PartialRow { weight_q16: w2, out_q19: vec![q19(o2)] };
        let m = merge_partials(&a, &b, &recip).expect("merge");
        let exact = (w1 as f64 * o1 + w2 as f64 * o2) / (w1 + w2) as f64;
        prop_assert!((m.to_f64()[0] - exact).abs() < 0.02, "{} vs {exact}", m.to_f64()[0]);
        prop_assert_eq!(m.weight_q16, w1 + w2);
    }

    /// Output conversion rounds to nearest within half an output LSB.
    #[test]
    fn q19_conversion_accurate(acc in -4_000_000i64..4_000_000) {
        let out = Fix16x8::from_q19_acc(acc);
        let exact = acc as f64 / (1u64 << 19) as f64;
        prop_assert!((out.to_f64() - exact).abs() <= 0.5 / 256.0 + 1e-9);
    }
}
