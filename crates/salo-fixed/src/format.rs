//! Q-format fixed-point storage types.
//!
//! Each type is a transparent wrapper over an integer with an implied binary
//! point: `value = raw / 2^FRAC`. Conversions from `f32` round to nearest
//! and saturate at the representable range — the behaviour of the
//! quantization hardware in front of SALO's buffers.

/// Declares a fixed-point wrapper type.
macro_rules! fixed_type {
    (
        $(#[$doc:meta])*
        $name:ident, $raw:ty, $wide:ty, $frac:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) $raw);

        impl $name {
            /// Number of fraction bits.
            pub const FRAC: u32 = $frac;
            /// Scale factor `2^FRAC`.
            pub const SCALE: f32 = (1u64 << $frac) as f32;
            /// Largest representable value.
            pub const MAX: $name = $name(<$raw>::MAX);
            /// Smallest representable value.
            pub const MIN: $name = $name(<$raw>::MIN);
            /// Zero.
            pub const ZERO: $name = $name(0);
            /// One.
            pub const ONE: $name = $name(1 << $frac);

            /// Creates a value from its raw bit representation.
            #[must_use]
            pub const fn from_raw(raw: $raw) -> Self {
                Self(raw)
            }

            /// The raw bit representation.
            #[must_use]
            pub const fn raw(self) -> $raw {
                self.0
            }

            /// Quantizes an `f32`, rounding to nearest and saturating.
            #[must_use]
            pub fn from_f32(value: f32) -> Self {
                let scaled = (value * Self::SCALE).round();
                if scaled >= <$raw>::MAX as f32 {
                    Self::MAX
                } else if scaled <= <$raw>::MIN as f32 {
                    Self::MIN
                } else {
                    Self(scaled as $raw)
                }
            }

            /// Converts back to `f32` (exact: the mantissa always fits).
            #[must_use]
            pub fn to_f32(self) -> f32 {
                self.0 as f32 / Self::SCALE
            }

            /// Converts to `f64`.
            #[must_use]
            pub fn to_f64(self) -> f64 {
                self.0 as f64 / Self::SCALE as f64
            }

            /// Saturating addition.
            #[must_use]
            pub fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction.
            #[must_use]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Saturating fixed-point multiplication (same format).
            #[must_use]
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let wide = (self.0 as $wide * rhs.0 as $wide) >> $frac;
                if wide > <$raw>::MAX as $wide {
                    Self::MAX
                } else if wide < <$raw>::MIN as $wide {
                    Self::MIN
                } else {
                    Self(wide as $raw)
                }
            }

            /// The quantization step (value of one LSB).
            #[must_use]
            pub const fn resolution() -> f32 {
                1.0 / Self::SCALE
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }

        impl From<$name> for f32 {
            fn from(v: $name) -> f32 {
                v.to_f32()
            }
        }
    };
}

fixed_type!(
    /// 8-bit fixed point with 4 fraction bits — SALO's input format for
    /// query, key and value elements ("8 bits, 4 bits for fraction", §6.4).
    /// Range: `[-8.0, 7.9375]`, resolution `1/16`.
    Fix8x4,
    i8,
    i32,
    4
);

fixed_type!(
    /// 16-bit fixed point with 8 fraction bits — SALO's output format
    /// ("the output of SALO is in 16 bits", §6.4).
    /// Range: `[-128.0, 127.996]`, resolution `1/256`.
    Fix16x8,
    i16,
    i64,
    8
);

fixed_type!(
    /// 32-bit accumulator with 8 fraction bits — the Q.8 domain of scores,
    /// exponentials and row sums inside the PE array.
    Fix32x8,
    i32,
    i64,
    8
);

impl Fix16x8 {
    /// Converts a Q.19 stage-5 accumulator value to the 16-bit output
    /// format, rounding to nearest and saturating — the conversion at the
    /// PE row's output port.
    #[must_use]
    pub fn from_q19_acc(acc: i64) -> Self {
        let shifted = (acc + (1 << 10)) >> 11; // 19 - 8 = 11 bits
        if shifted > i16::MAX as i64 {
            Self::MAX
        } else if shifted < i16::MIN as i64 {
            Self::MIN
        } else {
            Self::from_raw(shifted as i16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Fix8x4::FRAC, 4);
        assert_eq!(Fix8x4::ONE.raw(), 16);
        assert_eq!(Fix16x8::ONE.raw(), 256);
        assert!((Fix8x4::resolution() - 0.0625).abs() < f32::EPSILON);
    }

    #[test]
    fn f32_round_trip_on_grid() {
        for raw in i8::MIN..=i8::MAX {
            let v = Fix8x4::from_raw(raw);
            assert_eq!(Fix8x4::from_f32(v.to_f32()), v);
        }
    }

    #[test]
    fn rounding_to_nearest() {
        // 0.03 * 16 = 0.48 -> 0; 0.04 * 16 = 0.64 -> 1
        assert_eq!(Fix8x4::from_f32(0.03).raw(), 0);
        assert_eq!(Fix8x4::from_f32(0.04).raw(), 1);
        assert_eq!(Fix8x4::from_f32(-0.04).raw(), -1);
    }

    #[test]
    fn saturation_at_range_edges() {
        assert_eq!(Fix8x4::from_f32(100.0), Fix8x4::MAX);
        assert_eq!(Fix8x4::from_f32(-100.0), Fix8x4::MIN);
        assert_eq!(Fix8x4::MAX.saturating_add(Fix8x4::ONE), Fix8x4::MAX);
        assert_eq!(Fix8x4::MIN.saturating_sub(Fix8x4::ONE), Fix8x4::MIN);
        assert_eq!(Fix16x8::from_f32(1e9), Fix16x8::MAX);
    }

    #[test]
    fn range_of_input_format_matches_paper() {
        // Q4.4-style: [-8, 7.9375]
        assert!((Fix8x4::MIN.to_f32() + 8.0).abs() < f32::EPSILON);
        assert!((Fix8x4::MAX.to_f32() - 7.9375).abs() < f32::EPSILON);
    }

    #[test]
    fn multiplication() {
        let a = Fix8x4::from_f32(1.5);
        let b = Fix8x4::from_f32(2.0);
        assert!((a.saturating_mul(b).to_f32() - 3.0).abs() < f32::EPSILON);
        // Saturates instead of wrapping.
        let big = Fix8x4::from_f32(7.9);
        assert_eq!(big.saturating_mul(big), Fix8x4::MAX);
        let neg = Fix8x4::from_f32(-7.9);
        assert_eq!(neg.saturating_mul(big), Fix8x4::MIN);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fix8x4::from_f32(1.5).to_string(), "1.5");
        assert_eq!(format!("{:?}", Fix8x4::ZERO), "Fix8x4(0)");
    }

    #[test]
    fn f32_conversion_trait() {
        let x: f32 = Fix16x8::from_f32(3.25).into();
        assert!((x - 3.25).abs() < f32::EPSILON);
    }
}
