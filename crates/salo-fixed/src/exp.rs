//! Piecewise-linear exponential unit (pipeline stage 2).
//!
//! SALO follows Softermax: `exp(x)` is approximated by a piecewise-linear
//! function whose slopes and y-intercepts live in two lookup tables indexed
//! by the segment of `x`; the evaluation itself is one MAC
//! (`y = slope * x + intercept`), reusing the PE's multiplier (§5.1,
//! stage 2). This module builds the tables at configuration time and
//! evaluates them with pure integer arithmetic.
//!
//! Scores enter in Q.8; exponentials leave in Q.16 ([`EXP_FRAC`]) so that
//! the small values produced by strongly negative scores remain
//! representable — their relative weight in the softmax depends on it.

use crate::FixedError;

/// Fraction bits of exponential outputs and row sums (Q.16).
pub const EXP_FRAC: u32 = 16;

/// Number of fraction bits used to store segment slopes.
const SLOPE_FRAC: u32 = 18;

/// The piecewise-linear `exp` lookup table.
///
/// Input is Q.8 fixed point (raw = value × 256); output is Q.16. The input
/// domain is `[-8, +8]`; values outside are clamped, mirroring hardware
/// saturation. The number of segments is configurable (32 in the default
/// SALO configuration) and trades LUT area against accuracy — the
/// `bench_ablations` benchmark sweeps it.
#[derive(Debug, Clone)]
pub struct ExpLut {
    segments: usize,
    x_lo: f64,
    x_hi: f64,
    /// Domain bounds in the Q.8 input format, precomputed at build time.
    lo_raw: i64,
    hi_raw: i64,
    /// When the Q.8 segment width `span / segments` is an exact power of
    /// two (true for the default `[-8, 8]` domain at any power-of-two
    /// segment count), segment indexing reduces to this right shift —
    /// bit-identical to the division, without the per-score `div`.
    index_shift: Option<u32>,
    /// Per-segment slope in Q.18 (value units out per unit in).
    slopes: Vec<i64>,
    /// Per-segment y-intercept in Q.16.
    intercepts: Vec<i64>,
}

impl ExpLut {
    /// Default input domain lower bound.
    pub const X_LO: f64 = -8.0;
    /// Default input domain upper bound.
    pub const X_HI: f64 = 8.0;

    /// Builds a LUT with `segments` linear segments over `[-8, 8]`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`; use [`ExpLut::with_segments`] for a
    /// fallible constructor.
    #[must_use]
    pub fn new(segments: usize) -> Self {
        Self::with_segments(segments).expect("segments must be non-zero")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::EmptyLut`] if `segments == 0`.
    pub fn with_segments(segments: usize) -> Result<Self, FixedError> {
        Self::with_domain(segments, Self::X_LO, Self::X_HI)
    }

    /// Builds a LUT over a custom domain `[x_lo, x_hi]`.
    ///
    /// Each segment interpolates `exp` exactly at its endpoints, which keeps
    /// the approximation continuous and slightly over-estimating (chord
    /// above a convex function) — the same construction Softermax uses.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::EmptyLut`] if `segments == 0` or the domain is
    /// empty.
    pub fn with_domain(segments: usize, x_lo: f64, x_hi: f64) -> Result<Self, FixedError> {
        if segments == 0 || x_hi <= x_lo {
            return Err(FixedError::EmptyLut);
        }
        let width = (x_hi - x_lo) / segments as f64;
        let mut slopes = Vec::with_capacity(segments);
        let mut intercepts = Vec::with_capacity(segments);
        let scale = f64::from(1u32 << EXP_FRAC);
        for s in 0..segments {
            let x0 = x_lo + s as f64 * width;
            let x1 = x0 + width;
            let (y0, y1) = (x0.exp(), x1.exp());
            let slope = (y1 - y0) / width;
            let intercept = y0 - slope * x0;
            slopes.push((slope * f64::from(1u32 << SLOPE_FRAC)).round() as i64);
            intercepts.push((intercept * scale).round() as i64);
        }
        let lo_raw = (x_lo * 256.0) as i64;
        let hi_raw = (x_hi * 256.0) as i64;
        let span = hi_raw - lo_raw;
        // A domain narrower than one Q.8 step collapses to zero raw span:
        // every input would clamp to the same point and the fallback index
        // division would divide by zero. Reject it like an empty domain.
        if span <= 0 {
            return Err(FixedError::EmptyLut);
        }
        // floor(u * segments / span) == u >> k exactly when span ==
        // segments << k: the division by `segments * 2^k` cancels the
        // multiplication and leaves the shift.
        let index_shift = (span % segments as i64 == 0)
            .then(|| span / segments as i64)
            .filter(|w| w.count_ones() == 1)
            .map(|w| w.trailing_zeros());
        Ok(Self { segments, x_lo, x_hi, lo_raw, hi_raw, index_shift, slopes, intercepts })
    }

    /// Number of segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Size of the two LUTs in bits (slope + intercept, 32 bits each per
    /// segment), for area modelling.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.segments * (32 + 32)
    }

    /// Segment index of a clamped raw input: floor((x - lo) * segments /
    /// (hi - lo)), reduced to a right shift when the Q.8 segment width is
    /// a power of two, clamped so the domain's upper endpoint lands in the
    /// last segment.
    #[inline]
    fn segment_index(&self, x: i64) -> usize {
        let idx = match self.index_shift {
            Some(shift) => ((x - self.lo_raw) >> shift) as usize,
            None => self.segment_index_by_division(x),
        };
        idx.min(self.segments - 1)
    }

    /// The division form of the index computation — the fallback for
    /// non-power-of-two segment widths, and the reference the shift fast
    /// path is asserted against (both paths must agree on every segment,
    /// the last one included).
    #[inline]
    fn segment_index_by_division(&self, x: i64) -> usize {
        let span = self.hi_raw - self.lo_raw;
        ((x - self.lo_raw) * self.segments as i64 / span) as usize
    }

    /// Evaluates `exp(x)` for a Q.8 input, returning a Q.16 output.
    ///
    /// Inputs outside the domain are clamped to its endpoints; the result
    /// is always non-negative.
    #[inline]
    #[must_use]
    pub fn eval_q8(&self, x_raw: i32) -> i64 {
        let x = (x_raw as i64).clamp(self.lo_raw, self.hi_raw);
        let idx = self.segment_index(x);
        // y = slope * x + intercept:
        // slope Q.18 * x Q.8 -> Q.26, shift by 10 to reach Q.16.
        let y = ((self.slopes[idx] * x) >> (SLOPE_FRAC + 8 - EXP_FRAC)) + self.intercepts[idx];
        y.max(0)
    }

    /// Evaluates `exp` over a whole row of Q.8 scores into `out`
    /// (cleared first), returning the Q.16 row sum — pipeline stages 2+3
    /// in one sweep.
    ///
    /// Bit-identical to mapping [`eval_q8`](Self::eval_q8) over the row
    /// and summing left to right: the arithmetic per element is the same;
    /// the `index_shift` dispatch is hoisted out of the loop and the sum
    /// is folded in a second sweep (integer addition is exact, so the
    /// regrouping cannot change the result), leaving each body a
    /// branch-free slice sweep with no loop-carried state that the
    /// autovectorizer can widen — including the table gathers (pinned by
    /// a full-raw-range golden test and the simulator's oracle proptests).
    #[inline]
    pub fn eval_q8_sum_into(&self, scores_q8: &[i32], out: &mut Vec<i64>) -> i64 {
        out.clear();
        out.reserve(scores_q8.len());
        let last = self.segments - 1;
        match self.index_shift {
            Some(shift) => {
                out.extend(scores_q8.iter().map(|&s| {
                    let x = i64::from(s).clamp(self.lo_raw, self.hi_raw);
                    let idx = (((x - self.lo_raw) >> shift) as usize).min(last);
                    let y = ((self.slopes[idx] * x) >> (SLOPE_FRAC + 8 - EXP_FRAC))
                        + self.intercepts[idx];
                    y.max(0)
                }));
            }
            None => {
                let span = self.hi_raw - self.lo_raw;
                out.extend(scores_q8.iter().map(|&s| {
                    let x = i64::from(s).clamp(self.lo_raw, self.hi_raw);
                    let idx =
                        ((((x - self.lo_raw) * self.segments as i64) / span) as usize).min(last);
                    let y = ((self.slopes[idx] * x) >> (SLOPE_FRAC + 8 - EXP_FRAC))
                        + self.intercepts[idx];
                    y.max(0)
                }));
            }
        }
        out.iter().sum()
    }

    /// Evaluates `exp(x)` from an `f64`, via the fixed-point path
    /// (convenience for tests and error studies).
    #[must_use]
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.eval_q8((x * 256.0).round() as i32) as f64 / f64::from(1u32 << EXP_FRAC)
    }

    /// Maximum relative error against `f64::exp` sampled on the Q.8 grid
    /// over the domain. Errors are measured relative to
    /// `max(exp(x), 1e-2)`: a numerator below 0.01 contributes under a
    /// percent of probability mass next to O(1) competitors, so errors
    /// there are immaterial — matching how Softermax assesses its
    /// approximation.
    #[must_use]
    pub fn max_relative_error(&self) -> f64 {
        let lo = (self.x_lo * 256.0) as i32;
        let hi = (self.x_hi * 256.0) as i32;
        let mut worst = 0.0f64;
        let mut x = lo;
        while x <= hi {
            let approx = self.eval_q8(x) as f64 / f64::from(1u32 << EXP_FRAC);
            let exact = (x as f64 / 256.0).exp();
            let rel = (approx - exact).abs() / exact.max(1e-2);
            if rel > worst {
                worst = rel;
            }
            x += 8; // sample every 1/32
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_configurations() {
        assert!(ExpLut::with_segments(0).is_err());
        assert!(ExpLut::with_domain(4, 1.0, 1.0).is_err());
        assert!(ExpLut::with_domain(4, 2.0, 1.0).is_err());
    }

    #[test]
    fn rejects_domains_narrower_than_one_q8_step() {
        // A sub-LSB domain collapses to zero raw span; building it used to
        // arm a division-by-zero in the fallback index path on the first
        // evaluation. It must be rejected at construction instead.
        assert!(matches!(ExpLut::with_domain(4, 0.0001, 0.002), Err(FixedError::EmptyLut)));
        assert!(matches!(ExpLut::with_domain(8, -0.001, 0.0), Err(FixedError::EmptyLut)));
        // One full Q.8 step is the smallest buildable domain, and it must
        // evaluate without panicking at both endpoints.
        let lut = ExpLut::with_domain(2, 0.0, 1.0 / 256.0).unwrap();
        assert!(lut.eval_q8(0) > 0);
        assert!(lut.eval_q8(1) > 0);
    }

    #[test]
    fn index_paths_agree_on_every_boundary_segment() {
        // Power-of-two width with a non-power-of-two segment count: the
        // shift fast path applies (width 3072/24 = 128 = 2^7) and must
        // agree with the division fallback everywhere, last segment
        // included.
        let lut = ExpLut::with_domain(24, -6.0, 6.0).unwrap();
        assert!(lut.index_shift.is_some(), "width 128 should take the shift path");
        for x in lut.lo_raw..=lut.hi_raw {
            let by_shift = lut.segment_index(x);
            let by_div = lut.segment_index_by_division(x).min(lut.segments - 1);
            assert_eq!(by_shift, by_div, "paths disagree at raw {x}");
        }
        // The exact upper endpoint belongs to the last segment on both
        // paths (the raw index overflows to `segments` and is clamped).
        assert_eq!(lut.segment_index(lut.hi_raw), lut.segments - 1);
        assert_eq!(lut.segment_index_by_division(lut.hi_raw), lut.segments);

        // Non-power-of-two width (4096/24 is fractional): only the
        // division path exists, and it must stay in range at the ends.
        let lut = ExpLut::with_domain(24, -8.0, 8.0).unwrap();
        assert!(lut.index_shift.is_none());
        assert_eq!(lut.segment_index(lut.lo_raw), 0);
        assert_eq!(lut.segment_index(lut.hi_raw), lut.segments - 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The shift fast path and the division fallback agree on the
        /// segment of every representable raw input — in-domain,
        /// out-of-domain (clamped) and at both endpoints — for every
        /// configuration where the fast path is available.
        #[test]
        fn index_shift_matches_division_across_raw_range(
            segs_log2 in 1u32..8,
            half_domain in 1i32..9,
            x_raw in -4096i32..4097,
        ) {
            let segments = 1usize << segs_log2;
            let lut = ExpLut::with_domain(segments, -f64::from(half_domain), f64::from(half_domain))
                .expect("valid domain");
            prop_assume!(lut.index_shift.is_some());
            let x = (i64::from(x_raw)).clamp(lut.lo_raw, lut.hi_raw);
            let by_shift = lut.segment_index(x);
            let by_div = lut.segment_index_by_division(x).min(lut.segments - 1);
            prop_assert_eq!(by_shift, by_div);
            prop_assert!(by_shift < lut.segments);
            // And the evaluation built on it stays total and non-negative.
            prop_assert!(lut.eval_q8(x_raw) >= 0);
        }
    }

    #[test]
    fn slice_eval_golden_matches_scalar_across_full_raw_range() {
        // The chunked row evaluation must reproduce the scalar
        // `eval_q8` bit for bit on every representable raw input —
        // in-domain, out-of-domain (clamped) and at both endpoints — on
        // both index paths (shift fast path and division fallback), and
        // its returned sum must equal the left-to-right fold.
        let shift_lut = ExpLut::new(32);
        assert!(shift_lut.index_shift.is_some());
        let div_lut = ExpLut::with_domain(24, -8.0, 8.0).unwrap();
        assert!(div_lut.index_shift.is_none());
        for lut in [&shift_lut, &div_lut] {
            let lo = (lut.lo_raw - 300) as i32;
            let hi = (lut.hi_raw + 300) as i32;
            let scores: Vec<i32> = (lo..=hi).collect();
            let mut row = Vec::new();
            let sum = lut.eval_q8_sum_into(&scores, &mut row);
            let scalar: Vec<i64> = scores.iter().map(|&s| lut.eval_q8(s)).collect();
            assert_eq!(row, scalar, "chunked row eval diverged from scalar eval_q8");
            assert_eq!(sum, scalar.iter().sum::<i64>());
        }
        // Reuse clears the previous contents.
        let mut row = vec![99i64; 4];
        let sum = shift_lut.eval_q8_sum_into(&[0], &mut row);
        assert_eq!(row.len(), 1);
        assert_eq!(sum, shift_lut.eval_q8(0));
    }

    #[test]
    fn exact_at_zero_neighbourhood() {
        let lut = ExpLut::new(32);
        let y = lut.eval_f64(0.0);
        assert!((y - 1.0).abs() < 0.02, "exp(0) ~ {y}");
    }

    #[test]
    fn default_32_segments_under_four_percent_error() {
        // Chord interpolation with segment width 0.5 bounds the relative
        // error by h^2/8 ~ 3.1%.
        let lut = ExpLut::new(32);
        let err = lut.max_relative_error();
        assert!(err < 0.04, "max relative error {err}");
    }

    #[test]
    fn more_segments_reduce_error() {
        let coarse = ExpLut::new(8).max_relative_error();
        let fine = ExpLut::new(64).max_relative_error();
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
        assert!(fine < 0.01, "64 segments should be under 1%: {fine}");
    }

    #[test]
    fn clamps_out_of_domain_inputs() {
        let lut = ExpLut::new(32);
        let below = lut.eval_q8(-100 * 256);
        let at_lo = lut.eval_q8(-8 * 256);
        assert_eq!(below, at_lo);
        let above = lut.eval_q8(100 * 256);
        let at_hi = lut.eval_q8(8 * 256);
        assert_eq!(above, at_hi);
    }

    #[test]
    fn monotone_nondecreasing_on_grid() {
        let lut = ExpLut::new(32);
        let mut prev = -1i64;
        let mut x = -8 * 256;
        while x <= 8 * 256 {
            let y = lut.eval_q8(x);
            // Allow 1 LSB of slack at segment boundaries (table rounding).
            assert!(y + 1 >= prev, "non-monotone at {x}: {y} after {prev}");
            prev = y;
            x += 16;
        }
    }

    #[test]
    fn small_values_remain_representable() {
        let lut = ExpLut::new(32);
        // exp(-7) = 0.000912: must be nonzero in Q.16 (raw ~60).
        let y = lut.eval_q8(-7 * 256);
        assert!(y > 0, "exp(-7) flushed to zero");
        let approx = y as f64 / 65536.0;
        assert!((approx - (-7.0f64).exp()).abs() < 5e-4, "approx {approx}");
    }

    #[test]
    fn output_is_nonnegative_everywhere() {
        let lut = ExpLut::new(4); // coarse: intercepts could dip negative
        let mut x = -8 * 256;
        while x <= 8 * 256 {
            assert!(lut.eval_q8(x) >= 0);
            x += 1;
        }
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(ExpLut::new(32).storage_bits(), 32 * 64);
    }

    #[test]
    fn eval_f64_round_trips_scale() {
        let lut = ExpLut::new(64);
        assert!((lut.eval_f64(1.0) - 1f64.exp()).abs() / 1f64.exp() < 0.02);
        assert!((lut.eval_f64(-3.0) - (-3f64).exp()).abs() < 0.05);
    }
}
