//! Fixed-point softmax: the per-row computation of pipeline stages 2–4.
//!
//! Given a row of Q.8 scores, a PE row (a) evaluates the piecewise-linear
//! exponential of each score, (b) accumulates the exponentials left to
//! right, (c) inverts the sum once with the reciprocal unit, and
//! (d) multiplies each exponential by the broadcast inverse to obtain Q.15
//! probabilities. This module packages that sequence so the simulator, the
//! golden reference kernel and the quantization study share one
//! bit-deterministic implementation.

use crate::{ExpLut, FixedError, Recip, RecipUnit};

/// Fraction bits of the probability format (Q.15).
pub const PROB_FRAC: u32 = 15;

/// Raw representation of probability 1.0.
pub const PROB_ONE: u16 = 1 << PROB_FRAC;

/// Computes a fixed-point softmax over Q.8 scores, returning Q.15
/// probabilities, exactly as the PE row datapath does.
///
/// # Errors
///
/// Returns [`FixedError::EmptySoftmaxRow`] for an empty row, or
/// [`FixedError::NonPositiveReciprocal`] if every exponential underflows to
/// zero (scores far below the LUT domain).
pub fn fixed_softmax(
    scores_q8: &[i32],
    exp: &ExpLut,
    recip: &RecipUnit,
) -> Result<Vec<u16>, FixedError> {
    let (probs, _, _) = fixed_softmax_parts(scores_q8, exp, recip)?;
    Ok(probs)
}

/// Like [`fixed_softmax`] but also returns the row weight `W = Σ exp(S_ij)`
/// (Q.16) and the reciprocal used — the quantities the weighted-sum module
/// needs for renormalization across window splits (Eq. 2 of the paper).
///
/// # Errors
///
/// Same as [`fixed_softmax`].
pub fn fixed_softmax_parts(
    scores_q8: &[i32],
    exp: &ExpLut,
    recip: &RecipUnit,
) -> Result<(Vec<u16>, i64, Recip), FixedError> {
    let mut exps = Vec::with_capacity(scores_q8.len());
    let mut probs = Vec::with_capacity(scores_q8.len());
    let (sum, inv) = fixed_softmax_parts_into(scores_q8, exp, recip, &mut exps, &mut probs)?;
    Ok((probs, sum, inv))
}

/// The buffered form of [`fixed_softmax_parts`]: writes the exponentials
/// and probabilities into caller-owned buffers (cleared first) instead of
/// allocating. This is the execution hot path's entry point — one PE row's
/// stages 2–4 with zero heap traffic once the buffers have grown to the
/// row length.
///
/// # Errors
///
/// Same as [`fixed_softmax`].
pub fn fixed_softmax_parts_into(
    scores_q8: &[i32],
    exp: &ExpLut,
    recip: &RecipUnit,
    exps: &mut Vec<i64>,
    probs: &mut Vec<u16>,
) -> Result<(i64, Recip), FixedError> {
    if scores_q8.is_empty() {
        return Err(FixedError::EmptySoftmaxRow);
    }
    // Stage 2 + 3: exponentials (Q.16) over the whole row in one chunked
    // sweep (bit-identical to per-element `eval_q8` accumulated left to
    // right), then one reciprocal.
    let sum = exp.eval_q8_sum_into(scores_q8, exps);
    let inv = recip.recip(sum, crate::exp::EXP_FRAC)?;
    // Stage 4: broadcast multiply.
    probs.clear();
    probs.extend(exps.iter().map(|&e| inv.scale_to_prob(e, crate::exp::EXP_FRAC)));
    Ok((sum, inv))
}

/// Exact `f64` softmax (numerically stabilized), the reference the fixed
/// datapath is compared against.
#[must_use]
pub fn softmax_f64(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Evaluates the fixed-point softmax on `f64` scores (quantizing them to
/// Q.8 first) and returns `f64` probabilities — convenience for error
/// studies.
///
/// # Errors
///
/// Same as [`fixed_softmax`].
pub fn fixed_softmax_f64(
    scores: &[f64],
    exp: &ExpLut,
    recip: &RecipUnit,
) -> Result<Vec<f64>, FixedError> {
    let q8: Vec<i32> = scores.iter().map(|&s| (s * 256.0).round() as i32).collect();
    let probs = fixed_softmax(&q8, exp, recip)?;
    Ok(probs.iter().map(|&p| p as f64 / PROB_ONE as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units() -> (ExpLut, RecipUnit) {
        (ExpLut::new(32), RecipUnit::new(64))
    }

    #[test]
    fn empty_row_is_an_error() {
        let (e, r) = units();
        assert!(matches!(fixed_softmax(&[], &e, &r), Err(FixedError::EmptySoftmaxRow)));
    }

    #[test]
    fn uniform_scores_give_uniform_probs() {
        let (e, r) = units();
        let probs = fixed_softmax(&[256; 8], &e, &r).unwrap();
        for &p in &probs {
            assert!((p as f64 / PROB_ONE as f64 - 0.125).abs() < 2e-3, "p {p}");
        }
    }

    #[test]
    fn matches_f64_softmax_within_tolerance() {
        let (e, r) = units();
        let scores = vec![0.5, -1.25, 2.0, 0.0, 1.5, -3.0];
        let approx = fixed_softmax_f64(&scores, &e, &r).unwrap();
        let exact = softmax_f64(&scores);
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn probabilities_sum_close_to_one() {
        let (e, r) = units();
        let scores: Vec<i32> = (-20..20).map(|k| k * 32).collect();
        let probs = fixed_softmax(&scores, &e, &r).unwrap();
        let total: f64 = probs.iter().map(|&p| p as f64 / PROB_ONE as f64).sum();
        assert!((total - 1.0).abs() < 0.01, "sum {total}");
    }

    #[test]
    fn parts_expose_row_weight() {
        let (e, r) = units();
        let scores = vec![0, 0, 0, 0];
        let (_, w, inv) = fixed_softmax_parts(&scores, &e, &r).unwrap();
        // Four exp(0) ~ 4.0 in Q.16.
        assert!((w as f64 / 65536.0 - 4.0).abs() < 0.1, "W {w}");
        // inv is 1/W in value terms: inv * (w / 2^16) ~ 1... inv already
        // accounts for the fraction bits, so check the product via probs.
        let p = inv.scale_to_prob(w, 16);
        assert!((p as f64 / 32768.0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn deeply_negative_single_score_still_normalizes() {
        let (e, r) = units();
        // exp(-8) in Q.16 is small but nonzero, so a singleton row yields
        // probability one.
        let probs = fixed_softmax(&[-100 * 256], &e, &r).unwrap();
        assert!((probs[0] as f64 / PROB_ONE as f64 - 1.0).abs() < 0.05, "p {:?}", probs);
    }

    #[test]
    fn softmax_f64_is_stable_for_large_scores() {
        let p = softmax_f64(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(softmax_f64(&[]).is_empty());
    }

    #[test]
    fn argmax_preserved() {
        let (e, r) = units();
        let scores = vec![-2.0, 0.3, 3.1, 1.0];
        let approx = fixed_softmax_f64(&scores, &e, &r).unwrap();
        let exact = softmax_f64(&scores);
        let am = |v: &[f64]| v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        assert_eq!(am(&approx), am(&exact));
    }
}
