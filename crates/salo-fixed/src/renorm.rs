//! The weighted-sum module's renormalization arithmetic (§4.2 / §5.3).
//!
//! Window splitting divides one query's attention row into parts `T_1, T_2,
//! ...`; each part yields a locally-normalized output `output_i^k` and a
//! weight `W_k = Σ_{j∈T_k} exp(S_ij)`. Equation 2 of the paper recovers the
//! unsplit result:
//!
//! ```text
//! output_i = W_1/(W_1+W_2) * output_i^1 + W_2/(W_1+W_2) * output_i^2
//! ```
//!
//! The hardware realizes this with two multipliers and one adder per PE row,
//! plus the shared reciprocal unit for `1/(W_1+W_2)`. This module implements
//! the same arithmetic on Q-format integers so the simulator and tests agree
//! bit for bit. Weights live in the Q.16 exponential domain
//! ([`crate::ExpLut`] outputs), outputs in the Q.19 stage-5 accumulator
//! format.

use crate::exp::EXP_FRAC;
use crate::{FixedError, RecipUnit};

/// A partially-computed output row: the locally-normalized stage-5 output
/// (Q.19 elements) together with its softmax weight `W` (Q.16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialRow {
    /// Row weight `W = Σ exp(S_ij)` over this part, Q.16.
    pub weight_q16: i64,
    /// Locally-normalized output elements, Q.19.
    pub out_q19: Vec<i64>,
}

impl PartialRow {
    /// An identity element for merging: zero weight, zero output.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        Self { weight_q16: 0, out_q19: vec![0; dim] }
    }

    /// Whether this partial carries no mass.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weight_q16 == 0
    }

    /// Output as `f64` values.
    #[must_use]
    pub fn to_f64(&self) -> Vec<f64> {
        self.out_q19.iter().map(|&o| o as f64 / (1u64 << 19) as f64).collect()
    }
}

/// Computes the Q.15 blend weights `W1/(W1+W2)` and `W2/(W1+W2)` from Q.16
/// row weights.
///
/// # Errors
///
/// Returns [`FixedError::NonPositiveReciprocal`] if both weights are zero.
pub fn merge_weights(
    w1_q16: i64,
    w2_q16: i64,
    recip: &RecipUnit,
) -> Result<(u16, u16), FixedError> {
    let inv = recip.recip(w1_q16 + w2_q16, EXP_FRAC)?;
    Ok((inv.scale_to_prob(w1_q16, EXP_FRAC), inv.scale_to_prob(w2_q16, EXP_FRAC)))
}

/// Merges `part` into `acc` per Eq. 2, in place: `acc` becomes the partial
/// with weight `W_acc + W_part`. Merging an empty partial is the identity
/// in either direction (the module's initialization behaviour), and the
/// arithmetic is bit-identical to [`merge_partials`] — the hardware has one
/// pair of multipliers per weighted-sum module, and this is it.
///
/// This is the execution hot path's form: the caller owns the accumulator
/// and no intermediate row is allocated.
///
/// # Errors
///
/// Returns [`FixedError::PartialLengthMismatch`] if the rows have different
/// dimensions.
pub fn merge_partials_into(
    acc: &mut PartialRow,
    part: &PartialRow,
    recip: &RecipUnit,
) -> Result<(), FixedError> {
    if acc.out_q19.len() != part.out_q19.len() {
        return Err(FixedError::PartialLengthMismatch {
            expected: acc.out_q19.len(),
            actual: part.out_q19.len(),
        });
    }
    // Precedence matches merge_partials exactly — an empty *accumulator*
    // takes the part's value (even a zero-weight part, whose output can be
    // nonzero when a coarse exp LUT clamps to 0), an empty part is then
    // the identity.
    if acc.is_empty() {
        acc.weight_q16 = part.weight_q16;
        acc.out_q19.copy_from_slice(&part.out_q19);
        return Ok(());
    }
    if part.is_empty() {
        return Ok(());
    }
    let (alpha, beta) = merge_weights(acc.weight_q16, part.weight_q16, recip)?;
    // Blend weights are at most 2^15, so outputs below 2^46 blend exactly
    // in i64 (products < 2^61, sum < 2^62) — every datapath value. The
    // narrow and wide paths round identically whenever the narrow one
    // applies, so the choice can be made per chunk in a single pass: one
    // check + one blend per cache line, with the common all-narrow case a
    // pure slice sweep the autovectorizer handles. Bit-identical to a
    // whole-row (or per-element) choice.
    const BLEND_I64_SAFE: u64 = 1 << 46;
    const BLEND_CHUNK: usize = 8;
    for (ca, cb) in acc.out_q19.chunks_mut(BLEND_CHUNK).zip(part.out_q19.chunks(BLEND_CHUNK)) {
        let narrow = ca.iter().zip(cb).all(|(&oa, &ob)| {
            oa.unsigned_abs() < BLEND_I64_SAFE && ob.unsigned_abs() < BLEND_I64_SAFE
        });
        if narrow {
            for (oa, &ob) in ca.iter_mut().zip(cb) {
                *oa = (*oa * i64::from(alpha) + ob * i64::from(beta)) >> 15;
            }
        } else {
            for (oa, &ob) in ca.iter_mut().zip(cb) {
                *oa = ((*oa as i128 * i128::from(alpha) + ob as i128 * i128::from(beta)) >> 15)
                    as i64;
            }
        }
    }
    acc.weight_q16 += part.weight_q16;
    Ok(())
}

/// Merges two partial rows per Eq. 2, returning a partial with weight
/// `W1 + W2`. Merging with an empty partial returns the other operand
/// unchanged (the module's initialization behaviour).
///
/// Thin allocating wrapper over [`merge_partials_into`].
///
/// # Errors
///
/// Returns [`FixedError::PartialLengthMismatch`] if the rows have different
/// dimensions.
pub fn merge_partials(
    a: &PartialRow,
    b: &PartialRow,
    recip: &RecipUnit,
) -> Result<PartialRow, FixedError> {
    let mut acc = a.clone();
    merge_partials_into(&mut acc, b, recip)?;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PROB_ONE;

    fn recip() -> RecipUnit {
        RecipUnit::new(64)
    }

    fn q19(values: &[f64]) -> Vec<i64> {
        values.iter().map(|&v| (v * (1u64 << 19) as f64).round() as i64).collect()
    }

    #[test]
    fn equal_weights_average() {
        let a = PartialRow { weight_q16: 131072, out_q19: q19(&[1.0, 2.0]) };
        let b = PartialRow { weight_q16: 131072, out_q19: q19(&[3.0, 4.0]) };
        let m = merge_partials(&a, &b, &recip()).unwrap();
        let out = m.to_f64();
        assert!((out[0] - 2.0).abs() < 0.01, "{out:?}");
        assert!((out[1] - 3.0).abs() < 0.01);
        assert_eq!(m.weight_q16, 262144);
    }

    #[test]
    fn skewed_weights() {
        // W1 = 3, W2 = 1 -> 0.75/0.25 blend.
        let a = PartialRow { weight_q16: 3 << 16, out_q19: q19(&[4.0]) };
        let b = PartialRow { weight_q16: 1 << 16, out_q19: q19(&[0.0]) };
        let m = merge_partials(&a, &b, &recip()).unwrap();
        assert!((m.to_f64()[0] - 3.0).abs() < 0.02);
    }

    #[test]
    fn empty_is_identity() {
        let a = PartialRow { weight_q16: 100, out_q19: q19(&[1.5, -2.5]) };
        let e = PartialRow::empty(2);
        assert!(e.is_empty());
        assert_eq!(merge_partials(&a, &e, &recip()).unwrap(), a);
        assert_eq!(merge_partials(&e, &a, &recip()).unwrap(), a);
    }

    #[test]
    fn both_empty_short_circuits() {
        let e = PartialRow::empty(3);
        let m = merge_partials(&e, &e, &recip()).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn length_mismatch_detected() {
        let a = PartialRow { weight_q16: 10, out_q19: vec![0; 3] };
        let b = PartialRow { weight_q16: 10, out_q19: vec![0; 4] };
        assert!(matches!(
            merge_partials(&a, &b, &recip()),
            Err(FixedError::PartialLengthMismatch { expected: 3, actual: 4 })
        ));
    }

    #[test]
    fn merge_weights_sum_to_about_one() {
        let (alpha, beta) = merge_weights(7 << 16, 3 << 16, &recip()).unwrap();
        let total = alpha as i32 + beta as i32;
        assert!((total - PROB_ONE as i32).abs() <= 64, "alpha {alpha} beta {beta}");
        assert!((alpha as f64 / PROB_ONE as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn matches_eq2_against_floating_point() {
        // Reference: out = (W1*o1 + W2*o2)/(W1+W2) in f64.
        let cases = [
            (1i64 << 16, 4i64 << 16, [0.5, -1.0], [2.0, 3.0]),
            (64 << 16, 1 << 16, [7.0, 7.0], [-7.0, 0.0]),
            (100 << 8, 100 << 8, [0.0, 0.0], [1.0, -1.0]),
        ];
        for (w1, w2, o1, o2) in cases {
            let a = PartialRow { weight_q16: w1, out_q19: q19(&o1) };
            let b = PartialRow { weight_q16: w2, out_q19: q19(&o2) };
            let m = merge_partials(&a, &b, &recip()).unwrap().to_f64();
            for k in 0..2 {
                let exact = (w1 as f64 * o1[k] + w2 as f64 * o2[k]) / (w1 as f64 + w2 as f64);
                assert!((m[k] - exact).abs() < 0.02, "{} vs {}", m[k], exact);
            }
        }
    }

    #[test]
    fn merge_into_empty_identity_both_sides() {
        let a = PartialRow { weight_q16: 100, out_q19: q19(&[1.5, -2.5]) };
        let e = PartialRow::empty(2);
        // Empty part: accumulator unchanged.
        let mut acc = a.clone();
        merge_partials_into(&mut acc, &e, &recip()).unwrap();
        assert_eq!(acc, a);
        // Empty accumulator: takes the part's value.
        let mut acc = PartialRow::empty(2);
        merge_partials_into(&mut acc, &a, &recip()).unwrap();
        assert_eq!(acc, a);
        // Both empty: still empty.
        let mut acc = PartialRow::empty(2);
        merge_partials_into(&mut acc, &PartialRow::empty(2), &recip()).unwrap();
        assert!(acc.is_empty());
    }

    #[test]
    fn merge_into_bit_matches_allocating_merge() {
        // Fold a chain of partials both ways; every intermediate must be
        // bit-identical, since the hot path replaces the allocating form.
        let parts: Vec<PartialRow> =
            [(3i64 << 16, 1.0f64), (5 << 16, -2.0), (0, 0.0), (2 << 16, 4.0), (8 << 16, 0.5)]
                .iter()
                .map(|&(w, v)| PartialRow { weight_q16: w, out_q19: q19(&[v, -v]) })
                .collect();
        let r = recip();
        let mut acc = PartialRow::empty(2);
        let mut reference = PartialRow::empty(2);
        for p in &parts {
            reference = merge_partials(&reference, p, &r).unwrap();
            merge_partials_into(&mut acc, p, &r).unwrap();
            assert_eq!(acc, reference);
        }
    }

    #[test]
    fn zero_weight_part_into_empty_accumulator_takes_its_output() {
        // An empty accumulator adopts even a zero-weight part's output —
        // the exact precedence of the allocating merge (a coarse exp LUT
        // can clamp a part's weight to zero while stage 5 still wrote v).
        let part = PartialRow { weight_q16: 0, out_q19: q19(&[1.0, -2.0]) };
        let mut acc = PartialRow::empty(2);
        merge_partials_into(&mut acc, &part, &recip()).unwrap();
        assert_eq!(acc, part);
        assert_eq!(merge_partials(&PartialRow::empty(2), &part, &recip()).unwrap(), part);
        // On a non-empty accumulator the same part is the identity.
        let a = PartialRow { weight_q16: 5 << 16, out_q19: q19(&[0.5, 0.5]) };
        let mut acc = a.clone();
        merge_partials_into(&mut acc, &part, &recip()).unwrap();
        assert_eq!(acc, a);
    }

    #[test]
    fn merge_into_length_mismatch_detected() {
        let mut acc = PartialRow { weight_q16: 10, out_q19: vec![0; 3] };
        let b = PartialRow { weight_q16: 10, out_q19: vec![0; 4] };
        assert!(matches!(
            merge_partials_into(&mut acc, &b, &recip()),
            Err(FixedError::PartialLengthMismatch { expected: 3, actual: 4 })
        ));
    }

    #[test]
    fn chunked_blend_matches_wide_reference_on_mixed_magnitudes() {
        // A row where some chunks fit the narrow i64 blend and others
        // exceed 2^46: the per-chunk choice must agree, bit for bit, with
        // blending every element on the wide i128 path (exact for the
        // fitting values too).
        let r = recip();
        let dim = 19; // crosses chunk boundaries with a remainder
        let big = 1i64 << 50;
        let a_vals: Vec<i64> = (0..dim)
            .map(|e| if e % 7 == 3 { big + e as i64 } else { (e as i64 - 9) << 20 })
            .collect();
        let b_vals: Vec<i64> = (0..dim)
            .map(|e| if e % 5 == 1 { -big - e as i64 } else { (9 - e as i64) << 21 })
            .collect();
        let w1 = 5i64 << 16;
        let w2 = 3i64 << 16;
        let mut acc = PartialRow { weight_q16: w1, out_q19: a_vals.clone() };
        let part = PartialRow { weight_q16: w2, out_q19: b_vals.clone() };
        merge_partials_into(&mut acc, &part, &r).unwrap();
        let (alpha, beta) = merge_weights(w1, w2, &r).unwrap();
        let wide: Vec<i64> = a_vals
            .iter()
            .zip(&b_vals)
            .map(|(&oa, &ob)| {
                ((oa as i128 * i128::from(alpha) + ob as i128 * i128::from(beta)) >> 15) as i64
            })
            .collect();
        assert_eq!(acc.out_q19, wide);
        assert_eq!(acc.weight_q16, w1 + w2);
    }

    #[test]
    fn merge_is_associative_within_tolerance() {
        let parts: Vec<PartialRow> =
            [(3i64 << 16, 1.0f64), (5 << 16, -2.0), (2 << 16, 4.0), (8 << 16, 0.5)]
                .iter()
                .map(|&(w, v)| PartialRow { weight_q16: w, out_q19: q19(&[v]) })
                .collect();
        let r = recip();
        // Left fold.
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left = merge_partials(&left, p, &r).unwrap();
        }
        // Pairwise tree.
        let ab = merge_partials(&parts[0], &parts[1], &r).unwrap();
        let cd = merge_partials(&parts[2], &parts[3], &r).unwrap();
        let tree = merge_partials(&ab, &cd, &r).unwrap();
        assert!((left.to_f64()[0] - tree.to_f64()[0]).abs() < 0.02);
        assert_eq!(left.weight_q16, tree.weight_q16);
    }
}
