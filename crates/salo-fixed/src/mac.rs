//! The PE's multiply-accumulate primitives.
//!
//! Each SALO PE contains one fixed-point MAC reused across all five pipeline
//! stages (§5.1). Two accumulation flavours appear in the datapath:
//!
//! * **stage 1** (`Q x K^T`, output stationary): 8-bit Q.4 operands,
//!   products carry 8 fraction bits and accumulate in a 32-bit register —
//!   [`qk_mac`];
//! * **stage 5** (`S' x V`, weight stationary): a Q.15 probability times a
//!   Q.4 value element, accumulated with 19 fraction bits — [`sv_mac`].
//!
//! Both saturate rather than wrap, and report saturation so simulations can
//! flag numerically degenerate configurations.

use crate::format::Fix8x4;

/// Whether a MAC chain saturated at any point.
///
/// Hardware saturation silently clips; the simulator records it so tests and
/// experiments can verify configurations stay within range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacSaturation {
    /// Number of saturating accumulations observed.
    pub events: u64,
}

impl MacSaturation {
    /// True if any accumulation saturated.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.events > 0
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: MacSaturation) {
        self.events += other.events;
    }
}

/// One stage-1 MAC: `acc += q * k` where `q`/`k` are Q.4 inputs and `acc`
/// is a 32-bit accumulator with 8 fraction bits. Saturates on overflow.
#[inline]
#[must_use]
pub fn qk_mac(acc: i32, q: Fix8x4, k: Fix8x4, sat: &mut MacSaturation) -> i32 {
    let product = q.raw() as i32 * k.raw() as i32; // exact, 8 frac bits
    match acc.checked_add(product) {
        Some(v) => v,
        None => {
            sat.events += 1;
            if product > 0 {
                i32::MAX
            } else {
                i32::MIN
            }
        }
    }
}

/// One stage-5 MAC: `acc += prob * v` where `prob` is a Q.15 probability
/// (raw `0..=32768`) and `v` a Q.4 value element; `acc` carries 19 fraction
/// bits. Saturates on overflow.
#[inline]
#[must_use]
pub fn sv_mac(acc: i64, prob: u16, v: Fix8x4, sat: &mut MacSaturation) -> i64 {
    let product = prob as i64 * v.raw() as i64; // 15 + 4 = 19 frac bits
    match acc.checked_add(product) {
        Some(v) => v,
        None => {
            sat.events += 1;
            if product > 0 {
                i64::MAX
            } else {
                i64::MIN
            }
        }
    }
}

/// Largest head dimension for which a stage-1 dot product provably cannot
/// saturate: each product's magnitude is at most `128 * 128 = 2^14`, so
/// any accumulation of up to this many terms stays inside `i32`.
pub const QK_DOT_SAFE_DIM: usize = (i32::MAX / (128 * 128)) as usize;

/// A full stage-1 dot product between a query row and a key row, as the PE
/// performs it: element by element in index order.
///
/// For dimensions up to [`QK_DOT_SAFE_DIM`] (every realistic head — the
/// bound is above 131 000) no accumulation step can overflow, so the
/// per-step saturation check of [`qk_mac`] reduces to a plain sum: a
/// straight-line fold the autovectorizer widens into `i8 x i8 -> i32`
/// multiply-accumulate lanes (manually pre-chunked variants measured
/// *slower* — the plain fold is the form LLVM handles best). Larger
/// dimensions fall back to the checked per-step form.
#[inline]
#[must_use]
pub fn qk_dot(q: &[Fix8x4], k: &[Fix8x4], sat: &mut MacSaturation) -> i32 {
    debug_assert_eq!(q.len(), k.len(), "query/key dimension mismatch");
    if q.len() <= QK_DOT_SAFE_DIM {
        let mut acc = 0i32;
        for (&qe, &ke) in q.iter().zip(k) {
            acc += i32::from(qe.raw()) * i32::from(ke.raw());
        }
        acc
    } else {
        let mut acc = 0i32;
        for (&qe, &ke) in q.iter().zip(k) {
            acc = qk_mac(acc, qe, ke, sat);
        }
        acc
    }
}

/// One stage-5 accumulation over a whole output row: `out[e] += prob *
/// v[e]` for every element, as the weight-stationary flow performs it.
///
/// Bit-identical to folding [`sv_mac`] element-wise whenever every
/// accumulator has at least `2^22` of headroom to the `i64` limits — true
/// for any chain that started from zero and has performed fewer than
/// `2^41` accumulations, i.e. every datapath use (a debug assertion
/// enforces it). Skipping the per-step saturation check lets the row
/// loop vectorize.
///
/// # Panics
///
/// Panics if `out` and `v` have different lengths.
#[inline]
pub fn sv_row_mac(out: &mut [i64], prob: u16, v: &[Fix8x4]) {
    assert_eq!(out.len(), v.len(), "output/value dimension mismatch");
    for (o, &ve) in out.iter_mut().zip(v) {
        debug_assert!(
            o.unsigned_abs() <= (i64::MAX as u64) - (1 << 22),
            "stage-5 accumulator out of headroom"
        );
        *o += i64::from(prob) * i64::from(ve.raw());
    }
}

/// Largest key count per output part for which the whole stage-5
/// accumulation chain fits a 32-bit register: every `prob * v` product has
/// magnitude at most `2^15 * 2^7 = 2^22`.
pub const SV_I32_SAFE_KEYS: usize = (i32::MAX >> 22) as usize;

/// Stage-5 accumulation over a whole output row into a 32-bit accumulator:
/// `out[e] += prob * v[e]`.
///
/// For chains of at most [`SV_I32_SAFE_KEYS`] keys starting from zero, no
/// step can leave `i32`, so this is bit-identical to the `i64` form of
/// [`sv_row_mac`] (widen the result afterwards) while vectorizing at twice
/// the lane width. Callers must bound the chain length; a debug assertion
/// checks the headroom.
///
/// # Panics
///
/// Panics if `out` and `v` have different lengths.
#[inline]
pub fn sv_row_mac_i32(out: &mut [i32], prob: u16, v: &[Fix8x4]) {
    assert_eq!(out.len(), v.len(), "output/value dimension mismatch");
    for (o, &ve) in out.iter_mut().zip(v) {
        debug_assert!(
            o.unsigned_abs() <= (i32::MAX as u32) - (1 << 22),
            "stage-5 i32 accumulator out of headroom"
        );
        *o += i32::from(prob) * i32::from(ve.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qk_mac_matches_float() {
        let mut sat = MacSaturation::default();
        let q = Fix8x4::from_f32(1.5);
        let k = Fix8x4::from_f32(-2.25);
        let acc = qk_mac(0, q, k, &mut sat);
        // 1.5 * -2.25 = -3.375; Q.8 raw = -864
        assert_eq!(acc, -864);
        assert!((acc as f32 / 256.0 + 3.375).abs() < f32::EPSILON);
        assert!(!sat.saturated());
    }

    #[test]
    fn qk_dot_order_is_deterministic() {
        let mut sat = MacSaturation::default();
        let q: Vec<Fix8x4> = [1.0, 2.0, 3.0].iter().map(|&x| Fix8x4::from_f32(x)).collect();
        let k: Vec<Fix8x4> = [0.5, -0.5, 1.0].iter().map(|&x| Fix8x4::from_f32(x)).collect();
        let acc = qk_dot(&q, &k, &mut sat);
        // 0.5 - 1.0 + 3.0 = 2.5 -> raw 640
        assert_eq!(acc, 640);
    }

    #[test]
    fn qk_mac_saturates_instead_of_wrapping() {
        let mut sat = MacSaturation::default();
        let q = Fix8x4::MAX;
        let acc = qk_mac(i32::MAX - 1, q, q, &mut sat);
        assert_eq!(acc, i32::MAX);
        assert!(sat.saturated());
        let acc = qk_mac(i32::MIN + 1, Fix8x4::MIN, Fix8x4::MAX, &mut sat);
        assert_eq!(acc, i32::MIN);
        assert_eq!(sat.events, 2);
    }

    #[test]
    fn sv_mac_scale() {
        let mut sat = MacSaturation::default();
        // prob = 0.5 (Q.15 raw 16384), v = 2.0 (raw 32): product value 1.0
        let acc = sv_mac(0, 16384, Fix8x4::from_f32(2.0), &mut sat);
        assert_eq!(acc, 1 << 19);
        assert!(!sat.saturated());
    }

    #[test]
    fn sv_mac_saturates() {
        let mut sat = MacSaturation::default();
        let acc = sv_mac(i64::MAX - 1, u16::MAX, Fix8x4::MAX, &mut sat);
        assert_eq!(acc, i64::MAX);
        assert!(sat.saturated());
    }

    #[test]
    fn saturation_merge() {
        let mut a = MacSaturation { events: 2 };
        a.merge(MacSaturation { events: 3 });
        assert_eq!(a.events, 5);
    }

    #[test]
    fn worst_case_dot_product_fits_i32() {
        // d = 128 extreme elements cannot overflow the Q.8 i32 accumulator.
        let mut sat = MacSaturation::default();
        let q = vec![Fix8x4::MIN; 128];
        let k = vec![Fix8x4::MAX; 128];
        let _ = qk_dot(&q, &k, &mut sat);
        assert!(!sat.saturated());
    }

    /// The checked per-step fold — the reference the chunked fast path is
    /// pinned against at the overflow boundary.
    fn qk_dot_checked(q: &[Fix8x4], k: &[Fix8x4], sat: &mut MacSaturation) -> i32 {
        let mut acc = 0i32;
        for (&qe, &ke) in q.iter().zip(k) {
            acc = qk_mac(acc, qe, ke, sat);
        }
        acc
    }

    #[test]
    fn qk_dot_at_safe_dim_boundary_matches_checked_path() {
        // Exactly at QK_DOT_SAFE_DIM the chunked fast path applies and the
        // worst-case sum (every product +2^14) is 131071 * 16384 =
        // i32::MAX - 16383: no wrap, no saturation, bit-identical to the
        // checked fold.
        let q = vec![Fix8x4::MIN; QK_DOT_SAFE_DIM];
        let k = vec![Fix8x4::MIN; QK_DOT_SAFE_DIM];
        let mut fast_sat = MacSaturation::default();
        let fast = qk_dot(&q, &k, &mut fast_sat);
        let mut ref_sat = MacSaturation::default();
        let reference = qk_dot_checked(&q, &k, &mut ref_sat);
        assert_eq!(fast, reference);
        assert_eq!(fast, 131_071 * 16_384);
        assert_eq!(fast_sat.events, ref_sat.events);
        assert!(!fast_sat.saturated());

        // Mixed-sign data at the boundary dimension too.
        let q: Vec<Fix8x4> = (0..QK_DOT_SAFE_DIM)
            .map(|i| Fix8x4::from_raw(((i as i64 * 37 + 11) % 255 - 127) as i8))
            .collect();
        let k: Vec<Fix8x4> = (0..QK_DOT_SAFE_DIM)
            .map(|i| Fix8x4::from_raw(((i as i64 * 53 + 5) % 255 - 127) as i8))
            .collect();
        let mut fast_sat = MacSaturation::default();
        let mut ref_sat = MacSaturation::default();
        assert_eq!(qk_dot(&q, &k, &mut fast_sat), qk_dot_checked(&q, &k, &mut ref_sat));
        assert_eq!(fast_sat.events, 0);
        assert_eq!(ref_sat.events, 0);
    }

    #[test]
    fn qk_dot_one_past_safe_dim_takes_checked_path_and_saturates() {
        // One past the bound the worst-case sum exceeds i32::MAX, so
        // qk_dot must route to the checked fold: it saturates (once, on
        // the final step) instead of wrapping, and agrees with the
        // reference fold including the event count.
        let dim = QK_DOT_SAFE_DIM + 1;
        let q = vec![Fix8x4::MIN; dim];
        let k = vec![Fix8x4::MIN; dim];
        let mut sat = MacSaturation::default();
        let acc = qk_dot(&q, &k, &mut sat);
        let mut ref_sat = MacSaturation::default();
        let reference = qk_dot_checked(&q, &k, &mut ref_sat);
        assert_eq!(acc, reference);
        assert_eq!(acc, i32::MAX);
        assert_eq!(sat.events, ref_sat.events);
        assert_eq!(sat.events, 1);
    }

    #[test]
    fn sv_row_mac_i32_full_safe_chain_matches_i64_form() {
        // A full SV_I32_SAFE_KEYS-long chain of extreme products, run in
        // the narrow i32 accumulator against the i64 form: both agree bit
        // for bit and nothing wraps.
        let d = 5;
        let prob = PROB_ONE_TEST;
        let v = vec![Fix8x4::MIN; d];
        let mut narrow = vec![0i32; d];
        let mut wide = vec![0i64; d];
        for _ in 0..SV_I32_SAFE_KEYS {
            sv_row_mac_i32(&mut narrow, prob, &v);
            sv_row_mac(&mut wide, prob, &v);
        }
        assert!(narrow.iter().zip(&wide).all(|(&b, &w)| i64::from(b) == w));
        // The chain really is at the edge: magnitude 511 * 2^22, inside
        // i32 by 16383.
        assert_eq!(i64::from(narrow[0]), -(SV_I32_SAFE_KEYS as i64) * (1 << 22));
    }

    /// Probability 1.0 raw value, kept local to avoid a crate-level import
    /// cycle in tests.
    const PROB_ONE_TEST: u16 = 1 << 15;
}
