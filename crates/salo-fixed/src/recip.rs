//! Normalized reciprocal unit (pipeline stage 3).
//!
//! SALO avoids per-PE dividers: the softmax denominator is inverted *once*
//! per row at the right edge of the PE array and the inverse is broadcast
//! back (§5.1, stage 3: "the circuits of divider is complex, causing
//! significant cycle time and area costs"). The PE diagram shows the
//! implementation: normalize the operand to `m ∈ [1, 2)` with a shifter,
//! look up `1/m` in a small table ("LUT Frac" + "Shift" + "Inv"), and refine
//! with one Newton–Raphson step so a small table suffices.

use crate::FixedError;

/// A normalized reciprocal: `1/x = mant / 2^15 * 2^exp2` with
/// `mant ∈ [2^14, 2^15]` (i.e. `1/m ∈ [0.5, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recip {
    /// Mantissa of the reciprocal in Q.15 (`16384..=32768`).
    pub mant: u32,
    /// Binary exponent: `1/x = mant * 2^(exp2 - 15)`.
    pub exp2: i32,
}

impl Recip {
    /// The reciprocal as `f64` (for tests and error studies).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.mant as f64 * ((self.exp2 - 15) as f64).exp2()
    }

    /// Multiplies a non-negative fixed-point value (`frac` fraction bits)
    /// by this reciprocal, returning a Q.15 probability clamped to
    /// `[0, 32768]`.
    ///
    /// This is the stage-4 operation: `S'_ij = exp(S_ij) * (Σ exp)^-1`,
    /// where both operands live in the Q.16 exponential domain.
    #[inline]
    #[must_use]
    pub fn scale_to_prob(self, raw: i64, frac: u32) -> u16 {
        debug_assert!(raw >= 0, "exponentials are non-negative");
        // value * 2^-frac * mant * 2^(exp2-15) * 2^15 = value * mant * 2^(exp2-frac)
        let shift = self.exp2 - frac as i32;
        if shift < 0 && raw < (1 << 47) {
            // mant < 2^16 and raw < 2^47: the product is i64-exact, and a
            // right shift of 63+ of a non-negative value is 0 either way —
            // bit-identical to the wide path below, without the i128 ops.
            let prob = (raw * self.mant as i64) >> (-shift).min(63);
            return prob.clamp(0, 32768) as u16;
        }
        let wide = raw as i128 * self.mant as i128;
        let prob = if shift >= 0 {
            wide.checked_shl(shift as u32).unwrap_or(i128::MAX)
        } else {
            wide >> (-shift) as u32
        };
        prob.clamp(0, 32768) as u16
    }
}

/// The reciprocal lookup-table unit.
///
/// `entries` controls the table size (64 in the default configuration);
/// one Newton–Raphson iteration (`y <- y * (2 - m*y)`) doubles the accuracy
/// of the raw table, exactly as a hardware implementation would.
#[derive(Debug, Clone)]
pub struct RecipUnit {
    entries: usize,
    /// Q.15 approximations of `1/m` for `m` at each table point in `[1, 2)`.
    table: Vec<u32>,
    newton_steps: u32,
}

impl RecipUnit {
    /// Builds a reciprocal unit with `entries` table entries and one Newton
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`; use [`RecipUnit::with_entries`] to handle
    /// the error.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Self::with_entries(entries, 1).expect("entries must be non-zero")
    }

    /// Fallible constructor with a configurable Newton-step count.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::EmptyLut`] if `entries == 0`.
    pub fn with_entries(entries: usize, newton_steps: u32) -> Result<Self, FixedError> {
        if entries == 0 {
            return Err(FixedError::EmptyLut);
        }
        let table = (0..entries)
            .map(|i| {
                // Table point at the segment midpoint for balanced error.
                let m = 1.0 + (i as f64 + 0.5) / entries as f64;
                ((1.0 / m) * 32768.0).round() as u32
            })
            .collect();
        Ok(Self { entries, table, newton_steps })
    }

    /// Number of table entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Table storage in bits (16-bit entries), for area modelling.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.entries * 16
    }

    /// Computes the reciprocal of a positive value given as raw fixed point
    /// with `frac` fraction bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NonPositiveReciprocal`] for `raw <= 0`.
    pub fn recip(&self, raw: i64, frac: u32) -> Result<Recip, FixedError> {
        if raw <= 0 {
            return Err(FixedError::NonPositiveReciprocal { raw });
        }
        // Normalize: raw = m * 2^e with m in [1, 2) as Q.15.
        // bits = floor(log2 raw); mantissa in Q.15 is raw * 2^(15 - bits).
        let bits = 63 - raw.leading_zeros() as i32;
        let m_q15 =
            if bits >= 15 { (raw >> (bits - 15)) as u64 } else { (raw << (15 - bits)) as u64 };
        debug_assert!((32768..65536).contains(&m_q15), "m {m_q15}");
        // Table lookup on the fractional part of m.
        let frac_part = m_q15 - 32768; // in [0, 32768)
        let idx = (frac_part as usize * self.entries) >> 15;
        // Q.15 approximation of 1/m from the table.
        let mut y = self.table[idx.min(self.entries - 1)] as u64;
        // Newton iterations: y <- y * (2 - m*y), all Q.15.
        for _ in 0..self.newton_steps {
            let my = (m_q15 * y) >> 15; // Q.15
            let two_minus = (2u64 << 15).saturating_sub(my);
            y = (y * two_minus) >> 15;
        }
        // 1/raw = (1/m) * 2^-e, with raw in units of 2^-frac:
        // 1/x = 1/(raw * 2^-frac) = (1/m) * 2^(frac - e)
        Ok(Recip { mant: y.clamp(1, 65535) as u32, exp2: frac as i32 - bits })
    }

    /// Maximum relative error of `recip` sampled over several decades.
    #[must_use]
    pub fn max_relative_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for raw in (1..4096u64).chain((1..64).map(|k| k * 65536)) {
            let r = self.recip(raw as i64, 8).expect("positive");
            let approx = r.mant as f64 * ((r.exp2 - 15) as f64).exp2();
            let exact = 256.0 / raw as f64;
            let rel = (approx - exact).abs() / exact;
            if rel > worst {
                worst = rel;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        let u = RecipUnit::new(64);
        assert!(matches!(u.recip(0, 8), Err(FixedError::NonPositiveReciprocal { raw: 0 })));
        assert!(matches!(u.recip(-5, 8), Err(FixedError::NonPositiveReciprocal { .. })));
        assert!(RecipUnit::with_entries(0, 1).is_err());
    }

    #[test]
    fn reciprocal_of_one() {
        let u = RecipUnit::new(64);
        // 1.0 in Q.8 is raw 256.
        let r = u.recip(256, 8).unwrap();
        let value = r.mant as f64 * ((r.exp2 - 15) as f64).exp2();
        assert!((value - 1.0).abs() < 1e-3, "1/1 = {value}");
    }

    #[test]
    fn newton_step_tightens_error() {
        let raw = RecipUnit::with_entries(16, 0).unwrap().max_relative_error();
        let refined = RecipUnit::with_entries(16, 1).unwrap().max_relative_error();
        assert!(refined < raw / 4.0, "newton {refined} vs raw {raw}");
    }

    #[test]
    fn error_under_permille_with_defaults() {
        let err = RecipUnit::new(64).max_relative_error();
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn scale_to_prob_basics() {
        let u = RecipUnit::new(64);
        // sum = 4.0 (raw 1024 in Q.8); element = 1.0 (raw 256) -> prob 0.25.
        let r = u.recip(1024, 8).unwrap();
        let p = r.scale_to_prob(256, 8);
        assert!((p as f64 / 32768.0 - 0.25).abs() < 1e-3, "prob {p}");
        // Clamped at 1.0.
        let p = r.scale_to_prob(1 << 40, 8);
        assert_eq!(p, 32768);
        // Zero exponential -> zero probability.
        assert_eq!(r.scale_to_prob(0, 8), 0);
    }

    #[test]
    fn scale_to_prob_q16_domain() {
        let u = RecipUnit::new(64);
        // Q.16: sum = 2.0 (raw 131072); element = 0.5 (raw 32768) -> 0.25.
        let r = u.recip(131072, 16).unwrap();
        let p = r.scale_to_prob(32768, 16);
        assert!((p as f64 / 32768.0 - 0.25).abs() < 1e-3, "prob {p}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let u = RecipUnit::new(64);
        let exps: Vec<i64> = vec![256, 512, 1024, 128, 64];
        let sum: i64 = exps.iter().sum();
        let r = u.recip(sum, 8).unwrap();
        let total: f64 = exps.iter().map(|&e| r.scale_to_prob(e, 8) as f64 / 32768.0).sum();
        assert!((total - 1.0).abs() < 5e-3, "sum {total}");
    }

    #[test]
    fn wide_dynamic_range() {
        let u = RecipUnit::new(64);
        for &raw in &[1i64, 7, 255, 256, 257, 65535, 1 << 20, (1 << 30) + 12345] {
            let r = u.recip(raw, 8).unwrap();
            let approx = r.mant as f64 * ((r.exp2 - 15) as f64).exp2();
            let exact = 256.0 / raw as f64;
            assert!(((approx - exact) / exact).abs() < 1e-3, "raw {raw}: {approx} vs {exact}");
        }
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(RecipUnit::new(64).storage_bits(), 1024);
        assert_eq!(RecipUnit::new(64).entries(), 64);
    }
}
