//! Fixed-point arithmetic for the SALO accelerator datapath.
//!
//! SALO (DAC 2022, §5.1/§6.4) computes attention in low-precision fixed
//! point: query/key/value elements are quantized to 8 bits with 4 fraction
//! bits, products are accumulated in wider registers, the exponential of
//! softmax is a piecewise-linear approximation evaluated from two lookup
//! tables (slope and y-intercept, following Softermax), and the softmax
//! denominator is inverted once per row with a lookup-table reciprocal
//! instead of per-PE dividers. Outputs are 16-bit fixed point.
//!
//! This crate provides that arithmetic as reusable, bit-deterministic
//! building blocks:
//!
//! * [`Fix8x4`], [`Fix16x8`] — storage formats (8-bit/4-frac inputs,
//!   16-bit/8-frac outputs);
//! * [`qk_mac`], [`sv_mac`] — the two MAC flavours of the PE datapath;
//! * [`ExpLut`] — the piecewise-linear `exp` unit (stage 2);
//! * [`RecipUnit`] and [`Recip`] — the normalized reciprocal unit (stage 3);
//! * [`fixed_softmax`] — the full fixed-point softmax a PE row performs;
//! * [`merge_partials`] — the weighted-sum module's renormalization (Eq. 2);
//! * [`quantize`] / [`dequantize`] and [`QuantizationReport`] — conversion
//!   between `f32` tensors and the accelerator formats.
//!
//! # Example
//!
//! ```
//! use salo_fixed::{fixed_softmax, ExpLut, Fix8x4, RecipUnit};
//!
//! let exp = ExpLut::new(32);
//! let recip = RecipUnit::new(64);
//! // Scores in Q.8 fixed point (raw = value * 256).
//! let scores = vec![256, 512, 0]; // 1.0, 2.0, 0.0
//! let probs = fixed_softmax(&scores, &exp, &recip)?;
//! let total: f64 = probs.iter().map(|&p| p as f64 / 32768.0).sum();
//! assert!((total - 1.0).abs() < 0.01);
//! # Ok::<(), salo_fixed::FixedError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod exp;
mod format;
mod mac;
mod quantize;
mod recip;
mod renorm;
mod softmax;

pub use error::FixedError;
pub use exp::{ExpLut, EXP_FRAC};
pub use format::{Fix16x8, Fix32x8, Fix8x4};
pub use mac::{
    qk_dot, qk_mac, sv_mac, sv_row_mac, sv_row_mac_i32, MacSaturation, QK_DOT_SAFE_DIM,
    SV_I32_SAFE_KEYS,
};
pub use quantize::{dequantize, quantize, quantize_with_scale, QuantizationReport};
pub use recip::{Recip, RecipUnit};
pub use renorm::{merge_partials, merge_partials_into, merge_weights, PartialRow};
pub use softmax::{
    fixed_softmax, fixed_softmax_f64, fixed_softmax_parts, fixed_softmax_parts_into, softmax_f64,
    PROB_FRAC, PROB_ONE,
};

/// Fraction bits of the Q.8 score/exponential domain used across the
/// datapath (scores after the QK^T stage, exp outputs, row sums).
pub const SCORE_FRAC: u32 = 8;

/// Fraction bits of the stage-5 output accumulator: probability (Q.15)
/// times value (Q.4) products carry 19 fraction bits.
pub const OUT_ACC_FRAC: u32 = 19;
