//! Quantization between `f32` tensors and the accelerator's input format.
//!
//! SALO quantizes the query, key and value matrices to 8-bit Q.4 fixed
//! point before loading them into its buffers (§6.4). The attention scale
//! factor `1/sqrt(d)` is folded into the query quantization (the hardware
//! has no separate scaling stage — Fig. 1's "Scale" happens here), so
//! [`quantize_with_scale`] is what the execution pipeline uses for `Q`.

use crate::format::Fix8x4;

/// Quantizes a slice of `f32` values to Q.4 8-bit fixed point.
#[must_use]
pub fn quantize(values: &[f32]) -> Vec<Fix8x4> {
    values.iter().map(|&v| Fix8x4::from_f32(v)).collect()
}

/// Quantizes after multiplying by `scale` (e.g. `1/sqrt(d)` for queries).
#[must_use]
pub fn quantize_with_scale(values: &[f32], scale: f32) -> Vec<Fix8x4> {
    values.iter().map(|&v| Fix8x4::from_f32(v * scale)).collect()
}

/// Dequantizes back to `f32`.
#[must_use]
pub fn dequantize(values: &[Fix8x4]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

/// Quality metrics of a quantization round trip.
///
/// Used by the Table 3 reproduction (`salo-quant`) to show that Q.4 inputs
/// keep attention outputs within a fraction of the decision margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationReport {
    /// Mean squared error between original and dequantized values.
    pub mse: f64,
    /// Largest absolute error.
    pub max_abs_error: f64,
    /// Signal-to-quantization-noise ratio in dB (`10 log10(P_sig/P_err)`).
    pub sqnr_db: f64,
    /// Number of inputs that saturated at the format's range.
    pub saturated: usize,
}

impl QuantizationReport {
    /// Measures the round-trip error of quantizing `values` to Q.4.
    ///
    /// Returns a zero-error report for an empty input.
    #[must_use]
    pub fn measure(values: &[f32]) -> Self {
        Self::measure_scaled(values, 1.0)
    }

    /// Measures round-trip error with a pre-scale (the dequantized values
    /// are divided by `scale` before comparison, so the report reflects the
    /// error in the original units).
    #[must_use]
    pub fn measure_scaled(values: &[f32], scale: f32) -> Self {
        if values.is_empty() {
            return Self { mse: 0.0, max_abs_error: 0.0, sqnr_db: f64::INFINITY, saturated: 0 };
        }
        let mut sq_err = 0.0f64;
        let mut sq_sig = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut saturated = 0usize;
        for &v in values {
            let q = Fix8x4::from_f32(v * scale);
            if q == Fix8x4::MAX || q == Fix8x4::MIN {
                saturated += 1;
            }
            let back = q.to_f32() / scale;
            let err = (back - v) as f64;
            sq_err += err * err;
            sq_sig += (v as f64) * (v as f64);
            max_abs = max_abs.max(err.abs());
        }
        let n = values.len() as f64;
        let mse = sq_err / n;
        let sqnr_db = if sq_err > 0.0 { 10.0 * (sq_sig / sq_err).log10() } else { f64::INFINITY };
        Self { mse, max_abs_error: max_abs, sqnr_db, saturated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_round_trip_on_grid() {
        let values = vec![0.0f32, 0.0625, -0.125, 1.5, -7.9375];
        let back = dequantize(&quantize(&values));
        assert_eq!(values, back);
    }

    #[test]
    fn off_grid_error_bounded_by_half_lsb() {
        let values: Vec<f32> = (0..1000).map(|k| (k as f32) * 0.0071 - 3.5).collect();
        let report = QuantizationReport::measure(&values);
        assert!(report.max_abs_error <= 0.03125 + 1e-6, "max {}", report.max_abs_error);
        assert_eq!(report.saturated, 0);
    }

    #[test]
    fn saturation_counted() {
        let report = QuantizationReport::measure(&[100.0, -100.0, 0.5]);
        assert_eq!(report.saturated, 2);
        assert!(report.max_abs_error > 90.0);
    }

    #[test]
    fn scale_folding() {
        let d: f32 = 64.0;
        let scale = 1.0 / d.sqrt();
        let q = quantize_with_scale(&[8.0], scale);
        assert!((q[0].to_f32() - 1.0).abs() < 0.0625);
    }

    #[test]
    fn scaled_report_in_original_units() {
        // With scale 1/8, values up to 63 stay representable.
        let values = vec![40.0f32, -30.0, 10.0];
        let r = QuantizationReport::measure_scaled(&values, 1.0 / 8.0);
        assert_eq!(r.saturated, 0);
        assert!(r.max_abs_error <= 0.25 + 1e-6); // half LSB / scale
    }

    #[test]
    fn empty_input() {
        let r = QuantizationReport::measure(&[]);
        assert_eq!(r.mse, 0.0);
        assert!(r.sqnr_db.is_infinite());
    }

    #[test]
    fn sqnr_reasonable_for_unit_normal_range() {
        // Values in [-2, 2]: SQNR for a 1/16 step should exceed 30 dB.
        let values: Vec<f32> = (0..4000).map(|k| (k as f32) * 0.001 - 2.0).collect();
        let r = QuantizationReport::measure(&values);
        assert!(r.sqnr_db > 30.0, "sqnr {}", r.sqnr_db);
    }
}
