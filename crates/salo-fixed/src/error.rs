use std::error::Error;
use std::fmt;

/// Errors from fixed-point datapath operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FixedError {
    /// The reciprocal unit received a non-positive operand. The softmax
    /// denominator is a sum of exponentials and must be strictly positive;
    /// a zero here indicates upstream underflow.
    NonPositiveReciprocal {
        /// The offending raw operand.
        raw: i64,
    },
    /// An empty score row was given to softmax.
    EmptySoftmaxRow,
    /// A lookup table was configured with zero segments/entries.
    EmptyLut,
    /// Partial rows being merged have mismatched lengths.
    PartialLengthMismatch {
        /// Length of the accumulated row.
        expected: usize,
        /// Length of the incoming row.
        actual: usize,
    },
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::NonPositiveReciprocal { raw } => {
                write!(f, "reciprocal of non-positive value (raw {raw})")
            }
            FixedError::EmptySoftmaxRow => write!(f, "softmax row is empty"),
            FixedError::EmptyLut => write!(f, "lookup table needs at least one segment"),
            FixedError::PartialLengthMismatch { expected, actual } => {
                write!(f, "partial row length {actual} does not match accumulator {expected}")
            }
        }
    }
}

impl Error for FixedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        for e in [
            FixedError::NonPositiveReciprocal { raw: 0 },
            FixedError::EmptySoftmaxRow,
            FixedError::EmptyLut,
            FixedError::PartialLengthMismatch { expected: 4, actual: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<FixedError>();
    }
}
