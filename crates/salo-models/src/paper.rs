//! The numbers the SALO paper reports, recorded verbatim so experiments
//! can print paper-vs-measured tables (see `EXPERIMENTS.md`).

/// One workload's reported speedups and energy savings (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure7Row {
    /// Workload name as in the paper.
    pub name: &'static str,
    /// Speedup over the CPU baseline (Fig. 7a).
    pub speedup_cpu: f64,
    /// Speedup over the GPU baseline (Fig. 7a).
    pub speedup_gpu: f64,
    /// Energy saving over the CPU baseline (Fig. 7b).
    pub energy_cpu: f64,
    /// Energy saving over the GPU baseline (Fig. 7b).
    pub energy_gpu: f64,
}

/// Fig. 7 values for the three workloads.
pub const FIGURE7: [Figure7Row; 3] = [
    Figure7Row {
        name: "Longformer",
        speedup_cpu: 83.57,
        speedup_gpu: 7.38,
        energy_cpu: 196.90,
        energy_gpu: 336.05,
    },
    Figure7Row {
        name: "ViL-stage1",
        speedup_cpu: 83.12,
        speedup_gpu: 20.10,
        energy_cpu: 187.53,
        energy_gpu: 281.29,
    },
    Figure7Row {
        name: "ViL-stage2",
        speedup_cpu: 101.31,
        speedup_gpu: 25.51,
        energy_cpu: 167.15,
        energy_gpu: 198.78,
    },
];

/// Average speedup over CPU (paper abstract: 89.33x).
pub const AVG_SPEEDUP_CPU: f64 = 89.33;
/// Average speedup over GPU (paper abstract: 17.66x).
pub const AVG_SPEEDUP_GPU: f64 = 17.66;
/// Average energy saving over CPU (§6.2: 183.86x).
pub const AVG_ENERGY_CPU: f64 = 183.86;
/// Average energy saving over GPU (§6.2: 272.04x).
pub const AVG_ENERGY_GPU: f64 = 272.04;

/// §2.1 motivation anchors: BERT-base attention on a GTX 1080Ti.
pub const BERT_GPU_LATENCY_MS_N2048: f64 = 9.20;
/// Same at `n = 8192` (~16x the `n = 2048` latency).
pub const BERT_GPU_LATENCY_MS_N8192: f64 = 145.70;

/// §6.3: SALO speedup over Sanger at equal PEs, sparsity and frequency.
pub const SANGER_SPEEDUP: f64 = 1.33;
/// §6.3: Sanger's PE utilization range on sparsity 0.05–0.30.
pub const SANGER_UTILIZATION: (f64, f64) = (0.55, 0.75);
/// §6.3: SALO's PE utilization claim.
pub const SALO_UTILIZATION_MIN: f64 = 0.75;

/// Table 1 synthesis results.
pub mod table1 {
    /// PE array size.
    pub const PE_ARRAY: (usize, usize) = (32, 32);
    /// Global PE columns.
    pub const GLOBAL_PE_COLS: usize = 1;
    /// Global PE rows.
    pub const GLOBAL_PE_ROWS: usize = 1;
    /// Weighted-sum module count (one per array row plus the global row).
    pub const WEIGHTED_SUM_MODULES: usize = 33;
    /// Buffer sizes in KB: query, key, value, output.
    pub const BUFFERS_KB: (usize, usize, usize, usize) = (16, 32, 32, 32);
    /// Clock frequency (GHz).
    pub const FREQUENCY_GHZ: f64 = 1.0;
    /// Synthesized power (mW) at FreePDK 45 nm.
    pub const POWER_MW: f64 = 532.66;
    /// Synthesized area (mm²).
    pub const AREA_MM2: f64 = 4.56;
}

/// Table 3: accuracy of the original vs Q.4-quantized models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Model name.
    pub model: &'static str,
    /// Dataset.
    pub dataset: &'static str,
    /// Original fp32 accuracy (%).
    pub original: f64,
    /// Quantized accuracy (%).
    pub quantized: f64,
}

/// Table 3 values.
pub const TABLE3: [Table3Row; 3] = [
    Table3Row { model: "Longformer", dataset: "IMDB", original: 95.34, quantized: 95.20 },
    Table3Row { model: "Longformer", dataset: "Hyperpartisan", original: 93.42, quantized: 93.46 },
    Table3Row { model: "ViL", dataset: "ImageNet-1K", original: 82.87, quantized: 82.80 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_match_rows() {
        let avg = |f: fn(&Figure7Row) -> f64| FIGURE7.iter().map(f).sum::<f64>() / 3.0;
        assert!((avg(|r| r.speedup_cpu) - AVG_SPEEDUP_CPU).abs() < 0.05);
        assert!((avg(|r| r.speedup_gpu) - AVG_SPEEDUP_GPU).abs() < 0.05);
        assert!((avg(|r| r.energy_cpu) - AVG_ENERGY_CPU).abs() < 0.05);
        assert!((avg(|r| r.energy_gpu) - AVG_ENERGY_GPU).abs() < 0.05);
    }

    #[test]
    fn motivation_ratio_is_quadratic() {
        let ratio = BERT_GPU_LATENCY_MS_N8192 / BERT_GPU_LATENCY_MS_N2048;
        assert!((ratio - 15.8).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn table3_deltas_are_small() {
        for row in TABLE3 {
            assert!((row.original - row.quantized).abs() < 0.2);
        }
    }
}
