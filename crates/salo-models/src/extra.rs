//! Additional workload configurations beyond Table 2: the other surveyed
//! pattern families (Fig. 2) and the paper's longest-sequence claim.

use salo_baselines::ExecutionFamily;
use salo_patterns::{bigbird, sparse_transformer, star_transformer, AttentionShape, PatternError};

use crate::{longformer_layer, Workload};

/// Longformer at the paper's maximum advertised length ("up to 16384
/// tokens in a sequence", §1), window 512, hidden 768.
///
/// # Panics
///
/// Never panics; parameters are statically valid.
#[must_use]
pub fn longformer_16k() -> Workload {
    let mut w = longformer_layer(16384, 512, 768, 1).expect("valid parameters");
    w.name = "Longformer-16k".into();
    w
}

/// A Star Transformer layer: trigram window plus one relay token.
///
/// # Errors
///
/// Returns a pattern error for `n == 0`.
pub fn star_transformer_layer(n: usize, model_dim: usize) -> Result<Workload, PatternError> {
    let head_dim = 64;
    let heads = (model_dim / head_dim).max(1);
    let pattern = star_transformer(n)?;
    let shape = AttentionShape::new(n, head_dim, heads)?;
    Ok(Workload::new(
        format!("Star Transformer (n={n})"),
        pattern,
        shape,
        ExecutionFamily::Banded1d,
    ))
}

/// A Sparse Transformer layer: causal local window of `stride` plus the
/// strided column reaching back `depth * stride` tokens.
///
/// # Errors
///
/// Returns a pattern error for degenerate parameters.
pub fn sparse_transformer_layer(
    n: usize,
    stride: usize,
    depth: usize,
    model_dim: usize,
) -> Result<Workload, PatternError> {
    let head_dim = 64;
    let heads = (model_dim / head_dim).max(1);
    let pattern = sparse_transformer(n, stride, depth)?;
    let shape = AttentionShape::new(n, head_dim, heads)?;
    Ok(Workload::new(
        format!("Sparse Transformer (n={n}, stride={stride})"),
        pattern,
        shape,
        ExecutionFamily::Banded1d,
    ))
}

/// A BigBird layer: symmetric window, `ng` global tokens, and `blocks`
/// seeded random block keys per row (the residual is executed through the
/// scheduler's gather passes rather than a dense fallback).
///
/// # Errors
///
/// Returns a pattern error for degenerate parameters.
pub fn bigbird_layer(
    n: usize,
    w: usize,
    blocks: usize,
    ng: usize,
    seed: u64,
    model_dim: usize,
) -> Result<Workload, PatternError> {
    let head_dim = 64;
    let heads = (model_dim / head_dim).max(1);
    let pattern = bigbird(n, w, blocks, ng, seed)?;
    let shape = AttentionShape::new(n, head_dim, heads)?;
    Ok(Workload::new(
        format!("BigBird (n={n}, w={w}, r={blocks})"),
        pattern,
        shape,
        ExecutionFamily::Banded1d,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longformer_16k_dimensions() {
        let w = longformer_16k();
        assert_eq!(w.shape.seq_len, 16384);
        assert_eq!(w.shape.num_heads, 12);
        // Linear-complexity check: nnz/n stays near the window size.
        let per_row = w.nnz() as f64 / 16384.0;
        assert!((per_row - 512.0).abs() < 20.0, "per-row keys {per_row}");
    }

    #[test]
    fn star_layer_structure() {
        let w = star_transformer_layer(256, 128).unwrap();
        assert_eq!(w.shape.num_heads, 2);
        assert_eq!(w.pattern.globals(), &[0]);
        assert!(star_transformer_layer(0, 64).is_err());
    }

    #[test]
    fn bigbird_layer_structure() {
        let w = bigbird_layer(256, 16, 2, 2, 11, 128).unwrap();
        assert_eq!(w.shape.num_heads, 2);
        assert_eq!(w.pattern.globals(), &[0, 1]);
        assert!(!w.pattern.residual().is_empty(), "random blocks live in the residual");
        assert!(bigbird_layer(0, 16, 2, 2, 11, 128).is_err());
    }

    #[test]
    fn strided_layer_structure() {
        let w = sparse_transformer_layer(512, 8, 16, 64).unwrap();
        assert_eq!(w.pattern.windows().len(), 2);
        assert!(w.pattern.windows().iter().any(salo_patterns::Window::is_dilated));
        assert!(sparse_transformer_layer(512, 0, 4, 64).is_err());
    }
}
