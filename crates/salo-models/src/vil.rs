//! Vision Longformer (ViL) workload configurations.
//!
//! ViL-Medium-Wide processes an image as a pyramid of patch grids; the
//! paper evaluates the first two stages, whose attention uses a 15 x 15
//! 2-D sliding window plus one global (CLS) token (Table 2).

use salo_baselines::ExecutionFamily;
use salo_patterns::{vil_stage, AttentionShape, PatternError};

use crate::Workload;

/// A ViL attention layer on an `h x w` patch grid with a `wh x ww` window,
/// `model_dim` hidden size (heads of 64) and `ng` global tokens.
///
/// # Errors
///
/// Returns a pattern error for degenerate parameters (even window sizes,
/// zero extents).
pub fn vil_stage_layer(
    h: usize,
    w: usize,
    wh: usize,
    ww: usize,
    model_dim: usize,
    ng: usize,
) -> Result<Workload, PatternError> {
    let head_dim = 64;
    let heads = (model_dim / head_dim).max(1);
    let pattern = vil_stage(h, w, wh, ww, ng)?;
    let shape = AttentionShape::new(h * w, head_dim, heads)?;
    Ok(Workload::new(
        format!("ViL ({h}x{w}, window {wh}x{ww})"),
        pattern,
        shape,
        ExecutionFamily::Windowed2d,
    ))
}

/// ViL-Medium-Wide stage 1 (Table 2 row 2): 56 x 56 patches, 15 x 15
/// window, hidden 192, one global token.
#[must_use]
pub fn vil_stage1() -> Workload {
    let mut w = vil_stage_layer(56, 56, 15, 15, 192, 1).expect("valid parameters");
    w.name = "ViL-stage1".into();
    w
}

/// ViL-Medium-Wide stage 2 (Table 2 row 3): 28 x 28 patches, 15 x 15
/// window, hidden 384, one global token.
#[must_use]
pub fn vil_stage2() -> Workload {
    let mut w = vil_stage_layer(28, 28, 15, 15, 384, 1).expect("valid parameters");
    w.name = "ViL-stage2".into();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row2_parameters() {
        let w = vil_stage1();
        assert_eq!(w.shape.seq_len, 56 * 56);
        assert_eq!(w.shape.model_dim(), 192);
        assert_eq!(w.shape.num_heads, 3);
        let s = w.stats();
        assert_eq!(s.window_width, 225);
        assert!((s.nominal_density - 0.072).abs() < 0.002, "sparsity {}", s.nominal_density);
    }

    #[test]
    fn table2_row3_parameters() {
        let w = vil_stage2();
        assert_eq!(w.shape.seq_len, 784);
        assert_eq!(w.shape.model_dim(), 384);
        assert_eq!(w.shape.num_heads, 6);
        let s = w.stats();
        assert!((s.nominal_density - 0.288).abs() < 0.004, "sparsity {}", s.nominal_density);
    }

    #[test]
    fn family_is_2d() {
        assert_eq!(vil_stage1().family, ExecutionFamily::Windowed2d);
        assert!(vil_stage_layer(8, 8, 4, 3, 64, 0).is_err(), "even window rejected");
    }
}
