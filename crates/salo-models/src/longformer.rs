//! Longformer workload configurations.

use salo_baselines::ExecutionFamily;
use salo_patterns::{longformer, AttentionShape, PatternError};

use crate::Workload;

/// A Longformer attention layer with arbitrary hyper-parameters.
///
/// `model_dim` must be a multiple of 64 (the head dimension of the BERT
/// family); heads are `model_dim / 64`.
///
/// # Errors
///
/// Returns a pattern error for degenerate parameters.
pub fn longformer_layer(
    n: usize,
    window: usize,
    model_dim: usize,
    ng: usize,
) -> Result<Workload, PatternError> {
    let head_dim = 64;
    let heads = (model_dim / head_dim).max(1);
    let pattern = longformer(n, window, ng)?;
    let shape = AttentionShape::new(n, head_dim, heads)?;
    Ok(Workload::new(
        format!("Longformer (n={n}, w={window})"),
        pattern,
        shape,
        ExecutionFamily::Banded1d,
    ))
}

/// The paper's Longformer-Base-4096 layer (Table 2 row 1): sequence 4096,
/// window 512, hidden 768 (12 heads of 64), one global token.
///
/// # Panics
///
/// Never panics; parameters are statically valid.
#[must_use]
pub fn longformer_base_4096() -> Workload {
    let mut w = longformer_layer(4096, 512, 768, 1).expect("valid parameters");
    w.name = "Longformer".into();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row1_parameters() {
        let w = longformer_base_4096();
        assert_eq!(w.shape.seq_len, 4096);
        assert_eq!(w.shape.model_dim(), 768);
        assert_eq!(w.shape.num_heads, 12);
        assert_eq!(w.pattern.globals(), &[0]);
        let s = w.stats();
        assert_eq!(s.window_width, 512);
        // Paper's sparsity column: 0.125.
        assert!((s.nominal_density - 0.125).abs() < 0.002, "sparsity {}", s.nominal_density);
    }

    #[test]
    fn custom_layer_scales() {
        let w = longformer_layer(1024, 128, 256, 2).unwrap();
        assert_eq!(w.shape.num_heads, 4);
        assert_eq!(w.pattern.globals().len(), 2);
        assert!(longformer_layer(0, 128, 256, 1).is_err());
    }
}
