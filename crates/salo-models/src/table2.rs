//! Reproduction of Table 2: key parameters of the attention layers.

use crate::{longformer_base_4096, vil_stage1, vil_stage2, Workload};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Workload name.
    pub name: String,
    /// Sequence length description ("4096" or "56 x 56").
    pub sequence: String,
    /// Window size description ("512" or "15 x 15").
    pub window: String,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of global tokens.
    pub global_tokens: usize,
    /// Nominal sparsity (the paper's Table 2 column).
    pub sparsity: f64,
    /// Exact density after clipping/overlap (ours, for comparison).
    pub exact_density: f64,
}

fn row(w: &Workload, sequence: &str, window: &str) -> Table2Row {
    let s = w.stats();
    Table2Row {
        name: w.name.clone(),
        sequence: sequence.to_string(),
        window: window.to_string(),
        hidden: w.shape.model_dim(),
        global_tokens: w.pattern.globals().len(),
        sparsity: s.nominal_density,
        exact_density: s.density,
    }
}

/// Builds the three rows of Table 2 from the workload definitions.
#[must_use]
pub fn table2_rows() -> Vec<Table2Row> {
    vec![
        row(&longformer_base_4096(), "4096", "512"),
        row(&vil_stage1(), "56 x 56", "15 x 15"),
        row(&vil_stage2(), "28 x 28", "15 x 15"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table2() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 3);
        // Paper values: 0.125, 0.072, 0.288.
        let paper = [0.125, 0.072, 0.288];
        for (row, &expect) in rows.iter().zip(&paper) {
            assert!(
                (row.sparsity - expect).abs() < 0.004,
                "{}: {} vs paper {}",
                row.name,
                row.sparsity,
                expect
            );
            assert_eq!(row.global_tokens, 1);
            // Exact density differs only by boundary clipping.
            assert!(row.exact_density <= row.sparsity + 1e-9);
        }
        assert_eq!(rows[0].hidden, 768);
        assert_eq!(rows[1].hidden, 192);
        assert_eq!(rows[2].hidden, 384);
    }
}
