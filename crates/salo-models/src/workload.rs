use salo_baselines::{BaselineWorkload, ExecutionFamily};
use salo_kernels::Qkv;
use salo_patterns::{AttentionShape, HybridPattern, PatternStats};

/// One evaluation workload: an attention layer with its hybrid sparse
/// pattern, dimensions and baseline execution strategy.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (as used in the paper's figures).
    pub name: String,
    /// The hybrid sparse attention pattern (shared by all heads).
    pub pattern: HybridPattern,
    /// Sequence/head dimensions.
    pub shape: AttentionShape,
    /// How CPU/GPU software executes this pattern.
    pub family: ExecutionFamily,
    nnz: u64,
}

impl Workload {
    /// Builds a workload, computing the pattern's exact `nnz` once.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        pattern: HybridPattern,
        shape: AttentionShape,
        family: ExecutionFamily,
    ) -> Self {
        let nnz = pattern.nnz();
        Self { name: name.into(), pattern, shape, family, nnz }
    }

    /// Builds a workload with a precomputed `nnz` (used by the dense BERT
    /// configuration where `nnz = n^2` by construction).
    #[must_use]
    pub fn with_nnz(
        name: impl Into<String>,
        pattern: HybridPattern,
        shape: AttentionShape,
        family: ExecutionFamily,
        nnz: u64,
    ) -> Self {
        Self { name: name.into(), pattern, shape, family, nnz }
    }

    /// Kept score positions per head.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Pattern statistics (density, nominal density, widths).
    #[must_use]
    pub fn stats(&self) -> PatternStats {
        self.pattern.stats()
    }

    /// The descriptor the baseline device models consume.
    #[must_use]
    pub fn baseline(&self) -> BaselineWorkload {
        BaselineWorkload {
            name: self.name.clone(),
            seq_len: self.shape.seq_len,
            model_dim: self.shape.model_dim(),
            num_heads: self.shape.num_heads,
            nnz: self.nnz,
            family: self.family,
        }
    }

    /// Deterministic per-head inputs.
    #[must_use]
    pub fn qkv_heads(&self, seed: u64) -> Vec<Qkv> {
        Qkv::random_heads(&self.shape, seed)
    }

    /// The standard attention scale `1/sqrt(d_head)`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        1.0 / (self.shape.head_dim.max(1) as f32).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;

    #[test]
    fn nnz_cached_and_consistent() {
        let pattern = longformer(128, 16, 1).unwrap();
        let expect = pattern.nnz();
        let w = Workload::new(
            "t",
            pattern,
            AttentionShape::new(128, 16, 2).unwrap(),
            ExecutionFamily::Banded1d,
        );
        assert_eq!(w.nnz(), expect);
        assert_eq!(w.baseline().nnz, expect);
        assert_eq!(w.baseline().model_dim, 32);
    }

    #[test]
    fn qkv_heads_match_shape() {
        let pattern = longformer(32, 8, 1).unwrap();
        let w = Workload::new(
            "t",
            pattern,
            AttentionShape::new(32, 8, 3).unwrap(),
            ExecutionFamily::Banded1d,
        );
        let heads = w.qkv_heads(1);
        assert_eq!(heads.len(), 3);
        assert_eq!(heads[0].seq_len(), 32);
        assert_eq!(heads[0].head_dim(), 8);
        assert!((w.scale() - 1.0 / 8f32.sqrt()).abs() < 1e-7);
    }
}
