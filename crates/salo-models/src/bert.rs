//! BERT-base configurations for the §2.1 motivation experiment.

use salo_baselines::ExecutionFamily;
use salo_patterns::{AttentionShape, HybridPattern, PatternError, Window};

use crate::Workload;

/// A dense BERT-base attention layer: hidden 768, 12 heads of 64, full
/// `n x n` attention.
///
/// The "pattern" is a window wide enough to cover the whole sequence, so
/// the same machinery (scheduler, simulator, kernels) runs dense attention
/// unchanged; `nnz` is `n^2` by construction.
///
/// # Errors
///
/// Returns a pattern error if `n == 0`.
pub fn bert_base(n: usize) -> Result<Workload, PatternError> {
    let pattern = bert_base_dense(n)?;
    let shape = AttentionShape::new(n, 64, 12)?;
    Ok(Workload::with_nnz(
        format!("BERT-base (n={n})"),
        pattern,
        shape,
        ExecutionFamily::Dense,
        (n as u64) * (n as u64),
    ))
}

/// The all-covering pattern used by [`bert_base`]: a symmetric window of
/// width `2n` (every query attends every key).
///
/// # Errors
///
/// Returns a pattern error if `n == 0`.
pub fn bert_base_dense(n: usize) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n).window(Window::symmetric(2 * n)?).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_pattern_covers_everything() {
        let p = bert_base_dense(16).unwrap();
        for i in 0..16 {
            assert_eq!(p.row_nnz(i), 16);
        }
    }

    #[test]
    fn workload_dimensions() {
        let w = bert_base(2048).unwrap();
        assert_eq!(w.shape.model_dim(), 768);
        assert_eq!(w.nnz(), 2048 * 2048);
        assert_eq!(w.family, ExecutionFamily::Dense);
        assert!(bert_base(0).is_err());
    }

    #[test]
    fn nnz_override_matches_pattern_for_small_n() {
        let w = bert_base(12).unwrap();
        assert_eq!(w.nnz(), w.pattern.nnz());
    }
}
