//! Workload model configurations for the SALO evaluation.
//!
//! The paper benchmarks three attention layers (Table 2):
//!
//! | layer | sequence | window | hidden | globals | sparsity |
//! |---|---|---|---|---|---|
//! | Longformer-Base-4096 | 4096 | 512 | 768 | 1 | 0.125 |
//! | ViL-Medium-Wide stage 1 | 56 x 56 | 15 x 15 | 192 | 1 | 0.072 |
//! | ViL-Medium-Wide stage 2 | 28 x 28 | 15 x 15 | 384 | 1 | 0.288 |
//!
//! plus BERT-base for the §2.1 motivation experiment. This crate packages
//! each as a [`Workload`]: the hybrid pattern, the attention shape, the
//! CPU/GPU execution family and deterministic input generation. The
//! [`paper`] module records the numbers the paper reports, so benches can
//! print paper-vs-measured side by side.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bert;
mod extra;
mod longformer;
pub mod paper;
mod table2;
mod vil;
mod workload;

pub use bert::{bert_base, bert_base_dense};
pub use extra::{bigbird_layer, longformer_16k, sparse_transformer_layer, star_transformer_layer};
pub use longformer::{longformer_base_4096, longformer_layer};
pub use table2::{table2_rows, Table2Row};
pub use vil::{vil_stage1, vil_stage2, vil_stage_layer};
pub use workload::Workload;
