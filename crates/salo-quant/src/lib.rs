//! Quantization accuracy experiments — the Table 3 reproduction.
//!
//! **Substitution note.** The paper fine-tunes pretrained Longformer/ViL
//! models with QPyTorch and evaluates on IMDB, Hyperpartisan and
//! ImageNet-1K. Neither the checkpoints nor the datasets are available
//! here, so this crate demonstrates the same *claim* — that SALO's Q.4
//! inputs / 16-bit outputs do not meaningfully degrade task accuracy — on
//! controlled substitutes:
//!
//! * [`attention_error`] measures the raw attention-output error between
//!   the exact `f32` kernel and the bit-accurate fixed-point kernel on
//!   normalized (LayerNorm-like) inputs: SQNR, MSE, and how often the
//!   dominant output coordinate is preserved;
//! * [`run_task`] builds an end-to-end synthetic classification task whose
//!   labels depend on attention-pooled features, trains a logistic-
//!   regression head on `f32` features, and evaluates it with `f32` vs
//!   quantized attention (plus a quantization-aware retraining pass,
//!   mirroring the paper's fine-tuning);
//! * [`table3_rows`] packages three such tasks — Longformer-1D window
//!   (IMDB proxy), Longformer-1D with more globals (Hyperpartisan proxy)
//!   and a ViL-2D window (ImageNet proxy) — next to the paper's reported
//!   numbers.
//!
//! The expected outcome, as in the paper: quantized accuracy within a few
//! tenths of a point of the `f32` baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitwidth;
mod dynamic;
mod error_analysis;
mod logistic;
mod table3;
mod task;

pub use bitwidth::{sweep_fraction_bits, BitwidthPoint};
pub use dynamic::{compare_dynamic, DynamicComparison, DynamicScale};
pub use error_analysis::{attention_error, AttentionErrorReport};
pub use logistic::LogisticHead;
pub use table3::{table3_rows, QuantTableRow};
pub use task::{run_task, TaskConfig, TaskResult};
