//! Raw attention-output error between `f32` and fixed-point kernels.

use salo_kernels::{fixed_sparse_attention, sparse_attention, FixedAttention, KernelError, Qkv};
use salo_patterns::HybridPattern;

/// Error metrics of the fixed-point attention against the `f32` reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionErrorReport {
    /// Mean squared output error.
    pub mse: f64,
    /// Largest absolute output error.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio (dB).
    pub sqnr_db: f64,
    /// Fraction of rows whose arg-max output coordinate is unchanged.
    pub argmax_agreement: f64,
    /// Number of fixed-point saturation events (should be zero on
    /// normalized inputs).
    pub saturation_events: u64,
}

/// Runs both kernels on standard-normal inputs and compares outputs.
///
/// # Errors
///
/// Propagates kernel errors (dimension mismatches).
pub fn attention_error(
    pattern: &HybridPattern,
    head_dim: usize,
    seed: u64,
) -> Result<AttentionErrorReport, KernelError> {
    let qkv = Qkv::random(pattern.n(), head_dim, seed);
    let datapath = FixedAttention::new(head_dim);
    let exact = sparse_attention(pattern, &qkv.q, &qkv.k, &qkv.v, datapath.scale)?;
    let fixed = fixed_sparse_attention(pattern, &qkv.q, &qkv.k, &qkv.v, &datapath)?;
    let approx = fixed.to_f32();

    let n = pattern.n();
    let mut sq_err = 0.0f64;
    let mut sq_sig = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut agree = 0usize;
    for i in 0..n {
        let (er, ar) = (exact.row(i), approx.row(i));
        let mut best_e = 0usize;
        let mut best_a = 0usize;
        for c in 0..head_dim {
            let d = (ar[c] - er[c]) as f64;
            sq_err += d * d;
            sq_sig += (er[c] as f64) * (er[c] as f64);
            max_abs = max_abs.max(d.abs());
            if er[c] > er[best_e] {
                best_e = c;
            }
            if ar[c] > ar[best_a] {
                best_a = c;
            }
        }
        if best_e == best_a {
            agree += 1;
        }
    }
    let count = (n * head_dim) as f64;
    Ok(AttentionErrorReport {
        mse: sq_err / count,
        max_abs,
        sqnr_db: if sq_err > 0.0 { 10.0 * (sq_sig / sq_err).log10() } else { f64::INFINITY },
        argmax_agreement: agree as f64 / n as f64,
        saturation_events: fixed.saturation.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{grid_2d, longformer};

    #[test]
    fn error_is_small_on_normalized_inputs() {
        let p = longformer(64, 16, 1).unwrap();
        let r = attention_error(&p, 16, 3).unwrap();
        assert!(r.sqnr_db > 15.0, "sqnr {}", r.sqnr_db);
        assert!(r.max_abs < 0.3, "max {}", r.max_abs);
        assert!(r.argmax_agreement > 0.9, "argmax {}", r.argmax_agreement);
        assert_eq!(r.saturation_events, 0);
    }

    #[test]
    fn works_on_2d_patterns() {
        let p = grid_2d(8, 8, 3, 3, 1).unwrap();
        let r = attention_error(&p, 8, 9).unwrap();
        assert!(r.mse < 0.01, "mse {}", r.mse);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = longformer(32, 8, 1).unwrap();
        let a = attention_error(&p, 8, 5).unwrap();
        let b = attention_error(&p, 8, 5).unwrap();
        assert_eq!(a, b);
        let c = attention_error(&p, 8, 6).unwrap();
        assert_ne!(a.mse, c.mse);
    }
}
