//! Assembly of the Table 3 substitute: three tasks, paper numbers
//! alongside.

use salo_patterns::{grid_2d, longformer};

use crate::{run_task, TaskConfig, TaskResult};

/// One row of the quantization-accuracy table.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTableRow {
    /// Task name (the paper model it proxies).
    pub name: String,
    /// The paper dataset it proxies.
    pub proxy_for: String,
    /// Paper-reported original accuracy (%).
    pub paper_original: f64,
    /// Paper-reported quantized accuracy (%).
    pub paper_quantized: f64,
    /// Our synthetic-task result (fractions in `[0, 1]`).
    pub ours: TaskResult,
}

/// Runs the three proxy tasks. `scale` shrinks the workload for quick runs
/// (1 = the full benchmark size used by `table3_quantization`).
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn table3_rows(scale: usize) -> Result<Vec<QuantTableRow>, salo_kernels::KernelError> {
    assert!(scale > 0, "scale must be positive");
    let samples = 120 * scale;
    let tasks = [
        (
            "Longformer-window (synthetic)",
            "IMDB",
            95.34,
            95.20,
            TaskConfig {
                pattern: longformer(128 * scale.min(4), 16, 1).expect("pattern"),
                head_dim: 16,
                train_samples: samples * 3 / 5,
                test_samples: samples * 2 / 5,
                margin: 0.15,
                seed: 101,
            },
        ),
        (
            "Longformer-globals (synthetic)",
            "Hyperpartisan",
            93.42,
            93.46,
            TaskConfig {
                pattern: longformer(128 * scale.min(4), 24, 4).expect("pattern"),
                head_dim: 16,
                train_samples: samples * 3 / 5,
                test_samples: samples * 2 / 5,
                margin: 0.1,
                seed: 202,
            },
        ),
        (
            "ViL-2D-window (synthetic)",
            "ImageNet-1K",
            82.87,
            82.80,
            TaskConfig {
                pattern: grid_2d(12, 12, 5, 5, 1).expect("pattern"),
                head_dim: 16,
                train_samples: samples * 3 / 5,
                test_samples: samples * 2 / 5,
                margin: 0.08,
                seed: 303,
            },
        ),
    ];

    let mut rows = Vec::with_capacity(tasks.len());
    for (name, proxy, orig, quant, config) in tasks {
        rows.push(QuantTableRow {
            name: name.to_string(),
            proxy_for: proxy.to_string(),
            paper_original: orig,
            paper_quantized: quant,
            ours: run_task(&config)?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_reproduce_the_claim_at_small_scale() {
        let rows = table3_rows(1).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // The claim: quantization does not meaningfully degrade
            // accuracy. Allow a few points at this reduced sample size.
            let drop = row.ours.accuracy_f32 - row.ours.accuracy_quantized;
            assert!(drop.abs() < 0.1, "{}: drop {drop}", row.name);
            assert!(row.ours.accuracy_f32 > 0.8, "{}: f32 {}", row.name, row.ours.accuracy_f32);
            // Paper deltas are fractions of a point.
            assert!((row.paper_original - row.paper_quantized).abs() < 0.2);
        }
    }
}
