//! Per-tensor dynamic scaling: the extension SALO's fixed Q.4 leaves on
//! the table.
//!
//! SALO quantizes with one static format (§6.4). Production INT8 stacks
//! instead pick a per-tensor power-of-two scale from the observed range,
//! spending the 8 bits where the data lives. This module implements that
//! calibration and measures how much output fidelity it buys over static
//! Q.4 across input scales — for unit-normal inputs (the LayerNorm'd
//! case the paper targets) the static format is near-optimal, which is
//! presumably why the paper kept the simpler hardware; for badly-scaled
//! inputs dynamic calibration wins by tens of dB.

use salo_kernels::{sparse_attention, KernelError, Matrix, Qkv};
use salo_patterns::HybridPattern;

/// A power-of-two per-tensor quantization scale: `value ~ raw * 2^-exp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicScale {
    /// Fraction bits chosen for the tensor.
    pub exp: i32,
}

impl DynamicScale {
    /// Calibrates the scale from a tensor's maximum magnitude: the
    /// largest power-of-two step that keeps `max|x|` inside the 8-bit
    /// range.
    #[must_use]
    pub fn calibrate(values: &Matrix<f32>) -> Self {
        let max = values.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            return Self { exp: 7 };
        }
        // raw = x * 2^exp must fit in [-128, 127]: exp <= log2(127/max).
        let exp = (127.0 / max).log2().floor() as i32;
        Self { exp: exp.clamp(-8, 15) }
    }

    /// Quantize-dequantize a tensor at this scale.
    #[must_use]
    pub fn round_trip(&self, values: &Matrix<f32>) -> Matrix<f32> {
        let scale = (self.exp as f32).exp2();
        values.map(|x| {
            let raw = (x * scale).round().clamp(-128.0, 127.0);
            raw / scale
        })
    }
}

/// Output SQNR (dB) of attention computed on quantized inputs vs exact.
fn output_sqnr(
    pattern: &HybridPattern,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
    reference: &Matrix<f32>,
) -> Result<f64, KernelError> {
    let out = sparse_attention(pattern, q, k, v, scale)?;
    let mse = out.mse(reference);
    let signal = reference.frobenius().powi(2) / reference.as_slice().len().max(1) as f64;
    Ok(if mse > 0.0 { 10.0 * (signal / mse).log10() } else { f64::INFINITY })
}

/// Static-Q.4 vs dynamically-calibrated quantization on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicComparison {
    /// Output SQNR with the paper's static Q.4 inputs (dB).
    pub static_q4_db: f64,
    /// Output SQNR with per-tensor calibrated scales (dB).
    pub dynamic_db: f64,
    /// The calibrated fraction bits chosen for Q/K/V.
    pub chosen_exp: (i32, i32, i32),
}

/// Runs the comparison on inputs of standard deviation `input_std`.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn compare_dynamic(
    pattern: &HybridPattern,
    head_dim: usize,
    input_std: f64,
    seed: u64,
) -> Result<DynamicComparison, KernelError> {
    let base = Qkv::random(pattern.n(), head_dim, seed);
    let rescale = |m: &Matrix<f32>| m.map(|x| x * input_std as f32);
    let (q, k, v) = (rescale(&base.q), rescale(&base.k), rescale(&base.v));
    let attn_scale = 1.0 / (head_dim.max(1) as f32).sqrt();
    let reference = sparse_attention(pattern, &q, &k, &v, attn_scale)?;

    // Static Q.4: 4 fraction bits regardless of the data.
    let q4 = DynamicScale { exp: 4 };
    let static_q4_db = output_sqnr(
        pattern,
        &q4.round_trip(&q),
        &q4.round_trip(&k),
        &q4.round_trip(&v),
        attn_scale,
        &reference,
    )?;

    // Dynamic: calibrate each tensor.
    let (sq, sk, sv) =
        (DynamicScale::calibrate(&q), DynamicScale::calibrate(&k), DynamicScale::calibrate(&v));
    let dynamic_db = output_sqnr(
        pattern,
        &sq.round_trip(&q),
        &sk.round_trip(&k),
        &sv.round_trip(&v),
        attn_scale,
        &reference,
    )?;

    Ok(DynamicComparison { static_q4_db, dynamic_db, chosen_exp: (sq.exp, sk.exp, sv.exp) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;

    fn pattern() -> HybridPattern {
        longformer(96, 12, 1).unwrap()
    }

    #[test]
    fn calibration_picks_sane_exponents() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f32 * 0.1);
        let s = DynamicScale::calibrate(&m);
        // max = 0.6: 127/0.6 ~ 211 -> exp 7.
        assert_eq!(s.exp, 7);
        let zeros = Matrix::zeros(2, 2);
        assert_eq!(DynamicScale::calibrate(&zeros).exp, 7);
    }

    #[test]
    fn round_trip_error_bounded_by_step() {
        let m = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f32 - 32.0) * 0.05);
        let s = DynamicScale::calibrate(&m);
        let back = s.round_trip(&m);
        let step = 0.5 / (s.exp as f32).exp2();
        assert!(back.max_abs_diff(&m) <= step + 1e-6);
    }

    #[test]
    fn unit_normal_inputs_static_is_near_optimal() {
        // The paper's regime: LayerNorm'd inputs. Dynamic calibration
        // picks Q.4-Q.5 itself, so the gain is small.
        let c = compare_dynamic(&pattern(), 16, 1.0, 3).unwrap();
        assert!((4..=5).contains(&c.chosen_exp.0), "chosen {:?}", c.chosen_exp);
        assert!(c.dynamic_db - c.static_q4_db < 8.0, "gain {}", c.dynamic_db - c.static_q4_db);
        assert!(c.static_q4_db > 25.0);
    }

    #[test]
    fn small_scale_inputs_dynamic_wins_big() {
        // Inputs at std 0.05: static Q.4's 1/16 step is bigger than the
        // data; dynamic calibration rescues tens of dB.
        let c = compare_dynamic(&pattern(), 16, 0.05, 4).unwrap();
        assert!(
            c.dynamic_db > c.static_q4_db + 20.0,
            "static {} dynamic {}",
            c.static_q4_db,
            c.dynamic_db
        );
    }

    #[test]
    fn large_scale_inputs_static_clips() {
        // Inputs at std 4: static Q.4 clips at +-8 while dynamic backs
        // off to fewer fraction bits.
        let c = compare_dynamic(&pattern(), 16, 4.0, 5).unwrap();
        assert!(c.chosen_exp.0 < 4, "chosen {:?}", c.chosen_exp);
        assert!(c.dynamic_db > c.static_q4_db, "clipping must hurt static");
    }
}
