//! Fraction-bit sweep: why SALO picked Q.4.
//!
//! An 8-bit fixed-point format splits its bits between range and
//! resolution: `f` fraction bits give a step of `2^-f` but a range of
//! `±2^(7-f)`. Too few fraction bits and quantization noise dominates;
//! too many and normalized attention inputs (±3-4 sigma) clip. This sweep
//! quantizes Q/K/V at each split, runs *exact* attention on the
//! dequantized values, and measures output fidelity against the
//! unquantized reference — isolating the input-format choice from the
//! rest of the datapath. The resulting curve peaks at 4–5 fraction bits
//! for unit-normal inputs, which is the paper's Q.4 (§6.4).

use salo_kernels::{sparse_attention, KernelError, Matrix, Qkv};
use salo_patterns::HybridPattern;

/// One point of the fraction-bit sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitwidthPoint {
    /// Fraction bits of the 8-bit input format.
    pub frac_bits: u32,
    /// Representable range `±2^(7-f)` (approximately).
    pub range: f64,
    /// Output signal-to-noise ratio vs the unquantized reference (dB).
    pub sqnr_db: f64,
    /// Largest absolute output error.
    pub max_abs: f64,
    /// Fraction of inputs that clipped at the format's range.
    pub clipped: f64,
}

/// Quantizes a matrix to an 8-bit format with `frac_bits` fraction bits,
/// returning the dequantized values and the clip count.
fn quantize_matrix(m: &Matrix<f32>, frac_bits: u32) -> (Matrix<f32>, usize) {
    let scale = 2.0f32.powi(frac_bits as i32);
    let mut clipped = 0usize;
    let out = m.map(|x| {
        let raw = (x * scale).round();
        let clamped = raw.clamp(f32::from(i8::MIN), f32::from(i8::MAX));
        if clamped != raw {
            clipped += 1;
        }
        clamped / scale
    });
    (out, clipped)
}

/// Sweeps fraction bits `bits` over one pattern/head, returning a fidelity
/// point per configuration.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn sweep_fraction_bits(
    pattern: &HybridPattern,
    head_dim: usize,
    seed: u64,
    bits: &[u32],
) -> Result<Vec<BitwidthPoint>, KernelError> {
    let qkv = Qkv::random(pattern.n(), head_dim, seed);
    let scale = 1.0 / (head_dim.max(1) as f32).sqrt();
    let reference = sparse_attention(pattern, &qkv.q, &qkv.k, &qkv.v, scale)?;
    let total_inputs = (3 * pattern.n() * head_dim) as f64;

    let mut points = Vec::with_capacity(bits.len());
    for &f in bits {
        let (q, c1) = quantize_matrix(&qkv.q, f);
        let (k, c2) = quantize_matrix(&qkv.k, f);
        let (v, c3) = quantize_matrix(&qkv.v, f);
        let out = sparse_attention(pattern, &q, &k, &v, scale)?;
        let mse = out.mse(&reference);
        let signal = reference.frobenius().powi(2) / reference.as_slice().len().max(1) as f64;
        points.push(BitwidthPoint {
            frac_bits: f,
            range: f64::from(2.0f32).powi(7 - f as i32),
            sqnr_db: if mse > 0.0 { 10.0 * (signal / mse).log10() } else { f64::INFINITY },
            max_abs: f64::from(out.max_abs_diff(&reference)),
            clipped: (c1 + c2 + c3) as f64 / total_inputs,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;

    fn sweep() -> Vec<BitwidthPoint> {
        let p = longformer(96, 16, 1).unwrap();
        sweep_fraction_bits(&p, 16, 5, &[1, 2, 3, 4, 5, 6, 7]).unwrap()
    }

    #[test]
    fn fidelity_peaks_in_the_middle() {
        let points = sweep();
        let best = points.iter().max_by(|a, b| a.sqnr_db.total_cmp(&b.sqnr_db)).expect("non-empty");
        // Unit-normal inputs: the sweet spot is 4-6 fraction bits — the
        // paper's Q.4 sits on the plateau.
        assert!((4..=6).contains(&best.frac_bits), "peak at {} fraction bits", best.frac_bits);
        // Both extremes are visibly worse.
        let at = |f: u32| points.iter().find(|p| p.frac_bits == f).unwrap().sqnr_db;
        assert!(best.sqnr_db > at(1) + 3.0, "coarse end");
        assert!(best.sqnr_db > at(7) - 1e-9, "clipped end");
    }

    #[test]
    fn clipping_grows_with_fraction_bits() {
        let points = sweep();
        let clip = |f: u32| points.iter().find(|p| p.frac_bits == f).unwrap().clipped;
        assert_eq!(clip(2), 0.0, "range ±32 never clips normals");
        assert!(clip(7) > 0.05, "range ±1 clips plenty: {}", clip(7));
        assert!(clip(7) > clip(5));
    }

    #[test]
    fn range_column_is_correct() {
        let points = sweep();
        let p4 = points.iter().find(|p| p.frac_bits == 4).unwrap();
        assert!((p4.range - 8.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        assert_eq!(sweep(), sweep());
    }
}
