//! The end-to-end synthetic task: classification over attention-pooled
//! features, with `f32` vs quantized attention.
//!
//! Construction mirrors how a real fine-tuned transformer head sees
//! attention: token embeddings are standard normal (LayerNorm statistics),
//! the attention layer runs one head over a hybrid sparse pattern, features
//! are the mean-pooled attention output, and the label is a linear readout
//! of those features with a controlled margin. A logistic head trained on
//! `f32` features is then evaluated with quantized-attention features —
//! any accuracy gap is *caused by quantization alone*, which is exactly
//! the quantity Table 3 reports.

use salo_kernels::{fixed_sparse_attention, sparse_attention, FixedAttention, Matrix, Qkv};
use salo_patterns::HybridPattern;

use crate::LogisticHead;

/// Configuration of one synthetic task instance.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    /// The attention pattern (defines the receptive structure).
    pub pattern: HybridPattern,
    /// Head dimension (also the feature dimension).
    pub head_dim: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of evaluation samples.
    pub test_samples: usize,
    /// Decision margin as a fraction of the score standard deviation;
    /// smaller margins make the task more quantization-sensitive.
    pub margin: f64,
    /// Base RNG seed.
    pub seed: u64,
}

/// The outcome of one task run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskResult {
    /// Test accuracy with `f32` attention features (the "Original" column).
    pub accuracy_f32: f64,
    /// Test accuracy with quantized attention features, head unchanged
    /// (the "Quantized" column).
    pub accuracy_quantized: f64,
    /// Test accuracy after retraining the head on quantized features
    /// (the paper's quantization-aware fine-tuning analogue).
    pub accuracy_quantized_finetuned: f64,
}

/// Mean-pools an attention output into a feature vector.
fn pool(out: &Matrix<f32>) -> Vec<f64> {
    let (n, d) = out.shape();
    let mut f = vec![0.0f64; d];
    for i in 0..n {
        for (c, fe) in f.iter_mut().enumerate() {
            *fe += out.get(i, c) as f64;
        }
    }
    for fe in &mut f {
        *fe /= n as f64;
    }
    f
}

/// Runs the full experiment.
///
/// # Errors
///
/// Propagates kernel errors from the attention computations.
///
/// # Panics
///
/// Panics if `train_samples == 0` or `test_samples == 0`.
pub fn run_task(config: &TaskConfig) -> Result<TaskResult, salo_kernels::KernelError> {
    assert!(config.train_samples > 0 && config.test_samples > 0, "empty task");
    let total = config.train_samples + config.test_samples;
    let d = config.head_dim;
    let datapath = FixedAttention::new(d);

    // 1. Generate samples: per-sample Q/K/V, f32 and quantized features.
    let mut feats_f32 = Vec::with_capacity(total);
    let mut feats_quant = Vec::with_capacity(total);
    for s in 0..total {
        let qkv = Qkv::random(config.pattern.n(), d, config.seed.wrapping_add(s as u64 * 7919));
        let exact = sparse_attention(&config.pattern, &qkv.q, &qkv.k, &qkv.v, datapath.scale)?;
        let fixed = fixed_sparse_attention(&config.pattern, &qkv.q, &qkv.k, &qkv.v, &datapath)?;
        feats_f32.push(pool(&exact));
        feats_quant.push(pool(&fixed.to_f32()));
    }

    // 2. Labels: a fixed random readout of the f32 features, with samples
    //    inside the margin band pushed out by relabelling against a scaled
    //    threshold (keeps the task learnable but not trivially robust).
    let readout: Vec<f64> =
        (0..d).map(|c| if c % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + c as f64 * 0.1)).collect();
    let scores: Vec<f64> =
        feats_f32.iter().map(|f| f.iter().zip(&readout).map(|(x, w)| x * w).sum::<f64>()).collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / scores.len() as f64;
    let band = config.margin * var.sqrt();
    let labels: Vec<i8> = scores.iter().map(|&s| if s - mean >= band { 1 } else { -1 }).collect();

    let (train_x, test_x) = feats_f32.split_at(config.train_samples);
    let (train_xq, test_xq) = feats_quant.split_at(config.train_samples);
    let (train_y, test_y) = labels.split_at(config.train_samples);

    // 3. Train on f32 features (the "pretrained" model).
    let mut head = LogisticHead::new(d);
    head.fit(train_x, train_y, 400, 1.0);
    let accuracy_f32 = head.accuracy(test_x, test_y);

    // 4. Evaluate the same head on quantized features.
    let accuracy_quantized = head.accuracy(test_xq, test_y);

    // 5. Quantization-aware fine-tuning: retrain on quantized features.
    let mut head_q = head.clone();
    head_q.fit(train_xq, train_y, 200, 0.5);
    let accuracy_quantized_finetuned = head_q.accuracy(test_xq, test_y);

    Ok(TaskResult { accuracy_f32, accuracy_quantized, accuracy_quantized_finetuned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;

    fn small_config(seed: u64) -> TaskConfig {
        TaskConfig {
            pattern: longformer(32, 8, 1).unwrap(),
            head_dim: 8,
            train_samples: 60,
            test_samples: 40,
            margin: 0.2,
            seed,
        }
    }

    #[test]
    fn f32_baseline_is_learnable() {
        let r = run_task(&small_config(1)).unwrap();
        assert!(r.accuracy_f32 > 0.85, "f32 accuracy {}", r.accuracy_f32);
    }

    #[test]
    fn quantization_costs_at_most_a_few_points() {
        let r = run_task(&small_config(2)).unwrap();
        let drop = r.accuracy_f32 - r.accuracy_quantized;
        assert!(drop.abs() < 0.08, "quantization drop {drop}");
        // Fine-tuning recovers (or improves) the quantized accuracy.
        assert!(r.accuracy_quantized_finetuned >= r.accuracy_quantized - 0.03);
    }

    #[test]
    fn deterministic() {
        let a = run_task(&small_config(3)).unwrap();
        let b = run_task(&small_config(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty task")]
    fn rejects_empty() {
        let mut c = small_config(4);
        c.train_samples = 0;
        let _ = run_task(&c);
    }
}
