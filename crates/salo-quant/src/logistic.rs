//! A small logistic-regression head trained by gradient descent.
//!
//! Plays the role of the task head on top of attention features in the
//! Table 3 substitute experiment; retraining it on quantized features is
//! the analogue of the paper's quantization-aware fine-tuning.

/// Binary logistic regression with bias.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticHead {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticHead {
    /// A zero-initialized head for `dim` features.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self { weights: vec![0.0; dim], bias: 0.0 }
    }

    /// The decision score `w . x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    #[must_use]
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }

    /// Predicted label in `{-1, +1}`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.score(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Full-batch gradient descent on the logistic loss.
    ///
    /// Deterministic: fixed epochs, fixed learning rate, no shuffling.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[i8], epochs: usize, lr: f64) {
        assert_eq!(xs.len(), ys.len(), "dataset length mismatch");
        if xs.is_empty() {
            return;
        }
        let dim = self.weights.len();
        let m = xs.len() as f64;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0f64; dim];
            let mut grad_b = 0.0f64;
            for (x, &y) in xs.iter().zip(ys) {
                let y = f64::from(y);
                // dL/ds for L = ln(1 + exp(-y s)).
                let s = self.score(x);
                let g = -y / (1.0 + (y * s).exp());
                for (gw, &xv) in grad_w.iter_mut().zip(x) {
                    *gw += g * xv;
                }
                grad_b += g;
            }
            for (w, gw) in self.weights.iter_mut().zip(&grad_w) {
                *w -= lr * gw / m;
            }
            self.bias -= lr * grad_b / m;
        }
    }

    /// Accuracy on a labelled set (fraction in `[0, 1]`).
    #[must_use]
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[i8]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs.iter().zip(ys).filter(|(x, &y)| self.predict(x) == y).count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_set() -> (Vec<Vec<f64>>, Vec<i8>) {
        // y = sign(x0 - x1) with margin 0.5.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..40 {
            let t = k as f64 * 0.13;
            xs.push(vec![t + 0.5, t]);
            ys.push(1);
            xs.push(vec![t, t + 0.5]);
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = separable_set();
        let mut head = LogisticHead::new(2);
        assert!(head.accuracy(&xs, &ys) < 0.9, "untrained head should not be perfect");
        head.fit(&xs, &ys, 500, 0.5);
        assert!((head.accuracy(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = separable_set();
        let mut a = LogisticHead::new(2);
        let mut b = LogisticHead::new(2);
        a.fit(&xs, &ys, 100, 0.3);
        b.fit(&xs, &ys, 100, 0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_dataset_is_inert() {
        let mut head = LogisticHead::new(3);
        head.fit(&[], &[], 10, 0.1);
        assert_eq!(head, LogisticHead::new(3));
        assert_eq!(head.accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn dimension_checked() {
        let head = LogisticHead::new(2);
        let _ = head.score(&[1.0]);
    }
}
