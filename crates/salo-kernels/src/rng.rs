//! Deterministic Gaussian sampling for workload generation.
//!
//! The evaluation workloads need query/key/value matrices with realistic
//! statistics. Attention inputs after layer normalization are approximately
//! standard normal, so we sample `N(mean, std)` via the Box–Muller transform
//! on top of a seeded [`rand`] generator (the `rand` crate deliberately
//! ships no normal distribution; `rand_distr` is avoided to keep the
//! dependency set minimal).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Matrix;

/// A seeded Gaussian sampler (Box–Muller over `StdRng`).
#[derive(Debug)]
pub struct NormalSampler {
    rng: StdRng,
    spare: Option<f64>,
    mean: f64,
    std: f64,
}

impl NormalSampler {
    /// Creates a sampler for `N(mean, std^2)` with a fixed seed.
    #[must_use]
    pub fn new(seed: u64, mean: f64, std: f64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare: None, mean, std }
    }

    /// Standard normal sampler.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 0.0, 1.0)
    }

    /// Draws the next sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std * z;
        }
        // Box–Muller: two uniforms -> two normals.
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        self.mean + self.std * r * theta.cos()
    }
}

/// Samples a vector of `len` Gaussian values.
#[must_use]
pub fn gaussian_vec(seed: u64, len: usize, mean: f64, std: f64) -> Vec<f32> {
    let mut sampler = NormalSampler::new(seed, mean, std);
    (0..len).map(|_| sampler.sample() as f32).collect()
}

/// Samples a `rows x cols` matrix of Gaussian values.
#[must_use]
pub fn gaussian_matrix(seed: u64, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix<f32> {
    let mut sampler = NormalSampler::new(seed, mean, std);
    Matrix::from_fn(rows, cols, |_, _| sampler.sample() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = gaussian_vec(42, 100, 0.0, 1.0);
        let b = gaussian_vec(42, 100, 0.0, 1.0);
        assert_eq!(a, b);
        let c = gaussian_vec(43, 100, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn moments_are_plausible() {
        let xs = gaussian_vec(7, 50_000, 0.0, 1.0);
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mean_and_std_applied() {
        let xs = gaussian_vec(9, 20_000, 3.0, 0.5);
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn matrix_shape() {
        let m = gaussian_matrix(1, 4, 6, 0.0, 1.0);
        assert_eq!(m.shape(), (4, 6));
    }

    #[test]
    fn spare_path_used() {
        let mut s = NormalSampler::standard(5);
        // Two consecutive samples exercise both Box–Muller outputs.
        let a = s.sample();
        let b = s.sample();
        assert!(a.is_finite() && b.is_finite());
    }
}
