use salo_patterns::AttentionShape;

use crate::{gaussian_matrix, KernelError, Matrix};

/// One head's query, key and value matrices (`n x d` each).
#[derive(Debug, Clone, PartialEq)]
pub struct Qkv {
    /// Query matrix.
    pub q: Matrix<f32>,
    /// Key matrix.
    pub k: Matrix<f32>,
    /// Value matrix.
    pub v: Matrix<f32>,
}

impl Qkv {
    /// Bundles three matrices, validating that they share one shape.
    ///
    /// # Errors
    ///
    /// Returns a dimension error on shape mismatch.
    pub fn new(q: Matrix<f32>, k: Matrix<f32>, v: Matrix<f32>) -> Result<Self, KernelError> {
        if q.shape() != k.shape() || q.shape() != v.shape() {
            return Err(KernelError::DimMismatch {
                context: "qkv bundle",
                left: q.shape(),
                right: if q.shape() != k.shape() { k.shape() } else { v.shape() },
            });
        }
        Ok(Self { q, k, v })
    }

    /// Deterministic standard-normal inputs for an `n x d` head.
    ///
    /// Attention inputs sit downstream of layer normalization, so a unit
    /// normal is the right synthetic distribution.
    #[must_use]
    pub fn random(n: usize, d: usize, seed: u64) -> Self {
        Self {
            q: gaussian_matrix(seed.wrapping_mul(3).wrapping_add(1), n, d, 0.0, 1.0),
            k: gaussian_matrix(seed.wrapping_mul(3).wrapping_add(2), n, d, 0.0, 1.0),
            v: gaussian_matrix(seed.wrapping_mul(3).wrapping_add(3), n, d, 0.0, 1.0),
        }
    }

    /// One random [`Qkv`] per head of `shape`.
    #[must_use]
    pub fn random_heads(shape: &AttentionShape, seed: u64) -> Vec<Self> {
        (0..shape.num_heads)
            .map(|h| Self::random(shape.seq_len, shape.head_dim, seed.wrapping_add(h as u64 * 101)))
            .collect()
    }

    /// Sequence length.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.q.rows()
    }

    /// Head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.q.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shapes() {
        let a = Matrix::zeros(4, 2);
        let b = Matrix::zeros(4, 3);
        assert!(Qkv::new(a.clone(), b.clone(), a.clone()).is_err());
        assert!(Qkv::new(a.clone(), a.clone(), b).is_err());
        let ok = Qkv::new(a.clone(), a.clone(), a).unwrap();
        assert_eq!(ok.seq_len(), 4);
        assert_eq!(ok.head_dim(), 2);
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let a = Qkv::random(8, 4, 1);
        let b = Qkv::random(8, 4, 1);
        assert_eq!(a, b);
        assert_ne!(a.q, a.k, "q and k use distinct streams");
        let c = Qkv::random(8, 4, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn per_head_generation() {
        let shape = AttentionShape::new(16, 8, 3).unwrap();
        let heads = Qkv::random_heads(&shape, 9);
        assert_eq!(heads.len(), 3);
        assert_eq!(heads[0].seq_len(), 16);
        assert_ne!(heads[0], heads[1]);
    }
}
