use std::error::Error;
use std::fmt;

use salo_fixed::FixedError;
use salo_patterns::PatternError;

/// Errors from the reference kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KernelError {
    /// Two matrices that must agree in shape do not.
    DimMismatch {
        /// Description of the operands involved.
        context: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// The pattern's sequence length does not match the matrices.
    PatternLengthMismatch {
        /// Pattern sequence length.
        pattern_n: usize,
        /// Matrix row count.
        rows: usize,
    },
    /// An error bubbled up from the pattern layer.
    Pattern(PatternError),
    /// An error bubbled up from the fixed-point layer.
    Fixed(FixedError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DimMismatch { context, left, right } => write!(
                f,
                "dimension mismatch in {context}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            KernelError::PatternLengthMismatch { pattern_n, rows } => {
                write!(f, "pattern length {pattern_n} does not match {rows} matrix rows")
            }
            KernelError::Pattern(e) => write!(f, "pattern error: {e}"),
            KernelError::Fixed(e) => write!(f, "fixed-point error: {e}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Pattern(e) => Some(e),
            KernelError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for KernelError {
    fn from(e: PatternError) -> Self {
        KernelError::Pattern(e)
    }
}

impl From<FixedError> for KernelError {
    fn from(e: FixedError) -> Self {
        KernelError::Fixed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = KernelError::DimMismatch { context: "matmul", left: (2, 3), right: (4, 5) };
        assert!(e.to_string().contains("matmul"));
        assert!(e.source().is_none());
        let e = KernelError::from(PatternError::EmptySequence);
        assert!(e.source().is_some());
        let e = KernelError::from(FixedError::EmptySoftmaxRow);
        assert!(e.to_string().contains("fixed-point"));
    }
}
