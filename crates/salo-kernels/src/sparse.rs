//! Exact sparse attention restricted to a hybrid pattern.

use salo_fixed::softmax_f64;
use salo_patterns::HybridPattern;

use crate::dense::check_shapes;
use crate::{KernelError, Matrix};

/// Computes exact sparse attention: for each query `i`, softmax over only
/// the keys the pattern keeps, then the weighted sum of the corresponding
/// value rows.
///
/// Rows whose pattern coverage is empty (possible when every window offset
/// falls outside the sequence) produce zero output rows.
///
/// # Errors
///
/// Returns a dimension error if matrices disagree or the pattern length
/// does not match.
pub fn sparse_attention(
    pattern: &HybridPattern,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
) -> Result<Matrix<f32>, KernelError> {
    check_shapes(q, k, v)?;
    let (n, d) = q.shape();
    if pattern.n() != n {
        return Err(KernelError::PatternLengthMismatch { pattern_n: pattern.n(), rows: n });
    }
    let mut out = Matrix::zeros(n, d);
    for i in 0..n {
        let keys = pattern.row_keys(i);
        if keys.is_empty() {
            continue;
        }
        let qi = q.row(i);
        let scores: Vec<f64> = keys
            .iter()
            .map(|&j| {
                let kj = k.row(j);
                let dot: f64 = qi.iter().zip(kj).map(|(&a, &b)| a as f64 * b as f64).sum();
                dot * scale as f64
            })
            .collect();
        let probs = softmax_f64(&scores);
        let out_row = out.row_mut(i);
        for (&j, &p) in keys.iter().zip(&probs) {
            for (o, &ve) in out_row.iter_mut().zip(v.row(j)) {
                *o += (p * ve as f64) as f32;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense_attention, gaussian_matrix};
    use salo_patterns::{longformer, sliding_only, HybridPattern, Window};

    #[test]
    fn full_window_matches_dense() {
        let n = 12;
        let p = sliding_only(n, 2 * n + 1).unwrap(); // covers everything
        let q = gaussian_matrix(1, n, 4, 0.0, 1.0);
        let k = gaussian_matrix(2, n, 4, 0.0, 1.0);
        let v = gaussian_matrix(3, n, 4, 0.0, 1.0);
        let sparse = sparse_attention(&p, &q, &k, &v, 0.5).unwrap();
        let dense = dense_attention(&q, &k, &v, 0.5).unwrap();
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn pattern_length_checked() {
        let p = sliding_only(8, 3).unwrap();
        let m = Matrix::zeros(9, 2);
        assert!(matches!(
            sparse_attention(&p, &m, &m, &m, 1.0),
            Err(KernelError::PatternLengthMismatch { pattern_n: 8, rows: 9 })
        ));
    }

    #[test]
    fn masked_keys_do_not_influence_output() {
        let n = 10;
        let p = sliding_only(n, 3).unwrap();
        let q = gaussian_matrix(4, n, 4, 0.0, 1.0);
        let k = gaussian_matrix(5, n, 4, 0.0, 1.0);
        let mut v1 = gaussian_matrix(6, n, 4, 0.0, 1.0);
        let out1 = sparse_attention(&p, &q, &k, &v1, 0.5).unwrap();
        // Perturb a value row far outside every window of row 5.
        for j in 0..4 {
            v1.set(0, j, 1000.0);
        }
        let out2 = sparse_attention(&p, &q, &k, &v1, 0.5).unwrap();
        // Row 5 attends keys {4,5,6} only: unchanged.
        for j in 0..4 {
            assert_eq!(out1.get(5, j), out2.get(5, j));
        }
        // Row 0 attends key 0: changed.
        assert!(out1.max_abs_diff(&out2) > 100.0);
    }

    #[test]
    fn global_token_sees_everything() {
        let n = 8;
        let p = longformer(n, 3, 1).unwrap();
        let q = Matrix::zeros(n, 2); // uniform attention
        let k = gaussian_matrix(7, n, 2, 0.0, 1.0);
        let v = Matrix::from_fn(n, 2, |i, _| i as f32);
        let out = sparse_attention(&p, &q, &k, &v, 1.0).unwrap();
        // Global row 0 averages all value rows: (0+..+7)/8 = 3.5.
        assert!((out.get(0, 0) - 3.5).abs() < 1e-5);
        // Row 4 averages rows {0 (global col), 3, 4, 5}: (0+3+4+5)/4 = 3.
        assert!((out.get(4, 0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn empty_rows_produce_zeros() {
        // Window entirely out of range for every row except none.
        let p = HybridPattern::builder(4)
            .window(Window::sliding(10, 12).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let q = gaussian_matrix(8, 4, 2, 0.0, 1.0);
        let k = gaussian_matrix(9, 4, 2, 0.0, 1.0);
        let v = gaussian_matrix(10, 4, 2, 0.0, 1.0);
        let out = sparse_attention(&p, &q, &k, &v, 1.0).unwrap();
        // Rows 1..3 attend only the global column 0 -> exactly v[0].
        for i in 1..4 {
            for j in 0..2 {
                assert!((out.get(i, j) - v.get(0, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sparse_equals_dense_with_large_negative_mask() {
        // Cross-check the gather implementation against dense attention
        // where masked scores are forced to -inf.
        let n = 9;
        let p = longformer(n, 3, 1).unwrap();
        let q = gaussian_matrix(11, n, 3, 0.0, 1.0);
        let k = gaussian_matrix(12, n, 3, 0.0, 1.0);
        let v = gaussian_matrix(13, n, 3, 0.0, 1.0);
        let sparse = sparse_attention(&p, &q, &k, &v, 0.7).unwrap();

        // Manual masked-dense computation.
        let mut expected = Matrix::zeros(n, 3);
        for i in 0..n {
            let scores: Vec<f64> = (0..n)
                .map(|j| {
                    if p.allows(i, j) {
                        q.row(i)
                            .iter()
                            .zip(k.row(j))
                            .map(|(&a, &b)| a as f64 * b as f64)
                            .sum::<f64>()
                            * 0.7
                    } else {
                        f64::NEG_INFINITY
                    }
                })
                .collect();
            let probs = salo_fixed::softmax_f64(&scores);
            for (j, &pj) in probs.iter().enumerate() {
                if pj > 0.0 {
                    for c in 0..3 {
                        let cur = expected.get(i, c);
                        expected.set(i, c, cur + (pj * v.get(j, c) as f64) as f32);
                    }
                }
            }
        }
        assert!(sparse.max_abs_diff(&expected) < 1e-5);
    }
}
