use crate::KernelError;

/// A dense row-major matrix.
///
/// Deliberately small: just the operations the attention kernels and the
/// simulator need. Generic over `Copy` element types so the same container
/// holds `f32` activations and fixed-point formats.
///
/// # Example
///
/// ```
/// use salo_kernels::Matrix;
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self { rows, cols, data: vec![fill; len] }
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, KernelError> {
        if data.len() != rows * cols {
            return Err(KernelError::DimMismatch {
                context: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Extracts rows `range` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    #[must_use]
    pub fn row_block(&self, start: usize, len: usize) -> Matrix<T> {
        assert!(start + len <= self.rows, "row block out of bounds");
        Matrix {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Reorders rows by `perm` (`new row i = old row perm[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rows`.
    #[must_use]
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix<T> {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut out = Vec::with_capacity(self.data.len());
        for &src in perm {
            out.extend_from_slice(self.row(src));
        }
        Matrix { rows: self.rows, cols: self.cols, data: out }
    }
}

impl Matrix<f32> {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix<f32>) -> Result<Matrix<f32>, KernelError> {
        if self.cols != rhs.rows {
            return Err(KernelError::DimMismatch {
                context: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<f32> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Largest absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix<f32>) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Mean squared difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn mse(&self, other: &Matrix<f32>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        sum / self.data.len() as f64
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 2, |i, j| (10 * i + j) as f32);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        let mut m = m;
        m.set(0, 0, 99.0);
        assert_eq!(m.get(0, 0), 99.0);
        m.row_mut(2)[0] = -1.0;
        assert_eq!(m.get(2, 0), -1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0f32; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn diff_metrics() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b.set(1, 1, 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.mse(&b) - 0.0625).abs() < 1e-9);
        assert!((b.frobenius() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_block_and_permute() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let block = m.row_block(1, 2);
        assert_eq!(block.shape(), (2, 2));
        assert_eq!(block.get(0, 0), 1.0);
        let p = m.permute_rows(&[3, 2, 1, 0]);
        assert_eq!(p.get(0, 0), 3.0);
        assert_eq!(p.get(3, 1), 0.0);
    }

    #[test]
    fn map_changes_type() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f32);
        let d = m.map(|x| x as f64 * 2.0);
        assert_eq!(d.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let m = Matrix::<f32>::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
