//! Multi-head sparse attention: independent heads sharing one pattern.

use salo_patterns::HybridPattern;

use crate::{sparse_attention, KernelError, Matrix, Qkv};

/// Output of a multi-head attention layer.
#[derive(Debug, Clone)]
pub struct MultiHeadOutput {
    /// Per-head outputs, each `n x d_head`.
    pub heads: Vec<Matrix<f32>>,
}

impl MultiHeadOutput {
    /// Concatenates head outputs along the feature dimension
    /// (`n x (h * d_head)`), as the transformer block does before the
    /// output projection.
    #[must_use]
    pub fn concat(&self) -> Matrix<f32> {
        let n = self.heads.first().map_or(0, Matrix::rows);
        let d = self.heads.first().map_or(0, Matrix::cols);
        let h = self.heads.len();
        Matrix::from_fn(n, h * d, |i, j| self.heads[j / d].get(i, j % d))
    }
}

/// Runs exact `f32` sparse attention for every head.
///
/// All heads share the pattern (the paper's workloads use one hybrid
/// pattern per layer) and the scale `1/sqrt(d_head)`.
///
/// # Errors
///
/// Returns the first kernel error encountered (dimension or pattern
/// mismatch).
pub fn multi_head_attention(
    pattern: &HybridPattern,
    heads: &[Qkv],
) -> Result<MultiHeadOutput, KernelError> {
    let mut outputs = Vec::with_capacity(heads.len());
    for head in heads {
        let scale = 1.0 / (head.head_dim().max(1) as f32).sqrt();
        outputs.push(sparse_attention(pattern, &head.q, &head.k, &head.v, scale)?);
    }
    Ok(MultiHeadOutput { heads: outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{longformer, AttentionShape};

    #[test]
    fn heads_are_independent() {
        let shape = AttentionShape::new(12, 4, 2).unwrap();
        let p = longformer(12, 4, 1).unwrap();
        let heads = Qkv::random_heads(&shape, 3);
        let out = multi_head_attention(&p, &heads).unwrap();
        assert_eq!(out.heads.len(), 2);
        // Recomputing one head alone gives the same answer.
        let solo = sparse_attention(&p, &heads[1].q, &heads[1].k, &heads[1].v, 0.5).unwrap();
        assert!(out.heads[1].max_abs_diff(&solo) < 1e-6);
    }

    #[test]
    fn concat_layout() {
        let shape = AttentionShape::new(6, 3, 2).unwrap();
        let p = longformer(6, 3, 0).unwrap();
        let heads = Qkv::random_heads(&shape, 8);
        let out = multi_head_attention(&p, &heads).unwrap();
        let cat = out.concat();
        assert_eq!(cat.shape(), (6, 6));
        assert_eq!(cat.get(2, 4), out.heads[1].get(2, 1));
        assert_eq!(cat.get(5, 0), out.heads[0].get(5, 0));
    }

    #[test]
    fn empty_heads() {
        let p = longformer(6, 3, 0).unwrap();
        let out = multi_head_attention(&p, &[]).unwrap();
        assert!(out.heads.is_empty());
        assert_eq!(out.concat().shape(), (0, 0));
    }

    #[test]
    fn propagates_errors() {
        let p = longformer(6, 3, 0).unwrap();
        let bad = Qkv::random(7, 2, 1); // wrong n
        assert!(multi_head_attention(&p, &[bad]).is_err());
    }
}
