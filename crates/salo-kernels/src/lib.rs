//! Reference attention kernels for the SALO reproduction.
//!
//! The SALO paper evaluates its accelerator against *software* attention:
//! the vanilla dense computation (Fig. 1) and the hybrid sparse mechanisms
//! of Longformer/ViL. This crate provides those kernels:
//!
//! * [`Matrix`] — a small row-major matrix type with the operations the
//!   kernels need (no external linear-algebra dependency);
//! * [`dense_attention`] — the exact `softmax(Q K^T / sqrt(d)) V` reference;
//! * [`sparse_attention`] — the same computation restricted to a
//!   [`HybridPattern`](salo_patterns::HybridPattern), in exact `f32`;
//! * [`fixed_sparse_attention`] — the *golden model* of the accelerator's
//!   arithmetic: Q.4 quantized inputs, LUT exponential, LUT reciprocal,
//!   16-bit outputs, with the accelerator's accumulation order. The
//!   simulator in `salo-sim` must match this bit for bit on unsplit rows
//!   and within merge tolerance under window splitting;
//! * [`Qkv`] and [`gaussian_matrix`] — deterministic workload generation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod banded;
mod dense;
mod error;
mod fixed_attn;
mod matrix;
mod multihead;
mod qkv;
mod rng;
mod sparse;

pub use banded::banded_attention;
pub use dense::dense_attention;
pub use error::KernelError;
pub use fixed_attn::{fixed_sparse_attention, FixedAttention, FixedAttentionOutput};
pub use matrix::Matrix;
pub use multihead::{multi_head_attention, MultiHeadOutput};
pub use qkv::Qkv;
pub use rng::{gaussian_matrix, gaussian_vec, NormalSampler};
pub use sparse::sparse_attention;
