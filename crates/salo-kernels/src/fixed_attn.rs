//! The golden model of the accelerator's fixed-point attention.
//!
//! This kernel computes sparse attention with *exactly* the arithmetic of
//! the SALO datapath — Q.4 quantized inputs (scale folded into the query),
//! Q.8 scores from the stage-1 MAC chain, the piecewise-linear exponential,
//! the LUT reciprocal, Q.15 probabilities and the Q.19 stage-5 accumulator —
//! in the accelerator's accumulation order (keys ascending). The simulator
//! is validated against it: identical results for unsplit rows, and within
//! weighted-sum merge tolerance when the scheduler splits windows.

use salo_fixed::{
    fixed_softmax_parts, qk_dot, quantize, quantize_with_scale, sv_mac, ExpLut, Fix16x8, Fix8x4,
    MacSaturation, RecipUnit,
};
use salo_patterns::HybridPattern;

use crate::dense::check_shapes;
use crate::{KernelError, Matrix};

/// Configuration of the fixed-point attention datapath.
#[derive(Debug, Clone)]
pub struct FixedAttention {
    /// The piecewise-linear exponential unit.
    pub exp: ExpLut,
    /// The reciprocal unit.
    pub recip: RecipUnit,
    /// Score scale folded into query quantization (usually `1/sqrt(d)`).
    pub scale: f32,
}

impl FixedAttention {
    /// Default datapath for a head dimension: 32-segment exp LUT, 64-entry
    /// reciprocal LUT, `1/sqrt(d)` scaling.
    #[must_use]
    pub fn new(head_dim: usize) -> Self {
        Self {
            exp: ExpLut::new(32),
            recip: RecipUnit::new(64),
            scale: 1.0 / (head_dim.max(1) as f32).sqrt(),
        }
    }

    /// Overrides the folded scale.
    #[must_use]
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = scale;
        self
    }
}

/// The result of the fixed-point attention kernel.
#[derive(Debug, Clone)]
pub struct FixedAttentionOutput {
    /// 16-bit outputs in the accelerator's Q.8 output format.
    pub out: Matrix<Fix16x8>,
    /// Per-row softmax weights `W = Σ exp` (Q.16), used to cross-check the
    /// weighted-sum module.
    pub weights_q16: Vec<i64>,
    /// Saturation events observed across all MACs.
    pub saturation: MacSaturation,
}

impl FixedAttentionOutput {
    /// The output dequantized to `f32`.
    #[must_use]
    pub fn to_f32(&self) -> Matrix<f32> {
        self.out.map(Fix16x8::to_f32)
    }
}

/// Converts a Q.19 stage-5 accumulator value to the 16-bit output format
/// (round to nearest, saturate).
#[must_use]
pub(crate) fn q19_to_out(acc: i64) -> Fix16x8 {
    Fix16x8::from_q19_acc(acc)
}

/// Computes sparse attention in the accelerator's fixed-point arithmetic.
///
/// Rows with no kept keys produce zero output and zero weight.
///
/// # Errors
///
/// Returns a dimension error if shapes disagree, or a fixed-point error if
/// a softmax denominator underflows (impossible with the default LUTs).
pub fn fixed_sparse_attention(
    pattern: &HybridPattern,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    datapath: &FixedAttention,
) -> Result<FixedAttentionOutput, KernelError> {
    check_shapes(q, k, v)?;
    let (n, d) = q.shape();
    if pattern.n() != n {
        return Err(KernelError::PatternLengthMismatch { pattern_n: pattern.n(), rows: n });
    }

    // Quantize once: scale folds into Q (the hardware quantizes at load).
    let qq: Vec<Vec<Fix8x4>> =
        (0..n).map(|i| quantize_with_scale(q.row(i), datapath.scale)).collect();
    let kq: Vec<Vec<Fix8x4>> = (0..n).map(|i| quantize(k.row(i))).collect();
    let vq: Vec<Vec<Fix8x4>> = (0..n).map(|i| quantize(v.row(i))).collect();

    let mut out = Matrix::filled(n, d, Fix16x8::ZERO);
    let mut weights = vec![0i64; n];
    let mut saturation = MacSaturation::default();

    for i in 0..n {
        let keys = pattern.row_keys(i);
        if keys.is_empty() {
            continue;
        }
        // Stage 1: one score per kept key, keys ascending.
        let scores: Vec<i32> =
            keys.iter().map(|&j| qk_dot(&qq[i], &kq[j], &mut saturation)).collect();
        // Stages 2-4.
        let (probs, weight, _) = fixed_softmax_parts(&scores, &datapath.exp, &datapath.recip)?;
        weights[i] = weight;
        // Stage 5: weight-stationary accumulation, keys ascending.
        let mut acc = vec![0i64; d];
        for (&j, &p) in keys.iter().zip(&probs) {
            for (a, &ve) in acc.iter_mut().zip(&vq[j]) {
                *a = sv_mac(*a, p, ve, &mut saturation);
            }
        }
        for (c, &a) in acc.iter().enumerate() {
            out.set(i, c, q19_to_out(a));
        }
    }
    Ok(FixedAttentionOutput { out, weights_q16: weights, saturation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gaussian_matrix, sparse_attention};
    use salo_patterns::{longformer, sliding_only};

    fn workload(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            gaussian_matrix(seed, n, d, 0.0, 1.0),
            gaussian_matrix(seed + 1, n, d, 0.0, 1.0),
            gaussian_matrix(seed + 2, n, d, 0.0, 1.0),
        )
    }

    #[test]
    fn close_to_f32_reference_on_gaussian_inputs() {
        let n = 32;
        let d = 16;
        let p = longformer(n, 8, 1).unwrap();
        let (q, k, v) = workload(n, d, 100);
        let dp = FixedAttention::new(d);
        let fixed = fixed_sparse_attention(&p, &q, &k, &v, &dp).unwrap();
        let exact = sparse_attention(&p, &q, &k, &v, dp.scale).unwrap();
        let approx = fixed.to_f32();
        let diff = approx.max_abs_diff(&exact);
        // Outputs are convex combinations of ±3-ish values; the Q.4 input
        // grid (score perturbations of ~0.1 after the dot product) dominates
        // the error budget, giving worst-case deviations around 0.2.
        assert!(diff < 0.25, "max abs diff {diff}");
        assert!(approx.mse(&exact) < 5e-3, "mse {}", approx.mse(&exact));
        assert!(!fixed.saturation.saturated());
    }

    #[test]
    fn deterministic() {
        let n = 16;
        let p = sliding_only(n, 5).unwrap();
        let (q, k, v) = workload(n, 8, 7);
        let dp = FixedAttention::new(8);
        let a = fixed_sparse_attention(&p, &q, &k, &v, &dp).unwrap();
        let b = fixed_sparse_attention(&p, &q, &k, &v, &dp).unwrap();
        assert_eq!(a.out, b.out);
        assert_eq!(a.weights_q16, b.weights_q16);
    }

    #[test]
    fn weights_match_window_sizes_for_zero_scores() {
        // Q = 0 -> all exponentials ~1 -> weight ~ row nnz.
        let n = 12;
        let p = sliding_only(n, 5).unwrap();
        let q = Matrix::zeros(n, 4);
        let k = gaussian_matrix(3, n, 4, 0.0, 1.0);
        let v = gaussian_matrix(4, n, 4, 0.0, 1.0);
        let fixed = fixed_sparse_attention(&p, &q, &k, &v, &FixedAttention::new(4)).unwrap();
        for i in 0..n {
            let expect = p.row_nnz(i) as f64;
            let w = fixed.weights_q16[i] as f64 / 65536.0;
            assert!((w - expect).abs() < 0.1 * expect, "row {i}: {w} vs {expect}");
        }
    }

    #[test]
    fn q19_conversion_rounds_and_saturates() {
        assert_eq!(q19_to_out(0).raw(), 0);
        // 1.0 in Q.19 -> 256 in Q.8.
        assert_eq!(q19_to_out(1 << 19).raw(), 256);
        // Half LSB rounds up: (1 << 10) is exactly the rounding threshold.
        assert_eq!(q19_to_out(1 << 10).raw(), 1);
        assert_eq!(q19_to_out((1 << 10) - 1).raw(), 0);
        assert_eq!(q19_to_out(i64::MAX / 2), Fix16x8::MAX);
        assert_eq!(q19_to_out(i64::MIN / 2), Fix16x8::MIN);
    }

    #[test]
    fn pattern_length_mismatch_detected() {
        let p = sliding_only(8, 3).unwrap();
        let m = Matrix::zeros(4, 2);
        assert!(matches!(
            fixed_sparse_attention(&p, &m, &m, &m, &FixedAttention::new(2)),
            Err(KernelError::PatternLengthMismatch { .. })
        ));
    }

    #[test]
    fn argmax_agreement_with_reference() {
        // Quantization must not flip which value row dominates.
        let n = 24;
        let d = 8;
        let p = longformer(n, 6, 1).unwrap();
        let (q, k, v) = workload(n, d, 55);
        let dp = FixedAttention::new(d);
        let fixed = fixed_sparse_attention(&p, &q, &k, &v, &dp).unwrap().to_f32();
        let exact = sparse_attention(&p, &q, &k, &v, dp.scale).unwrap();
        let mut agree = 0;
        for i in 0..n {
            let am = |row: &[f32]| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(idx, _)| idx)
                    .unwrap()
            };
            if am(fixed.row(i)) == am(exact.row(i)) {
                agree += 1;
            }
        }
        assert!(agree >= n - 2, "argmax agreement {agree}/{n}");
    }
}
