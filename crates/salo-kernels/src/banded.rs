//! Blocked banded attention: the software-baseline implementation
//! strategy.
//!
//! CPU/GPU frameworks cannot gather per-row key sets efficiently; the
//! practical Longformer implementation processes *blocks* of queries
//! against the contiguous key range their windows jointly touch, computes
//! a small dense score tile, masks it, and proceeds — trading extra FLOPs
//! on the tile corners for GEMM-shaped inner loops. This kernel implements
//! that strategy (it is what the `Banded1d` execution family models) and
//! is measurably faster than the per-row gather kernel on the host while
//! producing identical results.

use salo_fixed::softmax_f64;
use salo_patterns::HybridPattern;

use crate::dense::check_shapes;
use crate::{KernelError, Matrix};

/// Computes sparse attention with block processing: query blocks of
/// `block` rows score against the union key range of their windows, with
/// masked positions excluded from the softmax.
///
/// Exactly equivalent to [`sparse_attention`](crate::sparse_attention);
/// the difference is performance shape, not values (up to `f32`/`f64`
/// accumulation-order wiggle below 1e-5).
///
/// # Errors
///
/// Returns dimension/pattern errors as the gather kernel does.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn banded_attention(
    pattern: &HybridPattern,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
    block: usize,
) -> Result<Matrix<f32>, KernelError> {
    assert!(block > 0, "block size must be positive");
    check_shapes(q, k, v)?;
    let (n, d) = q.shape();
    if pattern.n() != n {
        return Err(KernelError::PatternLengthMismatch { pattern_n: pattern.n(), rows: n });
    }
    let mut out = Matrix::zeros(n, d);

    for block_start in (0..n).step_by(block) {
        let block_end = (block_start + block).min(n);
        // Union key range of the block (globals handled separately).
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for i in block_start..block_end {
            if pattern.is_global(i) {
                // Global rows touch everything.
                lo = 0;
                hi = n;
                break;
            }
            for w in pattern.windows() {
                let first = i as i64 + w.lo();
                let last = i as i64 + w.hi();
                lo = lo.min(first.max(0) as usize);
                hi = hi.max((last + 1).clamp(0, n as i64) as usize);
            }
            // Residual support (block/random terms) can reach keys far
            // outside the window band; widen the tile to its row bounds.
            if let Some((first, last_ex)) = pattern.residual().row_bounds(i) {
                lo = lo.min(first);
                hi = hi.max(last_ex);
            }
        }
        for &g in pattern.globals() {
            lo = lo.min(g);
            hi = hi.max(g + 1);
        }
        if lo >= hi {
            continue;
        }

        // Dense score tile over the union range.
        let width = hi - lo;
        let mut scores = vec![f64::NEG_INFINITY; width];
        for i in block_start..block_end {
            let qi = q.row(i);
            for (jj, s) in scores.iter_mut().enumerate() {
                let j = lo + jj;
                if pattern.allows(i, j) {
                    let dot: f64 =
                        qi.iter().zip(k.row(j)).map(|(&a, &b)| a as f64 * b as f64).sum();
                    *s = dot * scale as f64;
                } else {
                    *s = f64::NEG_INFINITY;
                }
            }
            if scores.iter().all(|s| s.is_infinite()) {
                continue;
            }
            let probs = softmax_f64(&scores);
            let out_row = out.row_mut(i);
            for (jj, &p) in probs.iter().enumerate() {
                if p > 0.0 {
                    for (o, &ve) in out_row.iter_mut().zip(v.row(lo + jj)) {
                        *o += (p * ve as f64) as f32;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gaussian_matrix, sparse_attention};
    use salo_patterns::{grid_2d, longformer, sliding_only};

    fn workload(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            gaussian_matrix(seed, n, d, 0.0, 1.0),
            gaussian_matrix(seed + 1, n, d, 0.0, 1.0),
            gaussian_matrix(seed + 2, n, d, 0.0, 1.0),
        )
    }

    #[test]
    fn matches_gather_kernel_on_longformer() {
        let n = 96;
        let p = longformer(n, 16, 2).unwrap();
        let (q, k, v) = workload(n, 8, 31);
        let gathered = sparse_attention(&p, &q, &k, &v, 0.35).unwrap();
        for block in [1usize, 7, 16, 96] {
            let banded = banded_attention(&p, &q, &k, &v, 0.35, block).unwrap();
            let diff = banded.max_abs_diff(&gathered);
            assert!(diff < 1e-5, "block {block}: diff {diff}");
        }
    }

    #[test]
    fn matches_gather_kernel_on_2d_grid() {
        let p = grid_2d(8, 8, 3, 3, 1).unwrap();
        let (q, k, v) = workload(64, 8, 77);
        let gathered = sparse_attention(&p, &q, &k, &v, 0.35).unwrap();
        let banded = banded_attention(&p, &q, &k, &v, 0.35, 8).unwrap();
        assert!(banded.max_abs_diff(&gathered) < 1e-5);
    }

    #[test]
    fn matches_gather_kernel_on_bigbird() {
        use salo_patterns::bigbird;
        let n = 96;
        let p = bigbird(n, 12, 3, 1, 42).unwrap();
        let (q, k, v) = workload(n, 8, 19);
        let gathered = sparse_attention(&p, &q, &k, &v, 0.35).unwrap();
        for block in [1usize, 8, 96] {
            let banded = banded_attention(&p, &q, &k, &v, 0.35, block).unwrap();
            let diff = banded.max_abs_diff(&gathered);
            assert!(diff < 1e-5, "block {block}: diff {diff}");
        }
    }

    #[test]
    fn validates_inputs() {
        let p = sliding_only(8, 3).unwrap();
        let m = Matrix::zeros(8, 2);
        let bad = Matrix::zeros(9, 2);
        assert!(banded_attention(&p, &bad, &bad, &bad, 1.0, 4).is_err());
        assert!(matches!(
            banded_attention(&p, &Matrix::zeros(9, 2), &bad, &bad, 1.0, 4),
            Err(KernelError::PatternLengthMismatch { .. })
        ));
        let ok = banded_attention(&p, &m, &m, &m, 1.0, 4);
        assert!(ok.is_ok());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let p = sliding_only(8, 3).unwrap();
        let m = Matrix::zeros(8, 2);
        let _ = banded_attention(&p, &m, &m, &m, 1.0, 0);
    }

    #[test]
    fn rows_with_no_keys_stay_zero() {
        use salo_patterns::{HybridPattern, Window};
        // Window out of range for early rows.
        let p = HybridPattern::builder(12).window(Window::sliding(6, 8).unwrap()).build().unwrap();
        let (q, k, v) = workload(12, 4, 5);
        let banded = banded_attention(&p, &q, &k, &v, 1.0, 4).unwrap();
        // Rows 6..12 have empty windows (keys beyond n-1).
        for i in 6..12 {
            for c in 0..4 {
                assert_eq!(banded.get(i, c), 0.0, "row {i}");
            }
        }
    }
}
