//! The vanilla dense attention reference (Fig. 1 of the paper).

use salo_fixed::softmax_f64;

use crate::{KernelError, Matrix};

/// Computes exact dense attention: `softmax(Q K^T * scale) V`.
///
/// `scale` is usually `1/sqrt(d)`; pass `1.0` to disable scaling. All three
/// matrices are `n x d`. The softmax is numerically stabilized.
///
/// # Errors
///
/// Returns a dimension error if the matrices disagree in shape.
pub fn dense_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
) -> Result<Matrix<f32>, KernelError> {
    check_shapes(q, k, v)?;
    let (n, d) = q.shape();
    let mut out = Matrix::zeros(n, d);
    let mut scores = vec![0.0f64; n];
    for i in 0..n {
        let qi = q.row(i);
        for (j, score) in scores.iter_mut().enumerate() {
            let kj = k.row(j);
            let dot: f64 = qi.iter().zip(kj).map(|(&a, &b)| a as f64 * b as f64).sum();
            *score = dot * scale as f64;
        }
        let probs = softmax_f64(&scores);
        let out_row = out.row_mut(i);
        for (j, &p) in probs.iter().enumerate() {
            let vj = v.row(j);
            for (o, &ve) in out_row.iter_mut().zip(vj) {
                *o += (p * ve as f64) as f32;
            }
        }
    }
    Ok(out)
}

pub(crate) fn check_shapes(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
) -> Result<(), KernelError> {
    if q.shape() != k.shape() {
        return Err(KernelError::DimMismatch {
            context: "attention q/k",
            left: q.shape(),
            right: k.shape(),
        });
    }
    if q.shape() != v.shape() {
        return Err(KernelError::DimMismatch {
            context: "attention q/v",
            left: q.shape(),
            right: v.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian_matrix;

    #[test]
    fn shape_validation() {
        let a = Matrix::zeros(4, 2);
        let b = Matrix::zeros(4, 3);
        assert!(dense_attention(&a, &b, &a, 1.0).is_err());
        assert!(dense_attention(&a, &a, &b, 1.0).is_err());
    }

    #[test]
    fn uniform_scores_average_values() {
        // Q = 0 -> all scores zero -> output row = mean of V rows.
        let q = Matrix::zeros(3, 2);
        let k = gaussian_matrix(1, 3, 2, 0.0, 1.0);
        let v = Matrix::from_fn(3, 2, |i, _| i as f32);
        let out = dense_attention(&q, &k, &v, 1.0).unwrap();
        for j in 0..2 {
            assert!((out.get(0, j) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn one_hot_attention_selects_value_row() {
        // A huge score on one key makes softmax a delta.
        let mut q = Matrix::zeros(2, 2);
        q.set(0, 0, 50.0);
        let mut k = Matrix::zeros(2, 2);
        k.set(1, 0, 50.0); // only key 1 matches query 0's direction
        let v = Matrix::from_fn(2, 2, |i, j| (10 * i + j) as f32);
        let out = dense_attention(&q, &k, &v, 1.0).unwrap();
        assert!((out.get(0, 0) - 10.0).abs() < 1e-4);
        assert!((out.get(0, 1) - 11.0).abs() < 1e-4);
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        let q = gaussian_matrix(2, 8, 4, 0.0, 1.0);
        let k = gaussian_matrix(3, 8, 4, 0.0, 1.0);
        let v = gaussian_matrix(4, 8, 4, 0.0, 1.0);
        let out = dense_attention(&q, &k, &v, 0.5).unwrap();
        // Each output element lies within [min, max] of the value column.
        for j in 0..4 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for i in 0..8 {
                lo = lo.min(v.get(i, j));
                hi = hi.max(v.get(i, j));
            }
            for i in 0..8 {
                let o = out.get(i, j);
                assert!(o >= lo - 1e-4 && o <= hi + 1e-4, "({i},{j}): {o} not in [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn scale_changes_sharpness() {
        let q = gaussian_matrix(5, 6, 4, 0.0, 1.0);
        let k = gaussian_matrix(6, 6, 4, 0.0, 1.0);
        let v = gaussian_matrix(7, 6, 4, 0.0, 1.0);
        let soft = dense_attention(&q, &k, &v, 0.01).unwrap();
        let sharp = dense_attention(&q, &k, &v, 10.0).unwrap();
        // Sharper attention is farther from the uniform average.
        let uniform = dense_attention(&Matrix::zeros(6, 4), &k, &v, 1.0).unwrap();
        assert!(sharp.max_abs_diff(&uniform) > soft.max_abs_diff(&uniform));
    }
}
