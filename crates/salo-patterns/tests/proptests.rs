//! Property-based tests for the pattern abstraction.

use proptest::prelude::*;
use salo_patterns::{fit_pattern, longformer, DenseMask, FitConfig, HybridPattern, Window};

/// Strategy: a valid window with bounded extents.
fn arb_window() -> impl Strategy<Value = Window> {
    (any::<bool>(), -20i64..20, 1usize..6, 0usize..12).prop_map(|(sym, lo, dil, width)| {
        if sym {
            Window::symmetric(width + 1).expect("symmetric")
        } else {
            let hi = lo + (width as i64) * dil as i64;
            Window::dilated(lo, hi, dil).expect("dilated")
        }
    })
}

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (8usize..64, prop::collection::vec(arb_window(), 1..4), prop::collection::vec(0usize..8, 0..3))
        .prop_map(|(n, windows, globals)| {
            HybridPattern::builder(n)
                .windows(windows)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .expect("valid pattern")
        })
}

proptest! {
    /// `allows` agrees with the materialized dense mask everywhere.
    #[test]
    fn allows_matches_dense_mask(p in arb_pattern()) {
        let mask = DenseMask::from_pattern(&p);
        for i in 0..p.n() {
            for j in 0..p.n() {
                prop_assert_eq!(p.allows(i, j), mask.get(i, j), "({}, {})", i, j);
            }
        }
    }

    /// `nnz` equals the number of positions yielded by `iter`.
    #[test]
    fn nnz_matches_iter(p in arb_pattern()) {
        prop_assert_eq!(p.nnz(), p.iter().count() as u64);
    }

    /// Row keys are sorted, unique, in-range, and each is allowed.
    #[test]
    fn row_keys_well_formed(p in arb_pattern()) {
        for i in 0..p.n() {
            let keys = p.row_keys(i);
            prop_assert!(keys.windows(2).all(|ab| ab[0] < ab[1]), "sorted unique");
            for &j in &keys {
                prop_assert!(j < p.n());
                prop_assert!(p.allows(i, j));
            }
        }
    }

    /// Density is within [0, 1] (zero when every window offset falls outside
    /// the sequence) and nominal density bounds it loosely above.
    #[test]
    fn density_bounds(p in arb_pattern()) {
        let s = p.stats();
        prop_assert!((0.0..=1.0).contains(&s.density));
        prop_assert!(s.nominal_density <= 1.0);
        // Nominal ignores clipping so it can only undercount via overlap;
        // for overlap-free single-window patterns it upper-bounds density.
        if p.windows().len() == 1 && p.globals().is_empty() {
            prop_assert!(s.density <= s.nominal_density + 1e-12);
        }
    }

    /// Fitting the mask of a generated pattern reproduces its coverage.
    #[test]
    fn fit_round_trips_coverage(p in arb_pattern()) {
        let mask = DenseMask::from_pattern(&p);
        // Degenerate case: all window offsets out of range and no globals
        // produce an empty mask, which has no pattern to recover.
        prop_assume!(mask.nnz() > 0);
        let report = fit_pattern(&mask, FitConfig::default()).expect("fit");
        prop_assert_eq!(report.missed, 0, "missed {} positions", report.missed);
        // `extra` can be nonzero when global detection absorbs noise rows,
        // but coverage of the original mask must be complete and agreement
        // high.
        prop_assert!(report.agreement >= 0.95, "agreement {}", report.agreement);
    }

    /// Window offset iteration matches `contains_offset`.
    #[test]
    fn window_offsets_consistent(w in arb_window()) {
        let offsets: Vec<i64> = w.offsets().collect();
        prop_assert_eq!(offsets.len(), w.width());
        for &delta in &offsets {
            prop_assert!(w.contains_offset(delta));
        }
        // Between consecutive offsets nothing is contained.
        for pair in offsets.windows(2) {
            for delta in (pair[0] + 1)..pair[1] {
                prop_assert!(!w.contains_offset(delta));
            }
        }
    }

    /// Longformer nominal density formula: (w + 2 ng)/n, capped at 1.
    #[test]
    fn longformer_nominal_density(n in 32usize..256, w in 1usize..32, ng in 0usize..4) {
        let p = longformer(n, w, ng).expect("longformer");
        let s = p.stats();
        let expected = ((w as f64 + 2.0 * ng as f64) / n as f64).min(1.0);
        prop_assert!((s.nominal_density - expected).abs() < 1e-12);
    }
}
