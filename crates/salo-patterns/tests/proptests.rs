//! Property-based tests for the pattern abstraction.

use proptest::prelude::*;
use salo_patterns::{
    fit_pattern, longformer, BlockLayout, DenseMask, FitConfig, HybridPattern, PatternTerm,
    SupportRuns, Window,
};

/// Strategy: a valid window with bounded extents.
fn arb_window() -> impl Strategy<Value = Window> {
    (any::<bool>(), -20i64..20, 1usize..6, 0usize..12).prop_map(|(sym, lo, dil, width)| {
        if sym {
            Window::symmetric(width + 1).expect("symmetric")
        } else {
            let hi = lo + (width as i64) * dil as i64;
            Window::dilated(lo, hi, dil).expect("dilated")
        }
    })
}

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (8usize..64, prop::collection::vec(arb_window(), 1..4), prop::collection::vec(0usize..8, 0..3))
        .prop_map(|(n, windows, globals)| {
            HybridPattern::builder(n)
                .windows(windows)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .expect("valid pattern")
        })
}

/// Raw descriptor for one IR term, generated independently of `n` and
/// materialized by [`build_term`] once the sequence length is known:
/// `(kind, window params, small numerics, seed, block pairs, support rows)`.
type RawTerm =
    (u8, (bool, i64, usize, usize), (usize, usize, usize), u64, Vec<(usize, usize)>, Vec<Vec<u32>>);

fn arb_raw_term() -> impl Strategy<Value = RawTerm> {
    (
        0u8..6,
        (any::<bool>(), -20i64..20, 1usize..6, 0usize..12),
        (0usize..64, 0usize..64, 0usize..64),
        any::<u64>(),
        prop::collection::vec((0usize..64, 0usize..64), 1..4),
        prop::collection::vec(prop::collection::vec(0u32..64, 0..4), 0..8),
    )
}

/// Materializes a [`RawTerm`] into a valid [`PatternTerm`] for a sequence
/// of length `n`; `n`-dependent parameters (global tokens, block pairs,
/// support keys) are reduced modulo their valid ranges.
fn build_term(n: usize, raw: RawTerm) -> PatternTerm {
    let (kind, (sym, lo, dil, width), (a, b, c), seed, pairs, mut rows) = raw;
    match kind {
        0 => {
            let w = if sym {
                Window::symmetric(width + 1).expect("symmetric")
            } else {
                let hi = lo + (width as i64) * dil as i64;
                Window::dilated(lo, hi, dil).expect("dilated")
            };
            PatternTerm::Window(w)
        }
        1 => PatternTerm::Global { token: a % n },
        2 => PatternTerm::Strided { stride: 1 + a % 11, local: 1 + b % 11 },
        3 => {
            let block_rows = 1 + a % 9;
            let grid = n.div_ceil(block_rows);
            let layout = match b % 3 {
                0 => BlockLayout::Diagonal,
                1 => BlockLayout::Banded { radius: c % 3 },
                _ => BlockLayout::Explicit(
                    pairs.into_iter().map(|(r, col)| (r % grid, col % grid)).collect(),
                ),
            };
            PatternTerm::BlockSparse { block_rows, layout }
        }
        4 => PatternTerm::RandomBlocks { count: a % 4, seed },
        _ => {
            rows.resize(n, Vec::new());
            for row in &mut rows {
                for j in row.iter_mut() {
                    *j %= n as u32;
                }
            }
            PatternTerm::Support(SupportRuns::from_rows(n, &mut rows))
        }
    }
}

/// Strategy: a composition of 1..5 terms over a bounded sequence, filtered
/// to the compositions that normalize successfully (an all-empty
/// composition is rejected by construction).
fn arb_term_pattern() -> impl Strategy<Value = HybridPattern> {
    (8usize..48, prop::collection::vec(arb_raw_term(), 1..5)).prop_filter_map(
        "composition must normalize",
        |(n, raws)| {
            let terms: Vec<PatternTerm> = raws.into_iter().map(|raw| build_term(n, raw)).collect();
            HybridPattern::from_terms(n, terms).ok()
        },
    )
}

proptest! {
    /// `allows` agrees with the materialized dense mask everywhere.
    #[test]
    fn allows_matches_dense_mask(p in arb_pattern()) {
        let mask = DenseMask::from_pattern(&p);
        for i in 0..p.n() {
            for j in 0..p.n() {
                prop_assert_eq!(p.allows(i, j), mask.get(i, j), "({}, {})", i, j);
            }
        }
    }

    /// `nnz` equals the number of positions yielded by `iter`.
    #[test]
    fn nnz_matches_iter(p in arb_pattern()) {
        prop_assert_eq!(p.nnz(), p.iter().count() as u64);
    }

    /// Row keys are sorted, unique, in-range, and each is allowed.
    #[test]
    fn row_keys_well_formed(p in arb_pattern()) {
        for i in 0..p.n() {
            let keys = p.row_keys(i);
            prop_assert!(keys.windows(2).all(|ab| ab[0] < ab[1]), "sorted unique");
            for &j in &keys {
                prop_assert!(j < p.n());
                prop_assert!(p.allows(i, j));
            }
        }
    }

    /// Density is within [0, 1] (zero when every window offset falls outside
    /// the sequence) and nominal density bounds it loosely above.
    #[test]
    fn density_bounds(p in arb_pattern()) {
        let s = p.stats();
        prop_assert!((0.0..=1.0).contains(&s.density));
        prop_assert!(s.nominal_density <= 1.0);
        // Nominal ignores clipping so it can only undercount via overlap;
        // for overlap-free single-window patterns it upper-bounds density.
        if p.windows().len() == 1 && p.globals().is_empty() {
            prop_assert!(s.density <= s.nominal_density + 1e-12);
        }
    }

    /// Fitting the mask of a generated pattern reproduces its coverage.
    #[test]
    fn fit_round_trips_coverage(p in arb_pattern()) {
        let mask = DenseMask::from_pattern(&p);
        // Degenerate case: all window offsets out of range and no globals
        // produce an empty mask, which has no pattern to recover.
        prop_assume!(mask.nnz() > 0);
        let report = fit_pattern(&mask, FitConfig::default()).expect("fit");
        prop_assert_eq!(report.missed, 0, "missed {} positions", report.missed);
        // `extra` can be nonzero when global detection absorbs noise rows,
        // but coverage of the original mask must be complete and agreement
        // high.
        prop_assert!(report.agreement >= 0.95, "agreement {}", report.agreement);
    }

    /// Window offset iteration matches `contains_offset`.
    #[test]
    fn window_offsets_consistent(w in arb_window()) {
        let offsets: Vec<i64> = w.offsets().collect();
        prop_assert_eq!(offsets.len(), w.width());
        for &delta in &offsets {
            prop_assert!(w.contains_offset(delta));
        }
        // Between consecutive offsets nothing is contained.
        for pair in offsets.windows(2) {
            for delta in (pair[0] + 1)..pair[1] {
                prop_assert!(!w.contains_offset(delta));
            }
        }
    }

    /// Longformer nominal density formula: (w + 2 ng)/n, capped at 1.
    #[test]
    fn longformer_nominal_density(n in 32usize..256, w in 1usize..32, ng in 0usize..4) {
        let p = longformer(n, w, ng).expect("longformer");
        let s = p.stats();
        let expected = ((w as f64 + 2.0 * ng as f64) / n as f64).min(1.0);
        prop_assert!((s.nominal_density - expected).abs() < 1e-12);
    }

    /// Normalization is idempotent: rebuilding a pattern from its own
    /// term decomposition yields the identical pattern and fingerprint.
    #[test]
    fn term_normalization_is_idempotent(p in arb_term_pattern()) {
        let rebuilt = HybridPattern::from_terms(p.n(), p.terms()).expect("rebuild");
        prop_assert_eq!(&rebuilt, &p);
        prop_assert_eq!(rebuilt.fingerprint(), p.fingerprint());
    }

    /// `allows` agrees with the dense rasterization for every term family,
    /// not just window/global compositions.
    #[test]
    fn term_allows_matches_dense_mask(p in arb_term_pattern()) {
        let mask = DenseMask::from_pattern(&p);
        prop_assert_eq!(p.nnz(), mask.nnz());
        for i in 0..p.n() {
            for j in 0..p.n() {
                prop_assert_eq!(p.allows(i, j), mask.get(i, j), "({}, {})", i, j);
            }
        }
    }

    /// Causal clipping of an IR pattern keeps exactly the lower-triangular
    /// window/residual cells (global rows/columns stay bidirectional by
    /// design) and itself normalizes idempotently.
    #[test]
    fn term_causal_keeps_lower_triangle(p in arb_term_pattern()) {
        let Ok(c) = p.causal() else {
            // Everything was strictly future-looking; nothing to check.
            return Ok(());
        };
        for i in 0..p.n() {
            for j in 0..p.n() {
                let expect = if p.is_global(i) || p.is_global(j) {
                    p.allows(i, j)
                } else {
                    j <= i && p.allows(i, j)
                };
                prop_assert_eq!(c.allows(i, j), expect, "({}, {})", i, j);
            }
        }
        let rebuilt = HybridPattern::from_terms(c.n(), c.terms()).expect("rebuild");
        prop_assert_eq!(rebuilt, c);
    }
}
