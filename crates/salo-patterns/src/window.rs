use crate::PatternError;

/// One window component of a hybrid sparse attention pattern.
///
/// A window is a set of *relative offsets*: query `q_i` attends key `k_j`
/// whenever `j - i` is one of the window's offsets and `j` is inside the
/// sequence. Offsets run from `lo` to `hi` inclusive with a stride of
/// `dilation` (the paper's dilated window attention, §2.3); `dilation == 1`
/// gives plain sliding window attention.
///
/// The offset set is translation invariant: every query uses the same set,
/// shifted by its own position. This is exactly the property the SALO
/// dataflow exploits for key/value reuse between successive queries (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    lo: i64,
    hi: i64,
    dilation: usize,
}

impl Window {
    /// Creates a sliding window attending relative offsets `lo..=hi`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`.
    pub fn sliding(lo: i64, hi: i64) -> Result<Self, PatternError> {
        Self::dilated(lo, hi, 1)
    }

    /// Creates a dilated window attending offsets `lo, lo + d, ..., hi`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`, if `dilation` is zero, or if
    /// `hi - lo` is not a multiple of `dilation`.
    pub fn dilated(lo: i64, hi: i64, dilation: usize) -> Result<Self, PatternError> {
        if dilation == 0 {
            return Err(PatternError::ZeroDilation);
        }
        if lo > hi {
            return Err(PatternError::InvalidWindowRange { lo, hi });
        }
        let span = (hi - lo) as u64;
        if !span.is_multiple_of(dilation as u64) {
            return Err(PatternError::MisalignedDilation { lo, hi, dilation });
        }
        Ok(Self { lo, hi, dilation })
    }

    /// Creates a symmetric sliding window of total size `w` (the paper's
    /// window size parameter): offsets `-(w/2) ..= w - w/2 - 1`.
    ///
    /// For `w = 512` this yields offsets `-256..=255`, matching
    /// Longformer-Base-4096's window of 256 tokens to each side.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptyWindow`] if `w == 0`.
    pub fn symmetric(w: usize) -> Result<Self, PatternError> {
        if w == 0 {
            return Err(PatternError::EmptyWindow);
        }
        let lo = -((w / 2) as i64);
        let hi = lo + w as i64 - 1;
        Self::sliding(lo, hi)
    }

    /// Creates a causal sliding window of size `w`: offsets `-(w-1) ..= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptyWindow`] if `w == 0`.
    pub fn causal(w: usize) -> Result<Self, PatternError> {
        if w == 0 {
            return Err(PatternError::EmptyWindow);
        }
        Self::sliding(-(w as i64 - 1), 0)
    }

    /// Lower relative offset (`a` in the paper's `[a, b]` range).
    #[must_use]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper relative offset (`b` in the paper's `[a, b]` range).
    #[must_use]
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Dilation (`d` in the paper); 1 for plain sliding windows.
    #[must_use]
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// Number of offsets in the window (`w = (hi - lo)/d + 1`), i.e. the
    /// number of keys each interior query attends through this window.
    #[must_use]
    pub fn width(&self) -> usize {
        ((self.hi - self.lo) as u64 / self.dilation as u64 + 1) as usize
    }

    /// Whether the window is dilated (`dilation > 1`).
    #[must_use]
    pub fn is_dilated(&self) -> bool {
        self.dilation > 1
    }

    /// Iterates the relative offsets of the window in increasing order.
    pub fn offsets(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.width() as i64).map(move |k| self.lo + k * self.dilation as i64)
    }

    /// Whether relative offset `delta = j - i` belongs to the window.
    #[must_use]
    pub fn contains_offset(&self, delta: i64) -> bool {
        delta >= self.lo && delta <= self.hi && (delta - self.lo) % self.dilation as i64 == 0
    }

    /// Shifts the window by a constant offset, preserving dilation.
    ///
    /// Used to build banded patterns such as the flattened 2-D windows of
    /// Vision Longformer, where each image row of the window becomes one
    /// shifted band.
    #[must_use]
    pub fn shifted(&self, delta: i64) -> Self {
        Self { lo: self.lo + delta, hi: self.hi + delta, dilation: self.dilation }
    }

    /// The causal restriction of this window: the offsets `<= 0`, on the
    /// same dilation grid. `None` if the window lies entirely in the
    /// future (`lo > 0`).
    ///
    /// The surviving upper bound is the largest grid point `lo + k*d`
    /// that is `<= 0`; it always exists when `lo <= 0` (at worst `lo`
    /// itself), so the result can never degenerate below `lo`.
    #[must_use]
    pub fn causal_clip(&self) -> Option<Self> {
        if self.lo > 0 {
            return None; // entirely in the future
        }
        let hi = self.hi.min(0);
        // Largest offset <= 0 on the window's grid. `hi - lo >= 0` here,
        // so truncating division is floor division and `aligned_hi` stays
        // in `[lo, 0]`.
        let aligned_hi = self.lo + ((hi - self.lo) / self.dilation as i64) * self.dilation as i64;
        debug_assert!((self.lo..=0).contains(&aligned_hi));
        Some(Self { lo: self.lo, hi: aligned_hi, dilation: self.dilation })
    }

    /// Number of keys query `i` actually attends through this window in a
    /// sequence of length `n` (i.e. the width after boundary clipping).
    #[must_use]
    pub fn clipped_width(&self, i: usize, n: usize) -> usize {
        self.offsets()
            .filter(|&delta| {
                let j = i as i64 + delta;
                j >= 0 && (j as usize) < n
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_offsets() {
        let w = Window::sliding(-2, 2).unwrap();
        assert_eq!(w.width(), 5);
        assert_eq!(w.offsets().collect::<Vec<_>>(), vec![-2, -1, 0, 1, 2]);
        assert!(w.contains_offset(0));
        assert!(!w.contains_offset(3));
    }

    #[test]
    fn dilated_window_offsets() {
        let w = Window::dilated(-4, 4, 2).unwrap();
        assert_eq!(w.width(), 5);
        assert_eq!(w.offsets().collect::<Vec<_>>(), vec![-4, -2, 0, 2, 4]);
        assert!(w.contains_offset(-2));
        assert!(!w.contains_offset(-1));
        assert!(w.is_dilated());
    }

    #[test]
    fn symmetric_matches_longformer_convention() {
        let w = Window::symmetric(512).unwrap();
        assert_eq!(w.lo(), -256);
        assert_eq!(w.hi(), 255);
        assert_eq!(w.width(), 512);
        // Odd windows are centered.
        let w = Window::symmetric(15).unwrap();
        assert_eq!(w.lo(), -7);
        assert_eq!(w.hi(), 7);
    }

    #[test]
    fn causal_window() {
        let w = Window::causal(4).unwrap();
        assert_eq!(w.offsets().collect::<Vec<_>>(), vec![-3, -2, -1, 0]);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert_eq!(
            Window::sliding(3, 1).unwrap_err(),
            PatternError::InvalidWindowRange { lo: 3, hi: 1 }
        );
        assert_eq!(Window::dilated(0, 4, 0).unwrap_err(), PatternError::ZeroDilation);
        assert_eq!(
            Window::dilated(0, 5, 2).unwrap_err(),
            PatternError::MisalignedDilation { lo: 0, hi: 5, dilation: 2 }
        );
        assert_eq!(Window::symmetric(0).unwrap_err(), PatternError::EmptyWindow);
        assert_eq!(Window::causal(0).unwrap_err(), PatternError::EmptyWindow);
    }

    #[test]
    fn shifted_preserves_width_and_dilation() {
        let w = Window::dilated(-4, 4, 2).unwrap().shifted(56);
        assert_eq!(w.lo(), 52);
        assert_eq!(w.hi(), 60);
        assert_eq!(w.width(), 5);
        assert_eq!(w.dilation(), 2);
    }

    #[test]
    fn clipped_width_at_boundaries() {
        let w = Window::symmetric(5).unwrap(); // offsets -2..=2
        assert_eq!(w.clipped_width(0, 10), 3); // -2,-1 clipped
        assert_eq!(w.clipped_width(5, 10), 5);
        assert_eq!(w.clipped_width(9, 10), 3); // +1,+2 clipped

        // Tiny sequence clips everything but the diagonal.
        assert_eq!(w.clipped_width(0, 1), 1);
    }
}
