//! ASCII rendering of attention patterns, reproducing the visual style of
//! Fig. 2 in the SALO paper (pattern gallery).

use crate::HybridPattern;

/// Options controlling [`render_ascii`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Maximum rendered grid size; larger patterns are downsampled.
    pub max_cells: usize,
    /// Character for kept positions covered by the PE array's work (a
    /// window component or the residual support).
    pub window_char: char,
    /// Character for positions covered only by a global row/column.
    pub global_char: char,
    /// Character for masked-out positions.
    pub empty_char: char,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self { max_cells: 48, window_char: '#', global_char: '+', empty_char: '.' }
    }
}

/// Renders a pattern as an ASCII grid.
///
/// Large patterns are downsampled: each character cell covers a block of
/// score positions and shows the dominant coverage class of the block
/// (window > global > empty by priority when mixed).
///
/// # Example
///
/// ```
/// use salo_patterns::{star_transformer, render_ascii, RenderOptions};
/// let p = star_transformer(8)?;
/// let art = render_ascii(&p, RenderOptions::default());
/// assert_eq!(art.lines().count(), 8);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[must_use]
pub fn render_ascii(pattern: &HybridPattern, opts: RenderOptions) -> String {
    let n = pattern.n();
    let cells = n.min(opts.max_cells.max(1));
    let block = n.div_ceil(cells);
    let grid = n.div_ceil(block);
    let mut out = String::with_capacity(grid * (grid + 1));
    for bi in 0..grid {
        for bj in 0..grid {
            let mut any_window = false;
            let mut any_global = false;
            'scan: for i in (bi * block)..(bi * block + block).min(n) {
                for j in (bj * block)..(bj * block + block).min(n) {
                    if pattern.array_allows(i, j) {
                        any_window = true;
                        break 'scan;
                    }
                    if pattern.is_global(i) || pattern.is_global(j) {
                        any_global = true;
                    }
                }
            }
            out.push(if any_window {
                opts.window_char
            } else if any_global {
                opts.global_char
            } else {
                opts.empty_char
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{longformer, sparse_transformer};

    #[test]
    fn small_pattern_renders_exactly() {
        let p = longformer(6, 3, 1).unwrap();
        let art = render_ascii(&p, RenderOptions::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6);
        // Row 0 is a global row: all kept (window on diagonal, global elsewhere).
        assert!(lines[0].starts_with('#'));
        assert!(lines[0][1..].contains('+'));
        // Diagonal cells are window-covered.
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.chars().nth(i), Some('#'), "diagonal of row {i}");
        }
    }

    #[test]
    fn downsampling_keeps_grid_bounded() {
        let p = longformer(4096, 512, 1).unwrap();
        let opts = RenderOptions { max_cells: 32, ..RenderOptions::default() };
        let art = render_ascii(&p, opts);
        assert_eq!(art.lines().count(), 32);
        assert!(art.lines().all(|l| l.chars().count() == 32));
        // Diagonal band visible.
        assert!(art.lines().next().unwrap().starts_with('#'));
    }

    #[test]
    fn strided_pattern_shows_columns() {
        let p = sparse_transformer(16, 4, 3).unwrap();
        let art = render_ascii(&p, RenderOptions::default());
        // Causal: upper triangle beyond the diagonal is empty.
        let first = art.lines().next().unwrap();
        assert!(first.ends_with('.'));
    }
}
