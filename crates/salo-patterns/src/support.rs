//! The boundary of SALO's *window/global* pattern language.
//!
//! SALO's diagonal dataflow streams unions of translation-invariant
//! windows and global tokens. Mechanisms built from those parts
//! (Longformer, ViL, Star, Sparse Transformer) map exactly; mechanisms
//! with *per-row random* links — BigBird's random attention being the
//! prominent example — have a residual no window/global decomposition
//! expresses. This module measures that boundary: [`analyze_support`]
//! splits an arbitrary mask into the window/global-expressible part and
//! the residual, and [`bigbird_like_mask`] generates the canonical hard
//! case deterministically (no RNG dependency — a splitmix-style hash).
//!
//! Since the composable pattern IR, the residual is no longer
//! *inexpressible*: [`fit_pattern`] with
//! [`FitConfig::capture_residual`] recovers it as block/support terms the
//! scheduler executes through gather-style components. The report here
//! deliberately keeps measuring the window/global boundary, which is what
//! decides how much of a mask the diagonal-streaming PE array covers.

use crate::{fit_pattern, DenseMask, FitConfig, HybridPattern};

/// How much of a mask SALO's pattern language expresses.
#[derive(Debug, Clone)]
pub struct SupportReport {
    /// Kept positions in the mask.
    pub total_nnz: u64,
    /// Positions covered by the fitted hybrid pattern.
    pub covered_nnz: u64,
    /// Positions the pattern language cannot express (would need a
    /// gather-capable unit).
    pub residual_nnz: u64,
    /// Positions the fitted pattern adds beyond the mask (over-coverage:
    /// extra compute, not incorrectness — masked in software).
    pub spurious_nnz: u64,
    /// `covered / total`.
    pub coverage: f64,
    /// The fitted pattern, when any structure was found.
    pub fitted: Option<HybridPattern>,
}

/// Splits a mask into its window/global-expressible part and the residual.
///
/// The fit always runs with [`FitConfig::capture_residual`] off, whatever
/// the caller passes: this report's purpose is to measure the
/// window/global boundary, and a residual-capturing fit would trivially
/// report zero residual for every mask.
#[must_use]
pub fn analyze_support(mask: &DenseMask, config: FitConfig) -> SupportReport {
    let total = mask.nnz();
    let config = FitConfig { capture_residual: false, ..config };
    match fit_pattern(mask, config) {
        Ok(report) => {
            let covered = total - report.missed;
            SupportReport {
                total_nnz: total,
                covered_nnz: covered,
                residual_nnz: report.missed,
                spurious_nnz: report.extra,
                coverage: if total == 0 { 1.0 } else { covered as f64 / total as f64 },
                fitted: Some(report.pattern),
            }
        }
        Err(_) => SupportReport {
            total_nnz: total,
            covered_nnz: 0,
            residual_nnz: total,
            spurious_nnz: 0,
            coverage: if total == 0 { 1.0 } else { 0.0 },
            fitted: None,
        },
    }
}

/// A BigBird-style mask: sliding window of `w`, `ng` global tokens, plus
/// `random_per_row` uniformly-hashed random keys per query.
///
/// # Errors
///
/// Returns a pattern error if the window part is degenerate.
pub fn bigbird_like_mask(
    n: usize,
    w: usize,
    ng: usize,
    random_per_row: usize,
    seed: u64,
) -> Result<DenseMask, crate::PatternError> {
    let base = crate::longformer(n, w, ng)?;
    let mut mask = DenseMask::from_pattern(&base);
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        // splitmix64 step: deterministic, well-mixed, dependency-free.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in 0..n {
        for _ in 0..random_per_row {
            let j = (next() % n as u64) as usize;
            mask.set(i, j, true);
        }
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid_2d, longformer, sparse_transformer};

    #[test]
    fn preset_masks_are_fully_supported() {
        for pattern in [
            longformer(80, 10, 1).unwrap(),
            sparse_transformer(60, 5, 4).unwrap(),
            grid_2d(8, 8, 3, 3, 1).unwrap(),
        ] {
            let mask = DenseMask::from_pattern(&pattern);
            let report = analyze_support(&mask, FitConfig::default());
            assert_eq!(report.residual_nnz, 0, "preset should be fully expressible");
            assert!((report.coverage - 1.0).abs() < f64::EPSILON);
            assert!(report.fitted.is_some());
        }
    }

    #[test]
    fn bigbird_random_part_is_the_residual() {
        let n = 96;
        let mask = bigbird_like_mask(n, 12, 1, 3, 42).unwrap();
        let report = analyze_support(&mask, FitConfig::default());
        // The window+global structure is recovered...
        let fitted = report.fitted.as_ref().expect("structure found");
        assert!(!fitted.windows().is_empty());
        assert_eq!(fitted.globals(), &[0], "the planted global token is recovered");
        // ...while the random links remain unexpressible.
        assert!(report.residual_nnz > 0, "random part must be residual");
        // Roughly `random_per_row * n` minus collisions with the window.
        let upper = (3 * n) as u64;
        assert!(report.residual_nnz <= upper);
        assert!(report.residual_nnz as f64 > 0.5 * upper as f64, "{}", report.residual_nnz);
        assert!(report.coverage > 0.75, "bulk still expressible: {}", report.coverage);
    }

    #[test]
    fn empty_mask_is_trivially_supported() {
        let mask = DenseMask::new(8).unwrap();
        let report = analyze_support(&mask, FitConfig::default());
        assert_eq!(report.total_nnz, 0);
        assert!((report.coverage - 1.0).abs() < f64::EPSILON);
        assert!(report.fitted.is_none());
    }

    #[test]
    fn bigbird_mask_is_deterministic() {
        let a = bigbird_like_mask(32, 6, 1, 2, 7).unwrap();
        let b = bigbird_like_mask(32, 6, 1, 2, 7).unwrap();
        assert_eq!(a, b);
        let c = bigbird_like_mask(32, 6, 1, 2, 8).unwrap();
        assert_ne!(a, c);
    }
}
