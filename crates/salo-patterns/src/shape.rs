use crate::PatternError;

/// The dimensions of one attention computation (one head).
///
/// SALO processes attention head by head: a sequence of `seq_len` tokens, each
/// represented by `head_dim`-dimensional query/key/value vectors. The
/// multi-head structure of a full layer is captured by `num_heads`; heads are
/// independent and are executed back to back on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttentionShape {
    /// Number of tokens in the sequence (`n` in the paper).
    pub seq_len: usize,
    /// Dimension of each head's query/key/value vectors (`d` in the paper).
    pub head_dim: usize,
    /// Number of attention heads (`h` in the paper).
    pub num_heads: usize,
}

impl AttentionShape {
    /// Creates a shape, validating that all dimensions are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptySequence`] if any dimension is zero.
    pub fn new(seq_len: usize, head_dim: usize, num_heads: usize) -> Result<Self, PatternError> {
        if seq_len == 0 || head_dim == 0 || num_heads == 0 {
            return Err(PatternError::EmptySequence);
        }
        Ok(Self { seq_len, head_dim, num_heads })
    }

    /// Shape of a single head with the same sequence length.
    #[must_use]
    pub fn single_head(&self) -> Self {
        Self { num_heads: 1, ..*self }
    }

    /// Model ("hidden") dimension: `head_dim * num_heads`.
    #[must_use]
    pub fn model_dim(&self) -> usize {
        self.head_dim * self.num_heads
    }

    /// Number of multiply-accumulate operations for *dense* attention over
    /// all heads: `2 * n^2 * d` per head (the two matrix multiplications).
    #[must_use]
    pub fn dense_macs(&self) -> u64 {
        2 * (self.seq_len as u64) * (self.seq_len as u64) * (self.model_dim() as u64)
    }

    /// Number of MACs for sparse attention over all heads, given the number
    /// of non-masked score positions `nnz` of one head's pattern.
    #[must_use]
    pub fn sparse_macs(&self, nnz: u64) -> u64 {
        2 * nnz * self.model_dim() as u64
    }

    /// Floating-point operations for dense attention (2 FLOPs per MAC).
    #[must_use]
    pub fn dense_flops(&self) -> u64 {
        2 * self.dense_macs()
    }

    /// Floating-point operations for sparse attention (2 FLOPs per MAC).
    #[must_use]
    pub fn sparse_flops(&self, nnz: u64) -> u64 {
        2 * self.sparse_macs(nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_dimensions() {
        assert!(AttentionShape::new(0, 64, 1).is_err());
        assert!(AttentionShape::new(128, 0, 1).is_err());
        assert!(AttentionShape::new(128, 64, 0).is_err());
        let s = AttentionShape::new(128, 64, 12).unwrap();
        assert_eq!(s.model_dim(), 768);
    }

    #[test]
    fn dense_macs_are_quadratic() {
        let s = AttentionShape::new(100, 64, 1).unwrap();
        let s2 = AttentionShape::new(200, 64, 1).unwrap();
        assert_eq!(s2.dense_macs(), 4 * s.dense_macs());
    }

    #[test]
    fn sparse_macs_scale_with_nnz() {
        let s = AttentionShape::new(4096, 64, 12).unwrap();
        // BERT-like dense equivalence: nnz = n^2 recovers dense count.
        let n2 = (s.seq_len * s.seq_len) as u64;
        assert_eq!(s.sparse_macs(n2), s.dense_macs());
        assert_eq!(s.sparse_flops(10), 2 * s.sparse_macs(10));
    }

    #[test]
    fn single_head_preserves_other_dims() {
        let s = AttentionShape::new(4096, 64, 12).unwrap();
        let one = s.single_head();
        assert_eq!(one.num_heads, 1);
        assert_eq!(one.seq_len, 4096);
        assert_eq!(one.head_dim, 64);
    }
}
