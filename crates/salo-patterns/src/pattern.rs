use crate::{PatternBuilder, PatternError, PatternStats, StableHasher, Window};

/// A hybrid sparse attention pattern: the union of window components and
/// global tokens over a sequence of length `n`.
///
/// This is the pattern language of the SALO paper (§2.3/§3): any number of
/// sliding or dilated [`Window`]s plus a set of global tokens. Position
/// `(i, j)` of the attention score matrix is *kept* (computed) iff
///
/// * some window contains the relative offset `j - i`, or
/// * `i` is a global token (its query attends every key), or
/// * `j` is a global token (its key is attended by every query).
///
/// All coordinates are clipped to `0..n`.
///
/// # Example
///
/// ```
/// use salo_patterns::{HybridPattern, Window};
///
/// let p = HybridPattern::builder(16)
///     .window(Window::symmetric(3)?)
///     .global_token(0)
///     .build()?;
/// assert_eq!(p.row_keys(8), vec![0, 7, 8, 9]);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HybridPattern {
    n: usize,
    windows: Vec<Window>,
    globals: Vec<usize>,
}

impl HybridPattern {
    /// Starts building a pattern over a sequence of `n` tokens.
    #[must_use]
    pub fn builder(n: usize) -> PatternBuilder {
        PatternBuilder::new(n)
    }

    pub(crate) fn from_parts(
        n: usize,
        windows: Vec<Window>,
        mut globals: Vec<usize>,
    ) -> Result<Self, PatternError> {
        if n == 0 {
            return Err(PatternError::EmptySequence);
        }
        if windows.is_empty() && globals.is_empty() {
            return Err(PatternError::EmptyPattern);
        }
        if let Some(&bad) = globals.iter().find(|&&g| g >= n) {
            return Err(PatternError::GlobalTokenOutOfRange { token: bad, n });
        }
        globals.sort_unstable();
        globals.dedup();
        Ok(Self { n, windows, globals })
    }

    /// Sequence length `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The window components of the pattern.
    #[must_use]
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The global token indices, sorted and deduplicated.
    #[must_use]
    pub fn globals(&self) -> &[usize] {
        &self.globals
    }

    /// Whether `token` is a global token.
    #[must_use]
    pub fn is_global(&self, token: usize) -> bool {
        self.globals.binary_search(&token).is_ok()
    }

    /// Whether score position `(i, j)` is kept by the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is outside the sequence (`>= n`); this indicates
    /// a logic error in the caller, not a data condition.
    #[must_use]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "position ({i}, {j}) outside sequence of length {n}",
            n = self.n
        );
        if self.is_global(i) || self.is_global(j) {
            return true;
        }
        self.window_allows(i, j)
    }

    /// Whether `(i, j)` is kept by a window component alone (ignoring global
    /// rows/columns). The data scheduler uses this to separate the work of
    /// the PE array from that of the global PE row/column.
    #[must_use]
    pub fn window_allows(&self, i: usize, j: usize) -> bool {
        let delta = j as i64 - i as i64;
        self.windows.iter().any(|w| w.contains_offset(delta))
    }

    /// The sorted, deduplicated keys attended by query `i`.
    #[must_use]
    pub fn row_keys(&self, i: usize) -> Vec<usize> {
        assert!(i < self.n, "row {i} outside sequence of length {n}", n = self.n);
        if self.is_global(i) {
            return (0..self.n).collect();
        }
        let mut keys: Vec<usize> = self.globals.clone();
        for w in &self.windows {
            for delta in w.offsets() {
                let j = i as i64 + delta;
                if j >= 0 && (j as usize) < self.n {
                    keys.push(j as usize);
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Number of keys attended by query `i`.
    #[must_use]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_keys(i).len()
    }

    /// Exact number of kept positions in the `n x n` score matrix, counting
    /// boundary clipping and overlaps between components once.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        (0..self.n).map(|i| self.row_nnz(i) as u64).sum()
    }

    /// Exact density: `nnz / n^2`. The paper's Table 2 "Sparsity" column
    /// reports the *nominal* density instead (see
    /// [`PatternStats::nominal_density`]); both are exposed.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n as f64 * self.n as f64)
    }

    /// Computes summary statistics (exact and nominal density, widths, MACs).
    #[must_use]
    pub fn stats(&self) -> PatternStats {
        PatternStats::from_pattern(self)
    }

    /// Iterates all kept `(i, j)` positions in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_keys(i).into_iter().map(move |j| (i, j)))
    }

    /// Total width (number of offsets) summed over all windows — the paper's
    /// window size `w` for single-window patterns.
    #[must_use]
    pub fn total_window_width(&self) -> usize {
        self.windows.iter().map(Window::width).sum()
    }

    /// The causal restriction of this pattern: every window clipped to
    /// non-positive offsets (`j <= i`), for decoder-style autoregressive
    /// attention. Windows entirely in the future are dropped; global
    /// tokens are kept (causal models place them at the sequence start,
    /// where their row is almost fully masked anyway — the caller decides
    /// their semantics).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptyPattern`] if nothing survives the
    /// clipping.
    pub fn causal(&self) -> Result<HybridPattern, PatternError> {
        let windows = self.windows.iter().filter_map(Window::causal_clip).collect();
        HybridPattern::from_parts(self.n, windows, self.globals.clone())
    }

    /// A stable 64-bit structural fingerprint of the pattern.
    ///
    /// Equal patterns (same sequence length, same window list in order
    /// with dilation, same global-token set) always fingerprint
    /// identically; distinct patterns collide only with the ~2^-64
    /// probability of the underlying non-cryptographic hash, so callers
    /// keying caches on it must verify the actual pattern on a hit (as
    /// `salo-serve`'s plan cache does). Unlike `Hash`, the value is
    /// process- and release-stable ([`StableHasher`]), so it is usable as
    /// a persistent cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Exhaustive destructuring: a future field cannot be forgotten
        // here without a compile error.
        let Self { n, windows, globals } = self;
        let mut h = StableHasher::new();
        h.write_usize(*n);
        h.write_usize(windows.len());
        for w in windows {
            h.write_i64(w.lo());
            h.write_i64(w.hi());
            h.write_usize(w.dilation());
        }
        h.write_usize(globals.len());
        for &g in globals {
            h.write_usize(g);
        }
        h.finish()
    }

    /// The union of all windows' relative offsets, sorted and deduplicated.
    ///
    /// For patterns whose windows are all undilated this is the per-query
    /// offset menu the scheduler chunks into accelerator passes.
    #[must_use]
    pub fn merged_offsets(&self) -> Vec<i64> {
        let mut offsets: Vec<i64> =
            self.windows.iter().flat_map(|w| w.offsets().collect::<Vec<_>>()).collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HybridPattern {
        HybridPattern::builder(10)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap()
    }

    #[test]
    fn allows_window_and_globals() {
        let p = small();
        assert!(p.allows(5, 4));
        assert!(p.allows(5, 5));
        assert!(p.allows(5, 6));
        assert!(!p.allows(5, 7));
        assert!(p.allows(5, 0)); // global column
        assert!(p.allows(0, 9)); // global row
    }

    #[test]
    fn row_keys_sorted_unique() {
        let p = small();
        assert_eq!(p.row_keys(0), (0..10).collect::<Vec<_>>());
        assert_eq!(p.row_keys(1), vec![0, 1, 2]); // global 0 overlaps window
        assert_eq!(p.row_keys(5), vec![0, 4, 5, 6]);
        assert_eq!(p.row_keys(9), vec![0, 8, 9]);
    }

    #[test]
    fn nnz_counts_overlaps_once() {
        // n=4, window symmetric(3) => offsets -1..=1, global token 0.
        let p = HybridPattern::builder(4)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        // row 0: global row -> 4; row 1: {0,1,2}; row 2: {0,1,2,3}; row 3: {0,2,3}
        assert_eq!(p.nnz(), 4 + 3 + 4 + 3);
        let dense: Vec<(usize, usize)> = p.iter().collect();
        assert_eq!(dense.len() as u64, p.nnz());
    }

    #[test]
    fn density_matches_iter_count() {
        let p = small();
        let count = p.iter().count() as f64;
        assert!((p.density() - count / 100.0).abs() < 1e-12);
    }

    #[test]
    fn global_only_pattern() {
        let p = HybridPattern::builder(6).global_token(2).build().unwrap();
        assert!(p.allows(2, 5));
        assert!(p.allows(4, 2));
        assert!(!p.allows(4, 5));
        assert_eq!(p.nnz(), 6 + 5); // full row 2 plus column 2 minus overlap
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(matches!(
            HybridPattern::builder(0).global_token(0).build(),
            Err(PatternError::EmptySequence)
        ));
        assert!(matches!(HybridPattern::builder(4).build(), Err(PatternError::EmptyPattern)));
        assert!(matches!(
            HybridPattern::builder(4).global_token(7).build(),
            Err(PatternError::GlobalTokenOutOfRange { token: 7, n: 4 })
        ));
    }

    #[test]
    fn globals_deduplicated_and_sorted() {
        let p = HybridPattern::builder(8)
            .global_token(5)
            .global_token(1)
            .global_token(5)
            .build()
            .unwrap();
        assert_eq!(p.globals(), &[1, 5]);
        assert!(p.is_global(1));
        assert!(!p.is_global(2));
    }

    #[test]
    fn merged_offsets_dedup_across_windows() {
        let p = HybridPattern::builder(32)
            .window(Window::sliding(-2, 2).unwrap())
            .window(Window::sliding(0, 4).unwrap())
            .build()
            .unwrap();
        assert_eq!(p.merged_offsets(), vec![-2, -1, 0, 1, 2, 3, 4]);
        assert_eq!(p.total_window_width(), 10); // widths summed, not deduped
    }

    #[test]
    #[should_panic(expected = "outside sequence")]
    fn allows_panics_out_of_range() {
        let p = small();
        let _ = p.allows(10, 0);
    }

    #[test]
    fn causal_clips_future_offsets() {
        let p = HybridPattern::builder(16)
            .window(Window::symmetric(7).unwrap()) // -3..=3
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert!(c.allows(8, 8));
        assert!(c.allows(8, 5));
        assert!(!c.allows(8, 9), "future key masked");
        assert_eq!(c.windows()[0].hi(), 0);
    }

    #[test]
    fn causal_respects_dilation_grid() {
        let p = HybridPattern::builder(30)
            .window(Window::dilated(-7, 5, 3).unwrap()) // offsets -7,-4,-1,2,5
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        // Aligned hi: largest grid offset <= 0 is -1.
        assert_eq!(c.windows()[0].hi(), -1);
        assert!(c.allows(10, 9));
        assert!(!c.allows(10, 12));
    }

    #[test]
    fn causal_drops_future_only_windows() {
        let p = HybridPattern::builder(12)
            .window(Window::sliding(2, 4).unwrap())
            .window(Window::causal(3).unwrap())
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert_eq!(c.windows().len(), 1);
        // Everything that remains is causal.
        for (i, j) in c.iter() {
            assert!(j <= i, "({i},{j}) is anti-causal");
        }
    }

    #[test]
    fn fingerprint_separates_structure() {
        let a = small();
        let b = small();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal patterns, equal fingerprints");

        let longer = HybridPattern::builder(11)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), longer.fingerprint(), "sequence length matters");

        let other_global = HybridPattern::builder(10)
            .window(Window::symmetric(3).unwrap())
            .global_token(1)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), other_global.fingerprint(), "globals matter");

        let dilated = HybridPattern::builder(10)
            .window(Window::dilated(-1, 1, 2).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sliding = HybridPattern::builder(10)
            .window(Window::sliding(-1, 1).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        assert_ne!(dilated.fingerprint(), sliding.fingerprint(), "dilation matters");
    }

    #[test]
    fn causal_alignment_of_positive_offset_dilated_windows() {
        // Regression sweep for the dilation-grid alignment: positive lower
        // bounds must drop the window, and any window with lo <= 0 must
        // keep exactly its grid points <= 0 — the aligned upper bound can
        // never fall below lo.
        // Entirely-future dilated window: dropped even when a grid point
        // would align to a non-positive value "by accident".
        let p = HybridPattern::builder(20)
            .window(Window::dilated(2, 8, 3).unwrap())
            .window(Window::causal(2).unwrap())
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert_eq!(c.windows().len(), 1);
        assert_eq!(c.windows()[0].hi(), 0);

        // lo == 0 with positive reach: only the diagonal survives.
        let p =
            HybridPattern::builder(20).window(Window::dilated(0, 6, 3).unwrap()).build().unwrap();
        let c = p.causal().unwrap();
        assert_eq!((c.windows()[0].lo(), c.windows()[0].hi()), (0, 0));
        assert_eq!(c.windows()[0].width(), 1);

        // 0 not on the grid: the aligned bound steps down to the largest
        // grid offset below it, never past lo.
        for (lo, hi, d, want_hi) in
            [(-1i64, 5i64, 3usize, -1i64), (-2, 4, 3, -2), (-5, 7, 4, -1), (-7, 5, 3, -1)]
        {
            let p = HybridPattern::builder(30)
                .window(Window::dilated(lo, hi, d).unwrap())
                .build()
                .unwrap();
            let c = p.causal().unwrap();
            let w = c.windows()[0];
            assert_eq!(w.hi(), want_hi, "dilated({lo}, {hi}, {d})");
            assert!(w.hi() >= w.lo(), "aligned bound degenerated below lo");
            assert_eq!(w.dilation(), d, "grid preserved");
            // Every surviving offset is causal and on the original grid.
            for o in w.offsets() {
                assert!(o <= 0);
                assert_eq!((o - lo).rem_euclid(d as i64), 0, "offset {o} off-grid");
            }
        }

        // Exhaustive cross-check against the set definition.
        for lo in -9i64..=9 {
            for d in 1usize..=4 {
                for k in 0i64..6 {
                    let hi = lo + k * d as i64;
                    let w = Window::dilated(lo, hi, d).unwrap();
                    let expect: Vec<i64> = w.offsets().filter(|&o| o <= 0).collect();
                    match w.causal_clip() {
                        Some(c) => {
                            assert_eq!(c.offsets().collect::<Vec<_>>(), expect, "{w:?}");
                        }
                        None => assert!(expect.is_empty(), "{w:?} dropped offsets {expect:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn causal_of_future_only_pattern_errors() {
        let p = HybridPattern::builder(8).window(Window::sliding(1, 3).unwrap()).build().unwrap();
        assert!(matches!(p.causal(), Err(PatternError::EmptyPattern)));
    }
}
