use crate::terms::expand_residual_term;
use crate::{
    PatternBuilder, PatternError, PatternStats, PatternTerm, StableHasher, SupportRuns, Window,
};

/// A hybrid sparse attention pattern: a normalized composition of
/// [`PatternTerm`]s over a sequence of length `n`.
///
/// The SALO paper's pattern language (§2.3/§3) — any number of sliding or
/// dilated [`Window`]s plus a set of global tokens — is the translation
/// invariant core. The IR adds block-sparse, strided and BigBird-style
/// random terms, which normalize into a *residual*: one canonical per-row
/// [`SupportRuns`] holding every kept cell not already owned by a window
/// offset or a global row/column. Position `(i, j)` of the attention score
/// matrix is *kept* (computed) iff
///
/// * some window contains the relative offset `j - i`, or
/// * `i` is a global token (its query attends every key), or
/// * `j` is a global token (its key is attended by every query), or
/// * the residual support contains `(i, j)`.
///
/// The three owner classes are disjoint by construction, so exactly-once
/// scheduling falls out of the normalization. All coordinates are clipped
/// to `0..n`.
///
/// # Example
///
/// ```
/// use salo_patterns::{HybridPattern, Window};
///
/// let p = HybridPattern::builder(16)
///     .window(Window::symmetric(3)?)
///     .global_token(0)
///     .build()?;
/// assert_eq!(p.row_keys(8), vec![0, 7, 8, 9]);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HybridPattern {
    n: usize,
    windows: Vec<Window>,
    globals: Vec<usize>,
    /// Non-translation-invariant terms, kept verbatim in composition order
    /// so `terms()` round-trips and fingerprints stay structural.
    residual_terms: Vec<PatternTerm>,
    /// The residual terms expanded to per-row runs, minus every cell owned
    /// by a window offset or a global row/column.
    residual: SupportRuns,
}

impl HybridPattern {
    /// Starts building a pattern over a sequence of `n` tokens.
    #[must_use]
    pub fn builder(n: usize) -> PatternBuilder {
        PatternBuilder::new(n)
    }

    /// Normalizes a composition of [`PatternTerm`]s into a pattern.
    ///
    /// Translation-invariant terms ([`PatternTerm::Window`],
    /// [`PatternTerm::Strided`]) lower to windows; [`PatternTerm::Global`]s
    /// collect into the sorted global set; the remaining terms expand to
    /// per-row support runs from which every cell already covered by a
    /// window or a global row/column is removed. Normalization is
    /// idempotent: `from_terms(n, p.terms())` reproduces `p` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptySequence`] for `n == 0`,
    /// [`PatternError::GlobalTokenOutOfRange`] for an out-of-range global,
    /// [`PatternError::InvalidTerm`] for malformed block/strided/support
    /// parameters, and [`PatternError::EmptyPattern`] when no term
    /// contributes any kept cell.
    pub fn from_terms(n: usize, terms: Vec<PatternTerm>) -> Result<Self, PatternError> {
        if n == 0 {
            return Err(PatternError::EmptySequence);
        }
        let mut windows = Vec::new();
        let mut globals = Vec::new();
        let mut residual_terms = Vec::new();
        for term in terms {
            match term {
                PatternTerm::Window(w) => windows.push(w),
                PatternTerm::Global { token } => {
                    if token >= n {
                        return Err(PatternError::GlobalTokenOutOfRange { token, n });
                    }
                    globals.push(token);
                }
                PatternTerm::Strided { stride, local } => {
                    if stride == 0 {
                        return Err(PatternError::InvalidTerm {
                            reason: "strided term needs stride >= 1".into(),
                        });
                    }
                    windows.push(Window::causal(local)?);
                    let reach = ((n - 1) / stride) as i64 * stride as i64;
                    if reach > 0 {
                        windows.push(Window::dilated(-reach, 0, stride)?);
                    }
                }
                residual => residual_terms.push(residual),
            }
        }
        globals.sort_unstable();
        globals.dedup();
        let residual = if residual_terms.is_empty() {
            SupportRuns::empty(n)
        } else {
            let mut rows = vec![Vec::new(); n];
            for term in &residual_terms {
                expand_residual_term(term, n, &mut rows)?;
            }
            let is_g = |t: usize| globals.binary_search(&t).is_ok();
            for (i, row) in rows.iter_mut().enumerate() {
                if is_g(i) {
                    row.clear();
                    continue;
                }
                row.retain(|&j| {
                    !is_g(j as usize)
                        && !windows.iter().any(|w| w.contains_offset(i64::from(j) - i as i64))
                });
            }
            SupportRuns::from_rows(n, &mut rows)
        };
        if windows.is_empty() && globals.is_empty() && residual.is_empty() {
            return Err(PatternError::EmptyPattern);
        }
        Ok(Self { n, windows, globals, residual_terms, residual })
    }

    /// The pattern's terms in normalized order: windows, then globals, then
    /// the residual terms verbatim. `from_terms(n, p.terms())` rebuilds an
    /// identical pattern.
    #[must_use]
    pub fn terms(&self) -> Vec<PatternTerm> {
        let mut out: Vec<PatternTerm> =
            self.windows.iter().map(|&w| PatternTerm::Window(w)).collect();
        out.extend(self.globals.iter().map(|&token| PatternTerm::Global { token }));
        out.extend(self.residual_terms.iter().cloned());
        out
    }

    /// Sequence length `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The window components of the pattern.
    #[must_use]
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The global token indices, sorted and deduplicated.
    #[must_use]
    pub fn globals(&self) -> &[usize] {
        &self.globals
    }

    /// Whether `token` is a global token.
    #[must_use]
    pub fn is_global(&self, token: usize) -> bool {
        self.globals.binary_search(&token).is_ok()
    }

    /// The non-translation-invariant terms of the composition, in order.
    #[must_use]
    pub fn residual_terms(&self) -> &[PatternTerm] {
        &self.residual_terms
    }

    /// The normalized residual support: every kept cell not owned by a
    /// window offset or a global row/column. The scheduler executes these
    /// cells through gather-style row-support components.
    #[must_use]
    pub fn residual(&self) -> &SupportRuns {
        &self.residual
    }

    /// Whether score position `(i, j)` is kept by the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is outside the sequence (`>= n`); this indicates
    /// a logic error in the caller, not a data condition.
    #[must_use]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "position ({i}, {j}) outside sequence of length {n}",
            n = self.n
        );
        if self.is_global(i) || self.is_global(j) {
            return true;
        }
        self.array_allows(i, j)
    }

    /// Whether `(i, j)` is kept by a window component alone (ignoring global
    /// rows/columns and the residual support). The data scheduler uses this
    /// to separate the work of the diagonal-streaming PE array from that of
    /// the global PE row/column and the gather-style residual components.
    #[must_use]
    pub fn window_allows(&self, i: usize, j: usize) -> bool {
        let delta = j as i64 - i as i64;
        self.windows.iter().any(|w| w.contains_offset(delta))
    }

    /// Whether `(i, j)` is kept by the PE array's work — a window component
    /// or the residual support — ignoring global rows/columns.
    #[must_use]
    pub fn array_allows(&self, i: usize, j: usize) -> bool {
        self.window_allows(i, j) || self.residual.contains(i, j)
    }

    /// The sorted, deduplicated keys attended by query `i`.
    #[must_use]
    pub fn row_keys(&self, i: usize) -> Vec<usize> {
        assert!(i < self.n, "row {i} outside sequence of length {n}", n = self.n);
        if self.is_global(i) {
            return (0..self.n).collect();
        }
        let mut keys: Vec<usize> = self.globals.clone();
        for w in &self.windows {
            for delta in w.offsets() {
                let j = i as i64 + delta;
                if j >= 0 && (j as usize) < self.n {
                    keys.push(j as usize);
                }
            }
        }
        self.residual.extend_row_keys(i, &mut keys);
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Number of keys attended by query `i`.
    #[must_use]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_keys(i).len()
    }

    /// Exact number of kept positions in the `n x n` score matrix, counting
    /// boundary clipping and overlaps between components once.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        (0..self.n).map(|i| self.row_nnz(i) as u64).sum()
    }

    /// Exact density: `nnz / n^2`. The paper's Table 2 "Sparsity" column
    /// reports the *nominal* density instead (see
    /// [`PatternStats::nominal_density`]); both are exposed.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n as f64 * self.n as f64)
    }

    /// Computes summary statistics (exact and nominal density, widths, MACs).
    #[must_use]
    pub fn stats(&self) -> PatternStats {
        PatternStats::from_pattern(self)
    }

    /// Iterates all kept `(i, j)` positions in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_keys(i).into_iter().map(move |j| (i, j)))
    }

    /// Total width (number of offsets) summed over all windows — the paper's
    /// window size `w` for single-window patterns.
    #[must_use]
    pub fn total_window_width(&self) -> usize {
        self.windows.iter().map(Window::width).sum()
    }

    /// The causal restriction of this pattern: every window clipped to
    /// non-positive offsets and every residual run clipped to keys
    /// `j <= i`, for decoder-style autoregressive attention. Windows
    /// entirely in the future are dropped; global tokens are kept (causal
    /// models place them at the sequence start, where their row is almost
    /// fully masked anyway — the caller decides their semantics). The
    /// clipped residual is carried as a single explicit
    /// [`PatternTerm::Support`] term, so the causal pattern normalizes to
    /// itself.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptyPattern`] if nothing survives the
    /// clipping.
    pub fn causal(&self) -> Result<HybridPattern, PatternError> {
        let windows: Vec<Window> = self.windows.iter().filter_map(Window::causal_clip).collect();
        let residual = self.residual.causal_clip();
        if windows.is_empty() && self.globals.is_empty() && residual.is_empty() {
            return Err(PatternError::EmptyPattern);
        }
        let residual_terms = if residual.is_empty() {
            Vec::new()
        } else {
            vec![PatternTerm::Support(residual.clone())]
        };
        Ok(Self { n: self.n, windows, globals: self.globals.clone(), residual_terms, residual })
    }

    /// A stable 64-bit structural fingerprint of the pattern.
    ///
    /// Equal patterns (same sequence length, same window list in order
    /// with dilation, same global-token set, same residual terms) always
    /// fingerprint identically; distinct patterns collide only with the
    /// ~2^-64 probability of the underlying non-cryptographic hash, so
    /// callers keying caches on it must verify the actual pattern on a hit
    /// (as `salo-serve`'s plan cache does). Unlike `Hash`, the value is
    /// process- and release-stable ([`StableHasher`]): random terms hash
    /// their `(count, seed)` parameters, which fully determine the
    /// expansion, so it is usable as a persistent cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Exhaustive destructuring: a future field cannot be forgotten
        // here without a compile error.
        let Self { n, windows, globals, residual_terms, residual } = self;
        // The residual is a pure function of (n, windows, globals,
        // residual_terms); hashing the terms covers it.
        let _ = residual;
        let mut h = StableHasher::new();
        h.write_usize(*n);
        h.write_usize(windows.len());
        for w in windows {
            h.write_i64(w.lo());
            h.write_i64(w.hi());
            h.write_usize(w.dilation());
        }
        h.write_usize(globals.len());
        for &g in globals {
            h.write_usize(g);
        }
        h.write_usize(residual_terms.len());
        for t in residual_terms {
            t.hash_stable(&mut h);
        }
        h.finish()
    }

    /// The union of all windows' relative offsets, sorted and deduplicated.
    ///
    /// For patterns whose windows are all undilated this is the per-query
    /// offset menu the scheduler chunks into accelerator passes.
    #[must_use]
    pub fn merged_offsets(&self) -> Vec<i64> {
        let mut offsets: Vec<i64> =
            self.windows.iter().flat_map(|w| w.offsets().collect::<Vec<_>>()).collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HybridPattern {
        HybridPattern::builder(10)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap()
    }

    #[test]
    fn allows_window_and_globals() {
        let p = small();
        assert!(p.allows(5, 4));
        assert!(p.allows(5, 5));
        assert!(p.allows(5, 6));
        assert!(!p.allows(5, 7));
        assert!(p.allows(5, 0)); // global column
        assert!(p.allows(0, 9)); // global row
    }

    #[test]
    fn row_keys_sorted_unique() {
        let p = small();
        assert_eq!(p.row_keys(0), (0..10).collect::<Vec<_>>());
        assert_eq!(p.row_keys(1), vec![0, 1, 2]); // global 0 overlaps window
        assert_eq!(p.row_keys(5), vec![0, 4, 5, 6]);
        assert_eq!(p.row_keys(9), vec![0, 8, 9]);
    }

    #[test]
    fn nnz_counts_overlaps_once() {
        // n=4, window symmetric(3) => offsets -1..=1, global token 0.
        let p = HybridPattern::builder(4)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        // row 0: global row -> 4; row 1: {0,1,2}; row 2: {0,1,2,3}; row 3: {0,2,3}
        assert_eq!(p.nnz(), 4 + 3 + 4 + 3);
        let dense: Vec<(usize, usize)> = p.iter().collect();
        assert_eq!(dense.len() as u64, p.nnz());
    }

    #[test]
    fn density_matches_iter_count() {
        let p = small();
        let count = p.iter().count() as f64;
        assert!((p.density() - count / 100.0).abs() < 1e-12);
    }

    #[test]
    fn global_only_pattern() {
        let p = HybridPattern::builder(6).global_token(2).build().unwrap();
        assert!(p.allows(2, 5));
        assert!(p.allows(4, 2));
        assert!(!p.allows(4, 5));
        assert_eq!(p.nnz(), 6 + 5); // full row 2 plus column 2 minus overlap
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(matches!(
            HybridPattern::builder(0).global_token(0).build(),
            Err(PatternError::EmptySequence)
        ));
        assert!(matches!(HybridPattern::builder(4).build(), Err(PatternError::EmptyPattern)));
        assert!(matches!(
            HybridPattern::builder(4).global_token(7).build(),
            Err(PatternError::GlobalTokenOutOfRange { token: 7, n: 4 })
        ));
    }

    #[test]
    fn globals_deduplicated_and_sorted() {
        let p = HybridPattern::builder(8)
            .global_token(5)
            .global_token(1)
            .global_token(5)
            .build()
            .unwrap();
        assert_eq!(p.globals(), &[1, 5]);
        assert!(p.is_global(1));
        assert!(!p.is_global(2));
    }

    #[test]
    fn merged_offsets_dedup_across_windows() {
        let p = HybridPattern::builder(32)
            .window(Window::sliding(-2, 2).unwrap())
            .window(Window::sliding(0, 4).unwrap())
            .build()
            .unwrap();
        assert_eq!(p.merged_offsets(), vec![-2, -1, 0, 1, 2, 3, 4]);
        assert_eq!(p.total_window_width(), 10); // widths summed, not deduped
    }

    #[test]
    #[should_panic(expected = "outside sequence")]
    fn allows_panics_out_of_range() {
        let p = small();
        let _ = p.allows(10, 0);
    }

    #[test]
    fn causal_clips_future_offsets() {
        let p = HybridPattern::builder(16)
            .window(Window::symmetric(7).unwrap()) // -3..=3
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert!(c.allows(8, 8));
        assert!(c.allows(8, 5));
        assert!(!c.allows(8, 9), "future key masked");
        assert_eq!(c.windows()[0].hi(), 0);
    }

    #[test]
    fn causal_respects_dilation_grid() {
        let p = HybridPattern::builder(30)
            .window(Window::dilated(-7, 5, 3).unwrap()) // offsets -7,-4,-1,2,5
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        // Aligned hi: largest grid offset <= 0 is -1.
        assert_eq!(c.windows()[0].hi(), -1);
        assert!(c.allows(10, 9));
        assert!(!c.allows(10, 12));
    }

    #[test]
    fn causal_drops_future_only_windows() {
        let p = HybridPattern::builder(12)
            .window(Window::sliding(2, 4).unwrap())
            .window(Window::causal(3).unwrap())
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert_eq!(c.windows().len(), 1);
        // Everything that remains is causal.
        for (i, j) in c.iter() {
            assert!(j <= i, "({i},{j}) is anti-causal");
        }
    }

    #[test]
    fn fingerprint_separates_structure() {
        let a = small();
        let b = small();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal patterns, equal fingerprints");

        let longer = HybridPattern::builder(11)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), longer.fingerprint(), "sequence length matters");

        let other_global = HybridPattern::builder(10)
            .window(Window::symmetric(3).unwrap())
            .global_token(1)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), other_global.fingerprint(), "globals matter");

        let dilated = HybridPattern::builder(10)
            .window(Window::dilated(-1, 1, 2).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sliding = HybridPattern::builder(10)
            .window(Window::sliding(-1, 1).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        assert_ne!(dilated.fingerprint(), sliding.fingerprint(), "dilation matters");
    }

    #[test]
    fn causal_alignment_of_positive_offset_dilated_windows() {
        // Regression sweep for the dilation-grid alignment: positive lower
        // bounds must drop the window, and any window with lo <= 0 must
        // keep exactly its grid points <= 0 — the aligned upper bound can
        // never fall below lo.
        // Entirely-future dilated window: dropped even when a grid point
        // would align to a non-positive value "by accident".
        let p = HybridPattern::builder(20)
            .window(Window::dilated(2, 8, 3).unwrap())
            .window(Window::causal(2).unwrap())
            .build()
            .unwrap();
        let c = p.causal().unwrap();
        assert_eq!(c.windows().len(), 1);
        assert_eq!(c.windows()[0].hi(), 0);

        // lo == 0 with positive reach: only the diagonal survives.
        let p =
            HybridPattern::builder(20).window(Window::dilated(0, 6, 3).unwrap()).build().unwrap();
        let c = p.causal().unwrap();
        assert_eq!((c.windows()[0].lo(), c.windows()[0].hi()), (0, 0));
        assert_eq!(c.windows()[0].width(), 1);

        // 0 not on the grid: the aligned bound steps down to the largest
        // grid offset below it, never past lo.
        for (lo, hi, d, want_hi) in
            [(-1i64, 5i64, 3usize, -1i64), (-2, 4, 3, -2), (-5, 7, 4, -1), (-7, 5, 3, -1)]
        {
            let p = HybridPattern::builder(30)
                .window(Window::dilated(lo, hi, d).unwrap())
                .build()
                .unwrap();
            let c = p.causal().unwrap();
            let w = c.windows()[0];
            assert_eq!(w.hi(), want_hi, "dilated({lo}, {hi}, {d})");
            assert!(w.hi() >= w.lo(), "aligned bound degenerated below lo");
            assert_eq!(w.dilation(), d, "grid preserved");
            // Every surviving offset is causal and on the original grid.
            for o in w.offsets() {
                assert!(o <= 0);
                assert_eq!((o - lo).rem_euclid(d as i64), 0, "offset {o} off-grid");
            }
        }

        // Exhaustive cross-check against the set definition.
        for lo in -9i64..=9 {
            for d in 1usize..=4 {
                for k in 0i64..6 {
                    let hi = lo + k * d as i64;
                    let w = Window::dilated(lo, hi, d).unwrap();
                    let expect: Vec<i64> = w.offsets().filter(|&o| o <= 0).collect();
                    match w.causal_clip() {
                        Some(c) => {
                            assert_eq!(c.offsets().collect::<Vec<_>>(), expect, "{w:?}");
                        }
                        None => assert!(expect.is_empty(), "{w:?} dropped offsets {expect:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn causal_of_future_only_pattern_errors() {
        let p = HybridPattern::builder(8).window(Window::sliding(1, 3).unwrap()).build().unwrap();
        assert!(matches!(p.causal(), Err(PatternError::EmptyPattern)));
    }

    #[test]
    fn block_sparse_residual_excludes_window_and_global_cells() {
        use crate::{BlockLayout, PatternTerm};
        let p = HybridPattern::from_terms(
            8,
            vec![
                PatternTerm::Window(Window::symmetric(3).unwrap()),
                PatternTerm::Global { token: 0 },
                PatternTerm::BlockSparse { block_rows: 4, layout: BlockLayout::Diagonal },
            ],
        )
        .unwrap();
        // Block (0,0) covers rows 0..4 x cols 0..4; cell (3, 1) is neither
        // in the window (|delta| > 1) nor global, so it lands in the
        // residual — and only there.
        assert!(p.allows(3, 1));
        assert!(p.residual().contains(3, 1));
        assert!(!p.window_allows(3, 1));
        // (3, 2) is in the window; the residual must not duplicate it.
        assert!(p.allows(3, 2));
        assert!(!p.residual().contains(3, 2));
        // (3, 0) is a global column; also excluded from the residual.
        assert!(!p.residual().contains(3, 0));
        // Off-diagonal block cell is masked entirely.
        assert!(!p.allows(1, 6));
    }

    #[test]
    fn from_terms_of_terms_is_idempotent() {
        use crate::{BlockLayout, PatternTerm};
        let p = HybridPattern::from_terms(
            24,
            vec![
                PatternTerm::Window(Window::symmetric(5).unwrap()),
                PatternTerm::Global { token: 2 },
                PatternTerm::BlockSparse {
                    block_rows: 8,
                    layout: BlockLayout::Banded { radius: 1 },
                },
                PatternTerm::RandomBlocks { count: 2, seed: 7 },
            ],
        )
        .unwrap();
        let again = HybridPattern::from_terms(p.n(), p.terms()).unwrap();
        assert_eq!(p, again);
        assert_eq!(p.fingerprint(), again.fingerprint());
    }

    #[test]
    fn strided_lowers_to_local_plus_dilated_column_windows() {
        use crate::PatternTerm;
        let n = 64;
        let stride = 8;
        let p = HybridPattern::from_terms(n, vec![PatternTerm::Strided { stride, local: stride }])
            .unwrap();
        assert!(p.residual().is_empty(), "strided is translation invariant");
        assert_eq!(p.windows().len(), 2);
        // Local causal window.
        assert!(p.allows(40, 40));
        assert!(p.allows(40, 33));
        assert!(!p.allows(40, 41), "strided+fixed is causal");
        // Column attention: every stride-th earlier key relative to i.
        assert!(p.allows(40, 32));
        assert!(p.allows(40, 0));
        assert!(!p.allows(40, 31));
    }

    #[test]
    fn random_blocks_expansion_is_deterministic() {
        use crate::PatternTerm;
        let make = || {
            HybridPattern::from_terms(32, vec![PatternTerm::RandomBlocks { count: 3, seed: 42 }])
                .unwrap()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other =
            HybridPattern::from_terms(32, vec![PatternTerm::RandomBlocks { count: 3, seed: 43 }])
                .unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint(), "seed is structural");
    }

    #[test]
    fn causal_clips_residual_support() {
        use crate::{BlockLayout, PatternTerm};
        let p = HybridPattern::from_terms(
            12,
            vec![
                PatternTerm::Window(Window::causal(2).unwrap()),
                PatternTerm::BlockSparse {
                    block_rows: 6,
                    layout: BlockLayout::Banded { radius: 1 },
                },
            ],
        )
        .unwrap();
        assert!(p.allows(2, 9), "off-diagonal block reaches the future");
        let c = p.causal().unwrap();
        for (i, j) in c.iter() {
            assert!(j <= i, "({i},{j}) is anti-causal");
        }
        assert!(c.allows(8, 3), "past block cells survive");
        // Causal normalization is itself idempotent.
        let again = HybridPattern::from_terms(c.n(), c.terms()).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn empty_residual_expansion_is_rejected() {
        use crate::PatternTerm;
        // A random term whose every cell is swallowed by the global token
        // still leaves the global pattern non-empty...
        let p = HybridPattern::from_terms(
            1,
            vec![PatternTerm::Global { token: 0 }, PatternTerm::RandomBlocks { count: 2, seed: 1 }],
        )
        .unwrap();
        assert!(p.residual().is_empty());
        // ...but a support term with no runs and nothing else is empty.
        let err =
            HybridPattern::from_terms(4, vec![PatternTerm::Support(crate::SupportRuns::empty(4))])
                .unwrap_err();
        assert_eq!(err, PatternError::EmptyPattern);
    }
}
