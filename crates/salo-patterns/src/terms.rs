//! The composable pattern IR: terms and their canonical lowering.
//!
//! A [`HybridPattern`](crate::HybridPattern) is a normalized composition of
//! [`PatternTerm`]s. Two term families are *translation invariant* and lower
//! to the representation the SALO dataflow streams diagonally:
//!
//! * [`PatternTerm::Window`] — sliding/dilated windows (the paper's §2.3);
//! * [`PatternTerm::Strided`] — Sparse-Transformer strided+fixed attention,
//!   which normalizes into a causal local window plus a full-reach dilated
//!   column window.
//!
//! [`PatternTerm::Global`] lowers to the global PE row/column. The remaining
//! families are *not* translation invariant; they lower to one canonical
//! per-row **support-run** representation ([`SupportRuns`]) that the
//! scheduler executes through gather-style `RowSupport` components:
//!
//! * [`PatternTerm::BlockSparse`] — a block grid with a [`BlockLayout`];
//! * [`PatternTerm::RandomBlocks`] — BigBird-style random attention,
//!   deterministically derived from a seeded splitmix64 stream (the same
//!   stream as [`bigbird_like_mask`](crate::bigbird_like_mask), so
//!   fingerprints and masks stay stable across runs and releases);
//! * [`PatternTerm::Support`] — explicit per-row runs, the escape hatch for
//!   arbitrary masks.
//!
//! Normalization is *disjoint by construction*: support runs exclude every
//! cell already owned by a window offset or a global row/column, mirroring
//! the scheduler's claimed-offset ownership rule, so exactly-once coverage
//! proofs carry over unchanged.

use crate::{PatternError, StableHasher, Window};

/// Which block pairs a [`PatternTerm::BlockSparse`] term keeps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockLayout {
    /// Only the diagonal blocks (`bj == bi`).
    Diagonal,
    /// A band of blocks around the diagonal (`|bj - bi| <= radius`).
    Banded {
        /// Band radius in blocks.
        radius: usize,
    },
    /// An explicit list of `(block_row, block_col)` pairs.
    Explicit(Vec<(usize, usize)>),
}

/// One term of the composable pattern IR.
///
/// See [`crate::HybridPattern::from_terms`] for how each family lowers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A translation-invariant sliding or dilated window.
    Window(Window),
    /// A global token: its query attends every key and its key is attended
    /// by every query.
    Global {
        /// The global token's sequence index.
        token: usize,
    },
    /// Sparse-Transformer strided+fixed attention: a causal local window of
    /// `local` positions plus every `stride`-th earlier position over the
    /// whole history (O(n·√n) work at `stride = local = √n`).
    Strided {
        /// Stride of the column attention (and the dilation of the lowered
        /// column window).
        stride: usize,
        /// Width of the causal local window.
        local: usize,
    },
    /// Block-sparse attention over a grid of `block_rows`-sized blocks.
    BlockSparse {
        /// Rows (and columns) per block; the last block may be ragged.
        block_rows: usize,
        /// Which block pairs are kept.
        layout: BlockLayout,
    },
    /// BigBird-style random attention: `count` pseudo-random keys per query
    /// row, drawn from a single splitmix64 stream seeded with `seed` and
    /// advanced row-major — exactly the stream of
    /// [`bigbird_like_mask`](crate::bigbird_like_mask), so
    /// `from_terms` of this term reproduces that mask's random part bit for
    /// bit and the pattern fingerprint is stable.
    RandomBlocks {
        /// Random keys drawn per query row.
        count: usize,
        /// Stream seed.
        seed: u64,
    },
    /// Explicit per-row support runs (an arbitrary mask residual).
    Support(SupportRuns),
}

impl PatternTerm {
    /// Writes a stable encoding of the term into `h` (tag plus parameters;
    /// [`PatternTerm::RandomBlocks`] hashes `(count, seed)`, not its
    /// expansion, which is fully determined by them).
    pub(crate) fn hash_stable(&self, h: &mut StableHasher) {
        match self {
            PatternTerm::Window(w) => {
                h.write_u64(1);
                h.write_i64(w.lo());
                h.write_i64(w.hi());
                h.write_usize(w.dilation());
            }
            PatternTerm::Global { token } => {
                h.write_u64(2);
                h.write_usize(*token);
            }
            PatternTerm::Strided { stride, local } => {
                h.write_u64(3);
                h.write_usize(*stride);
                h.write_usize(*local);
            }
            PatternTerm::BlockSparse { block_rows, layout } => {
                h.write_u64(4);
                h.write_usize(*block_rows);
                match layout {
                    BlockLayout::Diagonal => h.write_u64(0),
                    BlockLayout::Banded { radius } => {
                        h.write_u64(1);
                        h.write_usize(*radius);
                    }
                    BlockLayout::Explicit(pairs) => {
                        h.write_u64(2);
                        h.write_usize(pairs.len());
                        for &(bi, bj) in pairs {
                            h.write_usize(bi);
                            h.write_usize(bj);
                        }
                    }
                }
            }
            PatternTerm::RandomBlocks { count, seed } => {
                h.write_u64(5);
                h.write_usize(*count);
                h.write_u64(*seed);
            }
            PatternTerm::Support(runs) => {
                h.write_u64(6);
                h.write_usize(runs.n);
                h.write_usize(runs.runs.len());
                for &s in &runs.starts {
                    h.write_u64(u64::from(s));
                }
                for &(a, b) in &runs.runs {
                    h.write_u64(u64::from(a));
                    h.write_u64(u64::from(b));
                }
            }
        }
    }
}

/// Canonical per-row support runs: for each row, a sorted list of disjoint
/// half-open key ranges `[start, end)`, stored CSR-style.
///
/// This is the representation every non-translation-invariant term lowers
/// to; the scheduler turns it into gather-style `RowSupport` components.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SupportRuns {
    n: usize,
    /// `starts[i]..starts[i + 1]` indexes row `i`'s runs; length `n + 1`.
    starts: Vec<u32>,
    /// Sorted, disjoint, non-adjacent `[start, end)` key ranges.
    runs: Vec<(u32, u32)>,
}

impl SupportRuns {
    /// Empty support over `n` rows.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self { n, starts: vec![0; n + 1], runs: Vec::new() }
    }

    /// Builds runs from per-row key lists. Keys may be unsorted and contain
    /// duplicates; adjacent keys merge into one run.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != n` or any key is `>= n` (caller logic
    /// error: expansion is an internal, pre-validated step).
    #[must_use]
    pub fn from_rows(n: usize, rows: &mut [Vec<u32>]) -> Self {
        assert_eq!(rows.len(), n, "row count mismatch");
        let mut starts = Vec::with_capacity(n + 1);
        let mut runs = Vec::new();
        starts.push(0u32);
        for row in rows.iter_mut() {
            row.sort_unstable();
            row.dedup();
            let mut iter = row.iter().copied();
            if let Some(first) = iter.next() {
                assert!((first as usize) < n, "key out of range");
                let mut cur = (first, first + 1);
                for j in iter {
                    assert!((j as usize) < n, "key out of range");
                    if j == cur.1 {
                        cur.1 = j + 1;
                    } else {
                        runs.push(cur);
                        cur = (j, j + 1);
                    }
                }
                runs.push(cur);
            }
            starts.push(u32::try_from(runs.len()).expect("run count fits u32"));
        }
        Self { n, starts, runs }
    }

    /// Builds runs directly from per-row sorted, disjoint, non-adjacent
    /// range lists, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::InvalidTerm`] if a run is empty, out of
    /// range, unsorted or overlapping/adjacent with its predecessor.
    pub fn from_row_ranges(n: usize, rows: &[Vec<(u32, u32)>]) -> Result<Self, PatternError> {
        if rows.len() != n {
            return Err(PatternError::InvalidTerm {
                reason: format!("support has {} rows for sequence length {n}", rows.len()),
            });
        }
        let mut starts = Vec::with_capacity(n + 1);
        let mut runs = Vec::new();
        starts.push(0u32);
        for (i, row) in rows.iter().enumerate() {
            let mut prev_end = None;
            for &(s, e) in row {
                if s >= e || e as usize > n {
                    return Err(PatternError::InvalidTerm {
                        reason: format!("row {i} run [{s}, {e}) invalid for length {n}"),
                    });
                }
                if let Some(pe) = prev_end {
                    if s <= pe {
                        return Err(PatternError::InvalidTerm {
                            reason: format!(
                                "row {i} run [{s}, {e}) overlaps or touches previous end {pe}"
                            ),
                        });
                    }
                }
                prev_end = Some(e);
                runs.push((s, e));
            }
            starts.push(u32::try_from(runs.len()).expect("run count fits u32"));
        }
        Ok(Self { n, starts, runs })
    }

    /// Number of rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether no row has any run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of supported cells.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| u64::from(e - s)).sum()
    }

    /// Row `i`'s runs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn row_runs(&self, i: usize) -> &[(u32, u32)] {
        &self.runs[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Number of supported keys in row `i`.
    #[must_use]
    pub fn row_len(&self, i: usize) -> usize {
        self.row_runs(i).iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// The `(min, max_exclusive)` key bounds of row `i`, if non-empty.
    #[must_use]
    pub fn row_bounds(&self, i: usize) -> Option<(usize, usize)> {
        let runs = self.row_runs(i);
        match (runs.first(), runs.last()) {
            (Some(&(s, _)), Some(&(_, e))) => Some((s as usize, e as usize)),
            _ => None,
        }
    }

    /// Whether cell `(i, j)` is supported.
    #[must_use]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        let runs = self.row_runs(i);
        let j = j as u32;
        // Last run starting at or before j.
        let idx = runs.partition_point(|&(s, _)| s <= j);
        idx > 0 && runs[idx - 1].1 > j
    }

    /// Appends row `i`'s keys (ascending) to `out`.
    pub fn extend_row_keys(&self, i: usize, out: &mut Vec<usize>) {
        for &(s, e) in self.row_runs(i) {
            out.extend((s as usize)..(e as usize));
        }
    }

    /// The causal restriction: every run of row `i` clipped to keys
    /// `<= i`.
    #[must_use]
    pub fn causal_clip(&self) -> Self {
        let mut starts = Vec::with_capacity(self.n + 1);
        let mut runs = Vec::new();
        starts.push(0u32);
        for i in 0..self.n {
            let cut = i as u32 + 1; // exclusive upper bound on kept keys
            for &(s, e) in self.row_runs(i) {
                if s >= cut {
                    break;
                }
                runs.push((s, e.min(cut)));
            }
            starts.push(u32::try_from(runs.len()).expect("run count fits u32"));
        }
        Self { n: self.n, starts, runs }
    }

    /// Iterates all supported `(i, j)` cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.row_runs(i)
                .iter()
                .flat_map(move |&(s, e)| ((s as usize)..(e as usize)).map(move |j| (i, j)))
        })
    }
}

/// The splitmix64 stream shared by [`PatternTerm::RandomBlocks`] expansion
/// and [`bigbird_like_mask`](crate::bigbird_like_mask): `state` starts at
/// `seed + GOLDEN` and each draw adds `GOLDEN` again before mixing.
pub(crate) struct SplitMix64 {
    state: u64,
}

pub(crate) const SPLITMIX_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_add(SPLITMIX_GOLDEN) }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX_GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Validates a residual term and appends its raw cells (before
/// window/global exclusion) to `rows`.
pub(crate) fn expand_residual_term(
    term: &PatternTerm,
    n: usize,
    rows: &mut [Vec<u32>],
) -> Result<(), PatternError> {
    match term {
        PatternTerm::BlockSparse { block_rows, layout } => {
            let b = *block_rows;
            if b == 0 {
                return Err(PatternError::InvalidTerm {
                    reason: "block_rows must be at least 1".into(),
                });
            }
            let nb = n.div_ceil(b);
            let block_cols_for = |bi: usize| -> Result<Vec<usize>, PatternError> {
                match layout {
                    BlockLayout::Diagonal => Ok(vec![bi]),
                    BlockLayout::Banded { radius } => {
                        Ok((bi.saturating_sub(*radius)..=(bi + radius).min(nb - 1)).collect())
                    }
                    BlockLayout::Explicit(pairs) => {
                        let mut cols = Vec::new();
                        for &(pbi, pbj) in pairs {
                            if pbi >= nb || pbj >= nb {
                                return Err(PatternError::InvalidTerm {
                                    reason: format!(
                                        "block pair ({pbi}, {pbj}) outside {nb}x{nb} grid"
                                    ),
                                });
                            }
                            if pbi == bi {
                                cols.push(pbj);
                            }
                        }
                        cols.sort_unstable();
                        cols.dedup();
                        Ok(cols)
                    }
                }
            };
            for bi in 0..nb {
                let cols = block_cols_for(bi)?;
                if cols.is_empty() {
                    continue;
                }
                for row in rows.iter_mut().take(((bi + 1) * b).min(n)).skip(bi * b) {
                    for &bj in &cols {
                        for j in (bj * b)..((bj + 1) * b).min(n) {
                            row.push(j as u32);
                        }
                    }
                }
            }
            Ok(())
        }
        PatternTerm::RandomBlocks { count, seed } => {
            let mut rng = SplitMix64::new(*seed);
            for row in rows.iter_mut().take(n) {
                for _ in 0..*count {
                    let j = (rng.next() % n as u64) as usize;
                    row.push(j as u32);
                }
            }
            Ok(())
        }
        PatternTerm::Support(runs) => {
            if runs.n() != n {
                return Err(PatternError::InvalidTerm {
                    reason: format!(
                        "support term covers {} rows for sequence length {n}",
                        runs.n()
                    ),
                });
            }
            for (i, row) in rows.iter_mut().enumerate().take(n) {
                for &(s, e) in runs.row_runs(i) {
                    row.extend(s..e);
                }
            }
            Ok(())
        }
        PatternTerm::Window(_) | PatternTerm::Global { .. } | PatternTerm::Strided { .. } => {
            unreachable!("translation-invariant terms are lowered before residual expansion")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_merges_adjacent_keys() {
        let mut rows = vec![vec![3, 1, 2, 2], vec![], vec![0, 5], vec![], vec![], vec![]];
        let runs = SupportRuns::from_rows(6, &mut rows);
        assert_eq!(runs.row_runs(0), &[(1, 4)]);
        assert!(runs.row_runs(1).is_empty());
        assert_eq!(runs.row_runs(2), &[(0, 1), (5, 6)]);
        assert_eq!(runs.nnz(), 5);
        assert_eq!(runs.row_len(2), 2);
        assert_eq!(runs.row_bounds(2), Some((0, 6)));
        assert_eq!(runs.row_bounds(1), None);
    }

    #[test]
    fn contains_checks_run_membership() {
        let mut rows = vec![vec![], vec![], vec![], vec![2, 3, 7], vec![], vec![], vec![], vec![]];
        let runs = SupportRuns::from_rows(8, &mut rows);
        assert!(runs.contains(3, 2));
        assert!(runs.contains(3, 3));
        assert!(!runs.contains(3, 4));
        assert!(runs.contains(3, 7));
        assert!(!runs.contains(3, 0));
        assert!(!runs.contains(0, 2));
    }

    #[test]
    fn causal_clip_cuts_future_keys() {
        let mut rows = vec![vec![0, 5], vec![0, 1, 2], vec![4, 5], vec![], vec![], vec![]];
        let runs = SupportRuns::from_rows(6, &mut rows);
        let c = runs.causal_clip();
        assert_eq!(c.row_runs(0), &[(0, 1)]);
        assert_eq!(c.row_runs(1), &[(0, 2)]);
        assert!(c.row_runs(2).is_empty());
    }

    #[test]
    fn from_row_ranges_validates() {
        assert!(SupportRuns::from_row_ranges(2, &[vec![(0, 1)], vec![(1, 3)]]).is_err(), "e > n");
        assert!(
            SupportRuns::from_row_ranges(4, &[vec![(2, 2)], vec![], vec![], vec![]]).is_err(),
            "empty run"
        );
        assert!(
            SupportRuns::from_row_ranges(4, &[vec![(0, 2), (2, 3)], vec![], vec![], vec![]])
                .is_err(),
            "adjacent runs must be merged"
        );
        let ok = SupportRuns::from_row_ranges(4, &[vec![(0, 2), (3, 4)], vec![], vec![], vec![]])
            .unwrap();
        assert_eq!(ok.nnz(), 3);
    }

    #[test]
    fn iter_visits_cells_row_major() {
        let mut rows = vec![vec![1], vec![], vec![0, 1]];
        let runs = SupportRuns::from_rows(3, &mut rows);
        let cells: Vec<_> = runs.iter().collect();
        assert_eq!(cells, vec![(0, 1), (2, 0), (2, 1)]);
    }
}
