//! Decomposition of arbitrary dense masks into SALO's pattern IR, and a
//! cost-driven pattern autotuner.
//!
//! The SALO data scheduler consumes pattern *metadata* (window ranges,
//! dilations, global tokens, support runs), not raw masks. When a user has
//! only a boolean mask — e.g. exported from a model — [`fit_pattern`]
//! recovers a [`HybridPattern`] that covers it: global rows/columns are
//! detected first, then diagonal bands (constant `j - i` offsets) with
//! high coverage become window offsets, which are grouped into maximal
//! arithmetic progressions (sliding or dilated windows — strided patterns
//! land here as dilated columns). With
//! [`FitConfig::capture_residual`] the fit goes further: leftover cells
//! are mined for dense blocks (recovered as
//! [`PatternTerm::BlockSparse`]) and whatever remains becomes an explicit
//! [`PatternTerm::Support`] term, so the fitted pattern misses nothing.
//!
//! [`autotune`] turns the fit into a search: it generates covering
//! candidates across the whole pattern zoo (window sweeps, strided+fixed,
//! block-diagonal, fitted compositions), filters them by a coverage
//! budget, and returns the one with the lowest cost under a caller-chosen
//! cost model — typically simulated cycles from `salo-sim`, injected as a
//! closure so this crate stays dependency-free.

use crate::{
    BlockLayout, DenseMask, HybridPattern, PatternError, PatternTerm, SupportRuns, Window,
};

/// Configuration for [`fit_pattern`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Fraction of valid positions along a diagonal that must be kept for
    /// the offset to be treated as a window offset (default 0.9).
    pub band_threshold: f64,
    /// Fraction of a row/column that must be kept for the token to be
    /// treated as global (default 0.95).
    pub global_threshold: f64,
    /// When true, cells the window/global decomposition misses are
    /// recovered as block-sparse and support terms instead of being
    /// reported as `missed` (default false, preserving the historical
    /// "how much is window-expressible" reading of the report).
    pub capture_residual: bool,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { band_threshold: 0.9, global_threshold: 0.95, capture_residual: false }
    }
}

/// The result of fitting a mask: the recovered pattern and coverage quality.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The recovered hybrid pattern.
    pub pattern: HybridPattern,
    /// Positions kept by the mask but not covered by the pattern.
    pub missed: u64,
    /// Positions covered by the pattern but not kept by the mask.
    pub extra: u64,
    /// Fraction of mask positions the pattern reproduces exactly.
    pub agreement: f64,
}

/// Fits a [`HybridPattern`] to an arbitrary dense mask.
///
/// The fit is exact (zero `missed`/`extra`) whenever the mask was generated
/// from a hybrid pattern in the first place; for irregular masks it returns
/// the closest window/global decomposition together with a coverage report.
///
/// # Errors
///
/// Returns [`PatternError::EmptyPattern`] if no structure clears the
/// thresholds (e.g. an all-false mask).
pub fn fit_pattern(mask: &DenseMask, config: FitConfig) -> Result<FitReport, PatternError> {
    let n = mask.n();

    // 1. Detect global tokens: rows AND columns that are (nearly) full.
    let mut globals = Vec::new();
    for t in 0..n {
        let row_cov = (0..n).filter(|&j| mask.get(t, j)).count() as f64 / n as f64;
        let col_cov = (0..n).filter(|&i| mask.get(i, t)).count() as f64 / n as f64;
        if row_cov >= config.global_threshold && col_cov >= config.global_threshold {
            globals.push(t);
        }
    }

    // 2. Scan diagonals, ignoring global rows/columns.
    let is_global = |t: usize| globals.binary_search(&t).is_ok();
    let mut offsets = Vec::new();
    for delta in -(n as i64 - 1)..=(n as i64 - 1) {
        let mut kept = 0usize;
        let mut valid = 0usize;
        for i in 0..n {
            let j = i as i64 + delta;
            if j < 0 || j >= n as i64 {
                continue;
            }
            let j = j as usize;
            if is_global(i) || is_global(j) {
                continue;
            }
            valid += 1;
            if mask.get(i, j) {
                kept += 1;
            }
        }
        if valid > 0 && kept as f64 / valid as f64 >= config.band_threshold {
            offsets.push(delta);
        }
    }

    // 3. Group offsets into maximal arithmetic progressions => windows.
    let windows = group_offsets(&offsets)?;

    // 4. Optionally capture what the window/global decomposition missed as
    // block-sparse and support terms.
    let mut terms: Vec<PatternTerm> = windows.iter().copied().map(PatternTerm::Window).collect();
    terms.extend(globals.iter().map(|&token| PatternTerm::Global { token }));
    if config.capture_residual {
        let in_windows = |i: usize, j: usize| {
            let delta = j as i64 - i as i64;
            windows.iter().any(|w| w.contains_offset(delta))
        };
        let mut cells: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if mask.get(i, j) && !is_global(i) && !is_global(j) && !in_windows(i, j) {
                    cells.push((i, j));
                }
            }
        }
        if !cells.is_empty() {
            if let Some((block_rows, pairs)) = detect_blocks(mask, n, &cells, config.band_threshold)
            {
                let in_block = |i: usize, j: usize| {
                    pairs.binary_search(&(i / block_rows, j / block_rows)).is_ok()
                };
                cells.retain(|&(i, j)| !in_block(i, j));
                terms.push(PatternTerm::BlockSparse {
                    block_rows,
                    layout: BlockLayout::Explicit(pairs),
                });
            }
            if !cells.is_empty() {
                let mut rows = vec![Vec::new(); n];
                for &(i, j) in &cells {
                    rows[i].push(j as u32);
                }
                terms.push(PatternTerm::Support(SupportRuns::from_rows(n, &mut rows)));
            }
        }
    }

    if terms.is_empty() {
        return Err(PatternError::EmptyPattern);
    }

    let pattern = HybridPattern::from_terms(n, terms)?;
    let fitted = DenseMask::from_pattern(&pattern);
    let mut missed = 0u64;
    let mut extra = 0u64;
    for i in 0..n {
        for j in 0..n {
            match (mask.get(i, j), fitted.get(i, j)) {
                (true, false) => missed += 1,
                (false, true) => extra += 1,
                _ => {}
            }
        }
    }
    let agreement = 1.0 - (missed + extra) as f64 / (n as f64 * n as f64);
    Ok(FitReport { pattern, missed, extra, agreement })
}

/// Mines the uncovered cells for dense blocks: tries power-of-two block
/// sizes and claims every block pair containing an uncovered cell whose
/// *mask* fill ratio clears `threshold`. Returns the block size claiming
/// the most uncovered cells together with its sorted claimed pairs.
fn detect_blocks(
    mask: &DenseMask,
    n: usize,
    cells: &[(usize, usize)],
    threshold: f64,
) -> Option<(usize, Vec<(usize, usize)>)> {
    // (block size, claimed block pairs, number of uncovered cells claimed)
    type Candidate = (usize, Vec<(usize, usize)>, usize);
    let mut best: Option<Candidate> = None;
    // Descending so equal claims prefer the larger (coarser) block size.
    for shift in (2..=6usize).rev() {
        let b = 1usize << shift;
        if b > n / 2 {
            continue;
        }
        let mut pairs: Vec<(usize, usize)> = cells.iter().map(|&(i, j)| (i / b, j / b)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.retain(|&(bi, bj)| {
            let rows = (bi * b..((bi + 1) * b).min(n)).len();
            let cols = (bj * b..((bj + 1) * b).min(n)).len();
            let kept = (bi * b..((bi + 1) * b).min(n))
                .map(|i| (bj * b..((bj + 1) * b).min(n)).filter(|&j| mask.get(i, j)).count())
                .sum::<usize>();
            kept as f64 / (rows * cols) as f64 >= threshold
        });
        let claimed =
            cells.iter().filter(|&&(i, j)| pairs.binary_search(&(i / b, j / b)).is_ok()).count();
        if claimed > 0 && best.as_ref().is_none_or(|(_, _, c)| claimed > *c) {
            best = Some((b, pairs, claimed));
        }
    }
    best.map(|(b, pairs, _)| (b, pairs))
}

/// The result of [`autotune`]: the cheapest covering pattern found.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// The winning pattern.
    pub pattern: HybridPattern,
    /// Fraction of the mask's kept positions the pattern covers.
    pub coverage: f64,
    /// The winner's cost under the caller's cost model.
    pub cost: f64,
    /// Number of candidates that met the coverage budget and were costed.
    pub candidates: usize,
}

/// Searches the pattern zoo for the cheapest pattern covering `mask`.
///
/// Candidates span every term family: symmetric window sweeps (with and
/// without the mask's detected global tokens), strided+fixed columns at
/// power-of-two strides, banded block-diagonal grids, and the two
/// [`fit_pattern`] compositions (windows/globals only, and with the
/// residual captured — the latter always covers the mask fully, so the
/// candidate set is never empty for a non-empty mask). Every candidate
/// covering at least `coverage_budget` of the mask's kept positions is
/// priced by `cost` — typically simulated cycles or energy from the
/// `salo-sim` model, injected as a closure so pattern fitting stays free
/// of simulator dependencies — and the cheapest wins.
///
/// # Errors
///
/// Returns [`PatternError::EmptyPattern`] for an all-false mask.
pub fn autotune<C: FnMut(&HybridPattern) -> f64>(
    mask: &DenseMask,
    coverage_budget: f64,
    config: FitConfig,
    mut cost: C,
) -> Result<AutotuneReport, PatternError> {
    let n = mask.n();
    let total = mask.nnz();
    if total == 0 {
        return Err(PatternError::EmptyPattern);
    }

    let mut candidates: Vec<HybridPattern> = Vec::new();
    let push = |c: Result<HybridPattern, PatternError>, candidates: &mut Vec<HybridPattern>| {
        if let Ok(p) = c {
            if !candidates.contains(&p) {
                candidates.push(p);
            }
        }
    };

    // The exhaustive fit: full coverage by construction, the search's
    // feasibility anchor.
    let exact = fit_pattern(mask, FitConfig { capture_residual: true, ..config })?;
    let globals = exact.pattern.globals().to_vec();
    push(Ok(exact.pattern), &mut candidates);
    // The windows/globals-only fit (cheap when the mask is band-dominated).
    if let Ok(r) = fit_pattern(mask, FitConfig { capture_residual: false, ..config }) {
        push(Ok(r.pattern), &mut candidates);
    }
    // Parameter sweeps over the zoo's translation-invariant families.
    let mut w = 2usize;
    while w < 2 * n {
        push(crate::sliding_only(n, w), &mut candidates);
        push(
            HybridPattern::builder(n)
                .window(Window::symmetric(w).expect("w >= 1"))
                .global_tokens(globals.iter().copied())
                .build(),
            &mut candidates,
        );
        let stride = w;
        push(crate::strided_fixed(n, stride), &mut candidates);
        push(
            HybridPattern::builder(n)
                .term(PatternTerm::BlockSparse {
                    block_rows: w,
                    layout: BlockLayout::Banded { radius: 1 },
                })
                .global_tokens(globals.iter().copied())
                .build(),
            &mut candidates,
        );
        w *= 2;
    }

    let mut best: Option<(HybridPattern, f64, f64)> = None;
    let mut costed = 0usize;
    for p in candidates {
        let covered = mask.iter().filter(|&(i, j)| p.allows(i, j)).count() as u64;
        let coverage = covered as f64 / total as f64;
        if coverage < coverage_budget {
            continue;
        }
        costed += 1;
        let c = cost(&p);
        if best.as_ref().is_none_or(|(_, _, bc)| c < *bc) {
            best = Some((p, coverage, c));
        }
    }
    let (pattern, coverage, cost) = best.expect("residual-capturing fit always covers");
    Ok(AutotuneReport { pattern, coverage, cost, candidates: costed })
}

/// Groups sorted offsets into maximal runs of constant stride; each run
/// becomes one window (stride 1 => sliding, stride > 1 => dilated).
fn group_offsets(offsets: &[i64]) -> Result<Vec<Window>, PatternError> {
    let mut windows = Vec::new();
    let mut idx = 0;
    while idx < offsets.len() {
        // Greedy: prefer the longest run starting here among stride candidates.
        let start = offsets[idx];
        if idx + 1 == offsets.len() {
            windows.push(Window::sliding(start, start)?);
            break;
        }
        let stride = (offsets[idx + 1] - start) as usize;
        let mut end_idx = idx + 1;
        while end_idx + 1 < offsets.len()
            && (offsets[end_idx + 1] - offsets[end_idx]) as usize == stride
        {
            end_idx += 1;
        }
        // Runs of stride 1 stay together; a lone pair with a large stride is
        // still a (two-offset) dilated window.
        windows.push(Window::dilated(start, offsets[end_idx], stride.max(1))?);
        idx = end_idx + 1;
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid_2d, longformer, sparse_transformer};

    fn exact_fit(p: &HybridPattern) -> FitReport {
        let mask = DenseMask::from_pattern(p);
        fit_pattern(&mask, FitConfig::default()).expect("fit")
    }

    #[test]
    fn refits_longformer_exactly() {
        let p = longformer(96, 8, 1).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed, 0, "missed positions");
        assert_eq!(report.extra, 0, "extra positions");
        assert_eq!(report.pattern.globals(), &[0]);
        assert!((report.agreement - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn refits_banded_2d_exactly() {
        let p = grid_2d(6, 6, 3, 3, 0).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed + report.extra, 0);
        // Bands may be merged/split differently but coverage is identical.
        assert_eq!(report.pattern.nnz(), p.nnz());
    }

    #[test]
    fn refits_strided_pattern() {
        let p = sparse_transformer(48, 4, 4).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed, 0);
        assert_eq!(report.extra, 0);
        // Recovered windows include at least one dilated component.
        assert!(report.pattern.windows().iter().any(|w| w.is_dilated() || w.width() == 1));
    }

    #[test]
    fn rejects_empty_mask() {
        let mask = DenseMask::new(8).unwrap();
        assert!(matches!(
            fit_pattern(&mask, FitConfig::default()),
            Err(PatternError::EmptyPattern)
        ));
    }

    #[test]
    fn irregular_mask_reports_misses() {
        let mut mask = DenseMask::new(16).unwrap();
        // A full diagonal plus scattered noise below threshold.
        for i in 0..16 {
            mask.set(i, i, true);
        }
        mask.set(3, 9, true);
        let report = fit_pattern(&mask, FitConfig::default()).unwrap();
        assert_eq!(report.missed, 1); // the (3, 9) speck
        assert_eq!(report.extra, 0);
        assert!(report.agreement > 0.99);
    }

    #[test]
    fn group_offsets_mixed_strides() {
        let windows = group_offsets(&[-2, -1, 0, 1, 2, 10, 20, 30]).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].lo(), -2);
        assert_eq!(windows[0].hi(), 2);
        assert_eq!(windows[0].dilation(), 1);
        assert_eq!(windows[1].dilation(), 10);
        assert_eq!(windows[1].width(), 3);
    }

    #[test]
    fn group_offsets_singleton() {
        let windows = group_offsets(&[5]).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].width(), 1);
    }

    #[test]
    fn capturing_fit_recovers_bigbird_mask_fully() {
        // Satellite regression: fit_pattern used to silently drop the
        // random part of a BigBird mask (below band_threshold on every
        // diagonal). With capture_residual it must recover >= the mask's
        // coverage instead of a degenerate window pattern.
        let n = 96;
        let mask = crate::bigbird_like_mask(n, 12, 1, 3, 42).unwrap();
        let windows_only = fit_pattern(&mask, FitConfig::default()).unwrap();
        assert!(windows_only.missed > 0, "the random part is invisible to bands");
        let config = FitConfig { capture_residual: true, ..FitConfig::default() };
        let report = fit_pattern(&mask, config).unwrap();
        assert_eq!(report.missed, 0, "residual capture covers everything");
        assert!(!report.pattern.windows().is_empty(), "window part still recovered");
        assert_eq!(report.pattern.globals(), &[0], "global token still recovered");
        assert!(!report.pattern.residual().is_empty(), "random links became residual");
        assert!(report.agreement >= windows_only.agreement);
    }

    #[test]
    fn capturing_fit_recovers_block_structure() {
        use crate::{BlockLayout, PatternTerm};
        // A pure block-diagonal mask: bands only catch the main diagonal,
        // block mining must claim the rest as one BlockSparse term.
        let b = 8;
        let n = 32;
        let block_pattern = HybridPattern::builder(n)
            .term(PatternTerm::BlockSparse { block_rows: b, layout: BlockLayout::Diagonal })
            .build()
            .unwrap();
        let mask = DenseMask::from_pattern(&block_pattern);
        // band_threshold high enough that the near-diagonal offsets (kept
        // on 28 of 31 cells by the blocks) don't register as windows.
        let config =
            FitConfig { capture_residual: true, band_threshold: 0.95, ..FitConfig::default() };
        let report = fit_pattern(&mask, config).unwrap();
        assert_eq!(report.missed, 0);
        assert_eq!(report.extra, 0, "blocks are exact, no over-coverage");
        let recovered_block =
            report.pattern.residual_terms().iter().any(
                |t| matches!(t, PatternTerm::BlockSparse { block_rows, .. } if *block_rows == b),
            );
        assert!(recovered_block, "terms: {:?}", report.pattern.residual_terms());
    }

    #[test]
    fn autotune_prefers_cheap_covering_patterns() {
        // Cost model: nnz (a stand-in for cycles). The winner must cover
        // the budgeted fraction with minimal kept positions.
        let p = crate::longformer(64, 8, 1).unwrap();
        let mask = DenseMask::from_pattern(&p);
        let report = autotune(&mask, 0.95, FitConfig::default(), |c| c.nnz() as f64).unwrap();
        assert!(report.coverage >= 0.95);
        assert!(report.candidates > 1);
        assert!(
            report.cost <= p.nnz() as f64,
            "winner ({}) must not cost more than the generating pattern ({})",
            report.cost,
            p.nnz()
        );
        // At full budget the fit still covers everything.
        let full = autotune(&mask, 1.0, FitConfig::default(), |c| c.nnz() as f64).unwrap();
        assert!((full.coverage - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn autotune_rejects_empty_mask() {
        let mask = DenseMask::new(8).unwrap();
        assert!(matches!(
            autotune(&mask, 0.9, FitConfig::default(), |_| 0.0),
            Err(PatternError::EmptyPattern)
        ));
    }
}
