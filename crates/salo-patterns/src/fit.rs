//! Decomposition of arbitrary dense masks into SALO's hybrid pattern
//! language.
//!
//! The SALO data scheduler consumes pattern *metadata* (window ranges,
//! dilations, global tokens), not raw masks. When a user has only a boolean
//! mask — e.g. exported from a model — this module recovers a
//! [`HybridPattern`] that covers it: global rows/columns are detected first,
//! then diagonal bands (constant `j - i` offsets) with high coverage become
//! window offsets, which are grouped into maximal arithmetic progressions
//! (sliding or dilated windows).

use crate::{DenseMask, HybridPattern, PatternError, Window};

/// Configuration for [`fit_pattern`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Fraction of valid positions along a diagonal that must be kept for
    /// the offset to be treated as a window offset (default 0.9).
    pub band_threshold: f64,
    /// Fraction of a row/column that must be kept for the token to be
    /// treated as global (default 0.95).
    pub global_threshold: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { band_threshold: 0.9, global_threshold: 0.95 }
    }
}

/// The result of fitting a mask: the recovered pattern and coverage quality.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The recovered hybrid pattern.
    pub pattern: HybridPattern,
    /// Positions kept by the mask but not covered by the pattern.
    pub missed: u64,
    /// Positions covered by the pattern but not kept by the mask.
    pub extra: u64,
    /// Fraction of mask positions the pattern reproduces exactly.
    pub agreement: f64,
}

/// Fits a [`HybridPattern`] to an arbitrary dense mask.
///
/// The fit is exact (zero `missed`/`extra`) whenever the mask was generated
/// from a hybrid pattern in the first place; for irregular masks it returns
/// the closest window/global decomposition together with a coverage report.
///
/// # Errors
///
/// Returns [`PatternError::EmptyPattern`] if no structure clears the
/// thresholds (e.g. an all-false mask).
pub fn fit_pattern(mask: &DenseMask, config: FitConfig) -> Result<FitReport, PatternError> {
    let n = mask.n();

    // 1. Detect global tokens: rows AND columns that are (nearly) full.
    let mut globals = Vec::new();
    for t in 0..n {
        let row_cov = (0..n).filter(|&j| mask.get(t, j)).count() as f64 / n as f64;
        let col_cov = (0..n).filter(|&i| mask.get(i, t)).count() as f64 / n as f64;
        if row_cov >= config.global_threshold && col_cov >= config.global_threshold {
            globals.push(t);
        }
    }

    // 2. Scan diagonals, ignoring global rows/columns.
    let is_global = |t: usize| globals.binary_search(&t).is_ok();
    let mut offsets = Vec::new();
    for delta in -(n as i64 - 1)..=(n as i64 - 1) {
        let mut kept = 0usize;
        let mut valid = 0usize;
        for i in 0..n {
            let j = i as i64 + delta;
            if j < 0 || j >= n as i64 {
                continue;
            }
            let j = j as usize;
            if is_global(i) || is_global(j) {
                continue;
            }
            valid += 1;
            if mask.get(i, j) {
                kept += 1;
            }
        }
        if valid > 0 && kept as f64 / valid as f64 >= config.band_threshold {
            offsets.push(delta);
        }
    }

    // 3. Group offsets into maximal arithmetic progressions => windows.
    let windows = group_offsets(&offsets)?;

    if windows.is_empty() && globals.is_empty() {
        return Err(PatternError::EmptyPattern);
    }

    let pattern = HybridPattern::from_parts(n, windows, globals)?;
    let fitted = DenseMask::from_pattern(&pattern);
    let mut missed = 0u64;
    let mut extra = 0u64;
    for i in 0..n {
        for j in 0..n {
            match (mask.get(i, j), fitted.get(i, j)) {
                (true, false) => missed += 1,
                (false, true) => extra += 1,
                _ => {}
            }
        }
    }
    let agreement = 1.0 - (missed + extra) as f64 / (n as f64 * n as f64);
    Ok(FitReport { pattern, missed, extra, agreement })
}

/// Groups sorted offsets into maximal runs of constant stride; each run
/// becomes one window (stride 1 => sliding, stride > 1 => dilated).
fn group_offsets(offsets: &[i64]) -> Result<Vec<Window>, PatternError> {
    let mut windows = Vec::new();
    let mut idx = 0;
    while idx < offsets.len() {
        // Greedy: prefer the longest run starting here among stride candidates.
        let start = offsets[idx];
        if idx + 1 == offsets.len() {
            windows.push(Window::sliding(start, start)?);
            break;
        }
        let stride = (offsets[idx + 1] - start) as usize;
        let mut end_idx = idx + 1;
        while end_idx + 1 < offsets.len()
            && (offsets[end_idx + 1] - offsets[end_idx]) as usize == stride
        {
            end_idx += 1;
        }
        // Runs of stride 1 stay together; a lone pair with a large stride is
        // still a (two-offset) dilated window.
        windows.push(Window::dilated(start, offsets[end_idx], stride.max(1))?);
        idx = end_idx + 1;
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid_2d, longformer, sparse_transformer};

    fn exact_fit(p: &HybridPattern) -> FitReport {
        let mask = DenseMask::from_pattern(p);
        fit_pattern(&mask, FitConfig::default()).expect("fit")
    }

    #[test]
    fn refits_longformer_exactly() {
        let p = longformer(96, 8, 1).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed, 0, "missed positions");
        assert_eq!(report.extra, 0, "extra positions");
        assert_eq!(report.pattern.globals(), &[0]);
        assert!((report.agreement - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn refits_banded_2d_exactly() {
        let p = grid_2d(6, 6, 3, 3, 0).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed + report.extra, 0);
        // Bands may be merged/split differently but coverage is identical.
        assert_eq!(report.pattern.nnz(), p.nnz());
    }

    #[test]
    fn refits_strided_pattern() {
        let p = sparse_transformer(48, 4, 4).unwrap();
        let report = exact_fit(&p);
        assert_eq!(report.missed, 0);
        assert_eq!(report.extra, 0);
        // Recovered windows include at least one dilated component.
        assert!(report.pattern.windows().iter().any(|w| w.is_dilated() || w.width() == 1));
    }

    #[test]
    fn rejects_empty_mask() {
        let mask = DenseMask::new(8).unwrap();
        assert!(matches!(
            fit_pattern(&mask, FitConfig::default()),
            Err(PatternError::EmptyPattern)
        ));
    }

    #[test]
    fn irregular_mask_reports_misses() {
        let mut mask = DenseMask::new(16).unwrap();
        // A full diagonal plus scattered noise below threshold.
        for i in 0..16 {
            mask.set(i, i, true);
        }
        mask.set(3, 9, true);
        let report = fit_pattern(&mask, FitConfig::default()).unwrap();
        assert_eq!(report.missed, 1); // the (3, 9) speck
        assert_eq!(report.extra, 0);
        assert!(report.agreement > 0.99);
    }

    #[test]
    fn group_offsets_mixed_strides() {
        let windows = group_offsets(&[-2, -1, 0, 1, 2, 10, 20, 30]).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].lo(), -2);
        assert_eq!(windows[0].hi(), 2);
        assert_eq!(windows[0].dilation(), 1);
        assert_eq!(windows[1].dilation(), 10);
        assert_eq!(windows[1].width(), 3);
    }

    #[test]
    fn group_offsets_singleton() {
        let windows = group_offsets(&[5]).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].width(), 1);
    }
}
