use crate::{HybridPattern, PatternError, Window};

/// Builder for [`HybridPattern`]s.
///
/// Collects window components and global tokens, then validates the whole
/// pattern in [`build`](Self::build).
///
/// # Example
///
/// ```
/// use salo_patterns::{HybridPattern, Window};
///
/// let pattern = HybridPattern::builder(1024)
///     .window(Window::symmetric(64)?)
///     .window(Window::dilated(-256, 256, 64)?)
///     .global_tokens([0, 1])
///     .build()?;
/// assert_eq!(pattern.windows().len(), 2);
/// assert_eq!(pattern.globals(), &[0, 1]);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    windows: Vec<Window>,
    globals: Vec<usize>,
}

impl PatternBuilder {
    /// Creates a builder for a sequence of `n` tokens.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, windows: Vec::new(), globals: Vec::new() }
    }

    /// Adds a window component.
    #[must_use]
    pub fn window(mut self, window: Window) -> Self {
        self.windows.push(window);
        self
    }

    /// Adds several window components.
    #[must_use]
    pub fn windows<I: IntoIterator<Item = Window>>(mut self, windows: I) -> Self {
        self.windows.extend(windows);
        self
    }

    /// Adds a global token.
    #[must_use]
    pub fn global_token(mut self, token: usize) -> Self {
        self.globals.push(token);
        self
    }

    /// Adds several global tokens.
    #[must_use]
    pub fn global_tokens<I: IntoIterator<Item = usize>>(mut self, tokens: I) -> Self {
        self.globals.extend(tokens);
        self
    }

    /// Validates and builds the pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence is empty, the pattern has no
    /// components, or a global token is out of range.
    pub fn build(self) -> Result<HybridPattern, PatternError> {
        HybridPattern::from_parts(self.n, self.windows, self.globals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_components() {
        let p = PatternBuilder::new(100)
            .window(Window::symmetric(5).unwrap())
            .windows([Window::sliding(10, 12).unwrap(), Window::causal(2).unwrap()])
            .global_token(3)
            .global_tokens([7, 9])
            .build()
            .unwrap();
        assert_eq!(p.windows().len(), 3);
        assert_eq!(p.globals(), &[3, 7, 9]);
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let err = PatternBuilder::new(10).global_token(10).build().unwrap_err();
        assert_eq!(err, PatternError::GlobalTokenOutOfRange { token: 10, n: 10 });
    }
}
