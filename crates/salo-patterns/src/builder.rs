use crate::{HybridPattern, PatternError, PatternTerm, Window};

/// Builder for [`HybridPattern`]s.
///
/// Collects [`PatternTerm`]s — windows, global tokens and the richer
/// block/strided/random families — then normalizes the whole composition in
/// [`build`](Self::build).
///
/// # Example
///
/// ```
/// use salo_patterns::{HybridPattern, Window};
///
/// let pattern = HybridPattern::builder(1024)
///     .window(Window::symmetric(64)?)
///     .window(Window::dilated(-256, 256, 64)?)
///     .global_tokens([0, 1])
///     .build()?;
/// assert_eq!(pattern.windows().len(), 2);
/// assert_eq!(pattern.globals(), &[0, 1]);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    terms: Vec<PatternTerm>,
}

impl PatternBuilder {
    /// Creates a builder for a sequence of `n` tokens.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, terms: Vec::new() }
    }

    /// Adds a window component.
    #[must_use]
    pub fn window(mut self, window: Window) -> Self {
        self.terms.push(PatternTerm::Window(window));
        self
    }

    /// Adds several window components.
    #[must_use]
    pub fn windows<I: IntoIterator<Item = Window>>(mut self, windows: I) -> Self {
        self.terms.extend(windows.into_iter().map(PatternTerm::Window));
        self
    }

    /// Adds a global token.
    #[must_use]
    pub fn global_token(mut self, token: usize) -> Self {
        self.terms.push(PatternTerm::Global { token });
        self
    }

    /// Adds several global tokens.
    #[must_use]
    pub fn global_tokens<I: IntoIterator<Item = usize>>(mut self, tokens: I) -> Self {
        self.terms.extend(tokens.into_iter().map(|token| PatternTerm::Global { token }));
        self
    }

    /// Adds an arbitrary pattern term.
    #[must_use]
    pub fn term(mut self, term: PatternTerm) -> Self {
        self.terms.push(term);
        self
    }

    /// Adds several pattern terms.
    #[must_use]
    pub fn terms<I: IntoIterator<Item = PatternTerm>>(mut self, terms: I) -> Self {
        self.terms.extend(terms);
        self
    }

    /// Normalizes and builds the pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence is empty, the pattern has no
    /// components, a global token is out of range, or a term carries
    /// malformed parameters.
    pub fn build(self) -> Result<HybridPattern, PatternError> {
        HybridPattern::from_terms(self.n, self.terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_components() {
        let p = PatternBuilder::new(100)
            .window(Window::symmetric(5).unwrap())
            .windows([Window::sliding(10, 12).unwrap(), Window::causal(2).unwrap()])
            .global_token(3)
            .global_tokens([7, 9])
            .build()
            .unwrap();
        assert_eq!(p.windows().len(), 3);
        assert_eq!(p.globals(), &[3, 7, 9]);
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let err = PatternBuilder::new(10).global_token(10).build().unwrap_err();
        assert_eq!(err, PatternError::GlobalTokenOutOfRange { token: 10, n: 10 });
    }

    #[test]
    fn builder_accepts_residual_terms() {
        use crate::BlockLayout;
        let p = PatternBuilder::new(16)
            .window(Window::symmetric(3).unwrap())
            .term(PatternTerm::BlockSparse { block_rows: 4, layout: BlockLayout::Diagonal })
            .terms([PatternTerm::RandomBlocks { count: 1, seed: 9 }])
            .build()
            .unwrap();
        assert_eq!(p.residual_terms().len(), 2);
        assert!(!p.residual().is_empty());
    }
}
