//! Hybrid sparse attention patterns for the SALO accelerator.
//!
//! This crate implements the pattern abstraction of the SALO paper (DAC 2022,
//! §2.3): a *hybrid sparse attention mechanism* is the union of
//!
//! * **sliding window attention** — each query `q_i` attends keys `k_j` with
//!   `a <= j - i <= b` for a fixed relative range `[a, b]`;
//! * **dilated window attention** — the same with a gap (dilation) `d` between
//!   consecutive offsets, extending the receptive field;
//! * **global attention** — a small set of pre-selected tokens whose queries
//!   attend every key and whose keys are attended by every query.
//!
//! The central type is [`HybridPattern`], a normalized composition of
//! [`PatternTerm`]s: [`Window`] components and global token indices form the
//! translation-invariant core, while block-sparse, Sparse-Transformer strided
//! and BigBird-style random terms lower to a canonical per-row
//! [`SupportRuns`] residual. Patterns are *data*: the SALO data scheduler
//! (`salo-scheduler`) consumes them to produce execution plans, the reference
//! kernels (`salo-kernels`) consume them as masks, and the statistics module
//! here reproduces the sparsity column of Table 2 in the paper.
//!
//! # Example
//!
//! ```
//! use salo_patterns::{HybridPattern, Window};
//!
//! // Longformer-style pattern: 512-wide sliding window plus one global token.
//! let pattern = HybridPattern::builder(4096)
//!     .window(Window::symmetric(512)?)
//!     .global_token(0)
//!     .build()?;
//! assert!(pattern.allows(100, 100 + 255)); // inside the window
//! assert!(pattern.allows(3000, 0));        // global column
//! assert!(!pattern.allows(100, 2000));     // masked out
//! # Ok::<(), salo_patterns::PatternError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod decode;
mod error;
mod fingerprint;
mod fit;
mod mask;
mod pattern;
mod presets;
mod render;
mod shape;
mod stats;
mod support;
mod terms;
mod window;

pub use builder::PatternBuilder;
pub use decode::DecodeView;
pub use error::PatternError;
pub use fingerprint::StableHasher;
pub use fit::{autotune, fit_pattern, AutotuneReport, FitConfig, FitReport};
pub use mask::DenseMask;
pub use pattern::HybridPattern;
pub use presets::{
    bigbird, grid_2d, longformer, sliding_only, sparse_transformer, star_transformer,
    strided_fixed, vil_stage,
};
pub use render::{render_ascii, RenderOptions};
pub use shape::AttentionShape;
pub use stats::PatternStats;
pub use support::{analyze_support, bigbird_like_mask, SupportReport};
pub use terms::{BlockLayout, PatternTerm, SupportRuns};
pub use window::Window;
