//! The decode view of a hybrid pattern: per-step active key sets for
//! autoregressive generation.
//!
//! Prefill executes a pattern over a complete sequence at once; decoding
//! produces one query position `t` per step, attending only keys that
//! already exist (`j <= t`). The decode view fixes the semantics of a
//! [`HybridPattern`] under that regime:
//!
//! * every window is restricted to its causal part ([`HybridPattern::causal`]),
//!   preserving the dilation grid, then clipped to `[0, t]` at each step;
//! * a global *column* `g` contributes key `g` to every step with `t >= g`;
//! * a global *row* `g` is never decoded as a step — its query attends
//!   keys that may not exist yet at position `g`, so causal models place
//!   global tokens in the prompt and their rows accumulate incrementally
//!   as the sequence grows (the simulator's running global-duty partials).
//!
//! A step `t` is therefore *decodable* once every global token is in the
//! past (`t >= min_step`), and its key set then equals the corresponding
//! row of the causal prefill — the invariant the execution-level decode
//! datapath is tested against, bit for bit.

use crate::{HybridPattern, PatternError};

/// A causal, step-indexed view of a [`HybridPattern`] for autoregressive
/// decoding.
///
/// Construction clips the pattern to its causal part once; per-step key
/// sets are then pure reads.
///
/// # Example
///
/// ```
/// use salo_patterns::{HybridPattern, Window};
///
/// let p = HybridPattern::builder(16)
///     .window(Window::symmetric(5)?) // offsets -2..=2
///     .global_token(0)
///     .build()?;
/// let view = p.decode_view()?;
/// assert_eq!(view.min_step(), 1, "token 0 is global: decode starts at 1");
/// // Step 8 attends the causal window {6, 7, 8} plus the global key 0.
/// assert_eq!(view.keys_at(8), vec![0, 6, 7, 8]);
/// # Ok::<(), salo_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeView {
    causal: HybridPattern,
    min_step: usize,
}

impl HybridPattern {
    /// Builds the decode view of this pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptyPattern`] if nothing survives causal
    /// clipping (every window entirely in the future and no globals).
    pub fn decode_view(&self) -> Result<DecodeView, PatternError> {
        let causal = self.causal()?;
        let min_step = causal.globals().iter().max().map_or(0, |&g| g + 1);
        Ok(DecodeView { causal, min_step })
    }
}

impl DecodeView {
    /// Sequence capacity `n` (the maximum number of decoded positions).
    #[must_use]
    pub fn n(&self) -> usize {
        self.causal.n()
    }

    /// The causally clipped pattern the view indexes — the pattern a
    /// prefill oracle must run for step outputs to be comparable.
    #[must_use]
    pub fn causal_pattern(&self) -> &HybridPattern {
        &self.causal
    }

    /// Consumes the view, yielding the causal pattern without a clone.
    #[must_use]
    pub fn into_causal_pattern(self) -> HybridPattern {
        self.causal
    }

    /// First decodable step: the position after the last global token
    /// (0 when the pattern has no globals). Positions before it belong to
    /// the prompt.
    #[must_use]
    pub fn min_step(&self) -> usize {
        self.min_step
    }

    /// Whether position `t` can be produced as a decode step.
    #[must_use]
    pub fn is_decodable(&self, t: usize) -> bool {
        t >= self.min_step && t < self.causal.n()
    }

    /// The range of decodable steps (`min_step..n`).
    #[must_use]
    pub fn decodable_steps(&self) -> std::ops::Range<usize> {
        self.min_step..self.causal.n()
    }

    /// The active key set of query position `t`: the causal window band
    /// clipped to `[0, t]` (dilation grid preserved) plus every global
    /// token `<= t`; for a global `t`, the whole history `0..=t`. Sorted
    /// and deduplicated.
    ///
    /// For decodable steps this equals the causal pattern's full row key
    /// set — no key is clipped away, which is exactly what makes the step
    /// computable from the existing history.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n` (caller logic error, matching
    /// [`HybridPattern::row_keys`]).
    #[must_use]
    pub fn keys_at(&self, t: usize) -> Vec<usize> {
        assert!(t < self.causal.n(), "step {t} outside capacity {n}", n = self.causal.n());
        if self.causal.is_global(t) {
            return (0..=t).collect();
        }
        let mut keys = self.causal.row_keys(t);
        keys.retain(|&j| j <= t);
        keys
    }

    /// Number of active keys at step `t`.
    #[must_use]
    pub fn nnz_at(&self, t: usize) -> usize {
        self.keys_at(t).len()
    }

    /// Total keys touched by a full generation (`Σ_t nnz_at(t)`) — the
    /// decode-side analogue of [`HybridPattern::nnz`].
    #[must_use]
    pub fn total_nnz(&self) -> u64 {
        (0..self.causal.n()).map(|t| self.nnz_at(t) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Window;

    #[test]
    fn view_of_symmetric_window_with_sink() {
        let p = HybridPattern::builder(12)
            .window(Window::symmetric(7).unwrap()) // -3..=3
            .global_token(0)
            .build()
            .unwrap();
        let view = p.decode_view().unwrap();
        assert_eq!(view.n(), 12);
        assert_eq!(view.min_step(), 1);
        assert_eq!(view.decodable_steps(), 1..12);
        assert!(!view.is_decodable(0));
        assert!(view.is_decodable(11));
        // Causal clipping: window keeps -3..=0 only.
        assert_eq!(view.keys_at(6), vec![0, 3, 4, 5, 6]);
        // Near the start, the band clips to [0, t].
        assert_eq!(view.keys_at(1), vec![0, 1]);
    }

    #[test]
    fn global_step_attends_whole_history() {
        let p = HybridPattern::builder(10)
            .window(Window::causal(2).unwrap())
            .global_token(3)
            .build()
            .unwrap();
        let view = p.decode_view().unwrap();
        assert_eq!(view.min_step(), 4);
        assert_eq!(view.keys_at(3), vec![0, 1, 2, 3]);
        // A pre-min_step non-global position clips the future global away.
        assert_eq!(view.keys_at(1), vec![0, 1]);
        // Decodable steps see the global key.
        assert_eq!(view.keys_at(5), vec![3, 4, 5]);
    }

    #[test]
    fn decodable_keys_match_causal_prefill_rows() {
        // The load-bearing invariant: for t >= min_step, keys_at equals the
        // causal pattern's full row key set.
        let p = HybridPattern::builder(40)
            .window(Window::symmetric(9).unwrap())
            .window(Window::dilated(-10, 8, 3).unwrap())
            .global_token(0)
            .global_token(2)
            .build()
            .unwrap();
        let view = p.decode_view().unwrap();
        assert_eq!(view.min_step(), 3);
        for t in view.decodable_steps() {
            assert_eq!(view.keys_at(t), view.causal_pattern().row_keys(t), "step {t}");
        }
    }

    #[test]
    fn dilation_grid_preserved_in_view() {
        let p = HybridPattern::builder(30)
            .window(Window::dilated(-7, 5, 3).unwrap()) // causal part: -7,-4,-1
            .build()
            .unwrap();
        let view = p.decode_view().unwrap();
        assert_eq!(view.min_step(), 0);
        assert_eq!(view.keys_at(10), vec![3, 6, 9]);
        assert_eq!(view.keys_at(2), vec![1], "grid clips to [0, t]");
    }

    #[test]
    fn future_only_pattern_has_no_view() {
        let p = HybridPattern::builder(8).window(Window::sliding(1, 3).unwrap()).build().unwrap();
        assert!(matches!(p.decode_view(), Err(PatternError::EmptyPattern)));
    }

    #[test]
    fn total_nnz_counts_each_step_once() {
        let p = HybridPattern::builder(6).window(Window::causal(3).unwrap()).build().unwrap();
        let view = p.decode_view().unwrap();
        // Rows: 1, 2, 3, 3, 3, 3 keys.
        assert_eq!(view.total_nnz(), 15);
        assert_eq!(view.nnz_at(0), 1);
    }

    #[test]
    fn globals_only_view() {
        let p = HybridPattern::builder(6).global_token(1).build().unwrap();
        let view = p.decode_view().unwrap();
        assert_eq!(view.min_step(), 2);
        assert_eq!(view.keys_at(4), vec![1]);
        assert_eq!(view.keys_at(1), vec![0, 1], "global step sees its history");
    }
}
