use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating attention patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// A window was specified with `lo > hi`.
    InvalidWindowRange {
        /// Lower relative offset.
        lo: i64,
        /// Upper relative offset.
        hi: i64,
    },
    /// A window dilation of zero was requested.
    ZeroDilation,
    /// The span `hi - lo` is not a multiple of the dilation, so the window
    /// cannot place its last offset exactly at `hi`.
    MisalignedDilation {
        /// Lower relative offset.
        lo: i64,
        /// Upper relative offset.
        hi: i64,
        /// Requested dilation.
        dilation: usize,
    },
    /// A window size of zero was requested.
    EmptyWindow,
    /// A global token index is outside the sequence.
    GlobalTokenOutOfRange {
        /// Offending token index.
        token: usize,
        /// Sequence length.
        n: usize,
    },
    /// The sequence length is zero.
    EmptySequence,
    /// The pattern has no windows and no global tokens.
    EmptyPattern,
    /// A 2-D grid parameter is invalid (zero extent or even window size where
    /// an odd one is required).
    InvalidGrid {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A pattern term carries malformed parameters (zero block size or
    /// stride, out-of-range block pair, inconsistent support runs).
    InvalidTerm {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::InvalidWindowRange { lo, hi } => {
                write!(f, "invalid window range: lo {lo} exceeds hi {hi}")
            }
            PatternError::ZeroDilation => write!(f, "window dilation must be at least 1"),
            PatternError::MisalignedDilation { lo, hi, dilation } => {
                write!(f, "window span {lo}..={hi} is not a multiple of dilation {dilation}")
            }
            PatternError::EmptyWindow => write!(f, "window size must be at least 1"),
            PatternError::GlobalTokenOutOfRange { token, n } => {
                write!(f, "global token {token} out of range for sequence length {n}")
            }
            PatternError::EmptySequence => write!(f, "sequence length must be at least 1"),
            PatternError::EmptyPattern => {
                write!(f, "pattern needs at least one window or global token")
            }
            PatternError::InvalidGrid { reason } => write!(f, "invalid 2-D grid: {reason}"),
            PatternError::InvalidTerm { reason } => write!(f, "invalid pattern term: {reason}"),
        }
    }
}

impl Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = PatternError::InvalidWindowRange { lo: 3, hi: -3 };
        let text = err.to_string();
        assert!(text.starts_with("invalid window range"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PatternError>();
    }

    #[test]
    fn all_variants_display() {
        let variants = vec![
            PatternError::InvalidWindowRange { lo: 1, hi: 0 },
            PatternError::ZeroDilation,
            PatternError::MisalignedDilation { lo: 0, hi: 5, dilation: 2 },
            PatternError::EmptyWindow,
            PatternError::GlobalTokenOutOfRange { token: 9, n: 4 },
            PatternError::EmptySequence,
            PatternError::EmptyPattern,
            PatternError::InvalidGrid { reason: "zero height".into() },
            PatternError::InvalidTerm { reason: "block_rows must be at least 1".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
