use crate::{HybridPattern, PatternError};

/// A dense boolean attention mask: `n x n`, row-major, `true` where the score
/// is kept.
///
/// Used as the ground truth in tests and as the input to
/// [`fit_pattern`](crate::fit_pattern), which decomposes an arbitrary mask
/// back into SALO's window/global component language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMask {
    n: usize,
    bits: Vec<bool>,
}

impl DenseMask {
    /// Creates an all-false mask of size `n x n`.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::EmptySequence`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, PatternError> {
        if n == 0 {
            return Err(PatternError::EmptySequence);
        }
        Ok(Self { n, bits: vec![false; n * n] })
    }

    /// Materializes a [`HybridPattern`] into a dense mask.
    #[must_use]
    pub fn from_pattern(p: &HybridPattern) -> Self {
        let n = p.n();
        let mut mask = Self { n, bits: vec![false; n * n] };
        for i in 0..n {
            for j in p.row_keys(i) {
                mask.bits[i * n + j] = true;
            }
        }
        mask
    }

    /// The *exact* 2-D window mask over an `h x w` grid (clipped at image
    /// edges, no flattening wrap-around), plus `ng` global tokens.
    ///
    /// This is what a 2-D vision model actually computes; the flattened
    /// band approximation used by [`grid_2d`](crate::grid_2d) differs at the
    /// image-row boundaries. Comparing the two quantifies that divergence.
    ///
    /// # Errors
    ///
    /// Returns an error if any extent is zero.
    pub fn grid_2d_exact(
        h: usize,
        w: usize,
        wh: usize,
        ww: usize,
        ng: usize,
    ) -> Result<Self, PatternError> {
        if h == 0 || w == 0 || wh == 0 || ww == 0 {
            return Err(PatternError::InvalidGrid { reason: "zero extent".into() });
        }
        let n = h * w;
        let mut mask = Self::new(n)?;
        let (hh, hw) = ((wh / 2) as i64, (ww / 2) as i64);
        for r in 0..h as i64 {
            for c in 0..w as i64 {
                let i = (r * w as i64 + c) as usize;
                for dr in -hh..=hh {
                    for dc in -hw..=hw {
                        let (rr, cc) = (r + dr, c + dc);
                        if rr >= 0 && rr < h as i64 && cc >= 0 && cc < w as i64 {
                            mask.bits[i * n + (rr * w as i64 + cc) as usize] = true;
                        }
                    }
                }
            }
        }
        for g in 0..ng.min(n) {
            for t in 0..n {
                mask.bits[g * n + t] = true;
                mask.bits[t * n + g] = true;
            }
        }
        Ok(mask)
    }

    /// Mask size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether position `(i, j)` is kept.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `j >= n`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n);
        self.bits[i * self.n + j]
    }

    /// Sets position `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `j >= n`.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.n && j < self.n);
        self.bits[i * self.n + j] = value;
    }

    /// Number of kept positions.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        self.bits.iter().filter(|&&b| b).count() as u64
    }

    /// Positions kept in `self` but not in `other`, plus vice versa.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different sizes.
    #[must_use]
    pub fn symmetric_difference(&self, other: &Self) -> u64 {
        assert_eq!(self.n, other.n, "mask size mismatch");
        self.bits.iter().zip(&other.bits).filter(|(a, b)| a != b).count() as u64
    }

    /// Fraction of positions on which `self` and `other` agree.
    #[must_use]
    pub fn agreement(&self, other: &Self) -> f64 {
        1.0 - self.symmetric_difference(other) as f64 / (self.n as f64 * self.n as f64)
    }

    /// Iterates kept positions in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.n;
        self.bits.iter().enumerate().filter(|(_, &b)| b).map(move |(idx, _)| (idx / n, idx % n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid_2d, longformer};

    #[test]
    fn from_pattern_round_trips_nnz() {
        let p = longformer(64, 8, 1).unwrap();
        let m = DenseMask::from_pattern(&p);
        assert_eq!(m.nnz(), p.nnz());
        for (i, j) in m.iter() {
            assert!(p.allows(i, j));
        }
    }

    #[test]
    fn exact_2d_vs_flattened_bands() {
        let exact = DenseMask::grid_2d_exact(6, 6, 3, 3, 0).unwrap();
        let flat = DenseMask::from_pattern(&grid_2d(6, 6, 3, 3, 0).unwrap());
        // Flattened version wraps at image-row edges, so it keeps strictly
        // more positions at columns 0 and w-1 and misses none of the exact
        // interior.
        for (i, j) in exact.iter() {
            let (r1, c1) = (i / 6, i % 6);
            let (r2, c2) = (j / 6, j % 6);
            // interior positions agree
            if (1..5).contains(&c1) && (1..5).contains(&c2) && r1.abs_diff(r2) <= 1 {
                assert!(flat.get(i, j), "flat missing interior ({i},{j})");
            }
        }
        assert!(flat.agreement(&exact) > 0.9);
    }

    #[test]
    fn set_get_and_diff() {
        let mut a = DenseMask::new(4).unwrap();
        let b = DenseMask::new(4).unwrap();
        assert_eq!(a.symmetric_difference(&b), 0);
        a.set(1, 2, true);
        assert!(a.get(1, 2));
        assert_eq!(a.symmetric_difference(&b), 1);
        assert!((a.agreement(&b) - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert!(DenseMask::new(0).is_err());
        assert!(DenseMask::grid_2d_exact(0, 4, 3, 3, 0).is_err());
    }

    #[test]
    fn global_tokens_in_exact_grid() {
        let m = DenseMask::grid_2d_exact(4, 4, 3, 3, 1).unwrap();
        for t in 0..16 {
            assert!(m.get(0, t));
            assert!(m.get(t, 0));
        }
    }
}
