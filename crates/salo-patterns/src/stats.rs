use crate::HybridPattern;

/// Summary statistics of a [`HybridPattern`].
///
/// Reproduces the quantities reported in Table 2 of the SALO paper: window
/// size, number of global tokens and sparsity. The paper's "Sparsity" column
/// is the *nominal* density `(n*w + 2*n*ng) / n^2` (unclipped window plus
/// global row/column), which for the three evaluation workloads rounds to
/// 0.125 (Longformer-4096), 0.072 (ViL stage 1) and 0.288 (ViL stage 2).
/// The *exact* density additionally accounts for boundary clipping and
/// overlap deduplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStats {
    /// Sequence length.
    pub n: usize,
    /// Exact number of kept score positions.
    pub nnz: u64,
    /// Exact density `nnz / n^2`.
    pub density: f64,
    /// Nominal density `(w_total + 2*ng) / n`, the paper's Table 2 formula.
    pub nominal_density: f64,
    /// Total window width (sum over window components).
    pub window_width: usize,
    /// Number of window components.
    pub num_windows: usize,
    /// Number of global tokens.
    pub num_globals: usize,
    /// Kept positions in the residual support (block/random/support terms
    /// after normalization); zero for pure window/global patterns.
    pub residual_nnz: u64,
}

impl PatternStats {
    pub(crate) fn from_pattern(p: &HybridPattern) -> Self {
        let n = p.n();
        let nnz = p.nnz();
        let w_total = p.total_window_width();
        let ng = p.globals().len();
        let nominal = (w_total as f64 + 2.0 * ng as f64) / n as f64;
        Self {
            n,
            nnz,
            density: nnz as f64 / (n as f64 * n as f64),
            nominal_density: nominal.min(1.0),
            window_width: w_total,
            num_windows: p.windows().len(),
            num_globals: ng,
            residual_nnz: p.residual().nnz(),
        }
    }

    /// MACs for one head of dimension `head_dim` executing this pattern
    /// (score matmul plus value matmul: `2 * nnz * d`).
    #[must_use]
    pub fn sparse_macs(&self, head_dim: usize) -> u64 {
        2 * self.nnz * head_dim as u64
    }

    /// MACs for one dense head of dimension `head_dim` (`2 * n^2 * d`).
    #[must_use]
    pub fn dense_macs(&self, head_dim: usize) -> u64 {
        2 * (self.n as u64) * (self.n as u64) * head_dim as u64
    }

    /// Compression ratio of the pattern: dense MACs divided by sparse MACs.
    #[must_use]
    pub fn compression(&self) -> f64 {
        (self.n as f64 * self.n as f64) / self.nnz as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::{longformer, vil_stage, Window};

    #[test]
    fn longformer_4096_matches_table2_sparsity() {
        // Table 2 row 1: n = 4096, w = 512, 1 global token, sparsity 0.125.
        let p = longformer(4096, 512, 1).unwrap();
        let s = p.stats();
        assert_eq!(s.window_width, 512);
        assert_eq!(s.num_globals, 1);
        // Nominal density 512/4096 + 2/4096 = 0.12549
        assert!((s.nominal_density - 0.1255).abs() < 1e-3, "nominal {}", s.nominal_density);
        // The paper reports 0.125.
        assert!((s.nominal_density - 0.125).abs() < 0.002);
        // Exact density is lower because of boundary clipping.
        assert!(s.density < s.nominal_density);
        assert!(s.density > 0.10);
    }

    #[test]
    fn vil_stage1_matches_table2_sparsity() {
        // Table 2 row 2: 56x56 tokens, 15x15 window, sparsity 0.072.
        let p = vil_stage(56, 56, 15, 15, 1).unwrap();
        let s = p.stats();
        assert_eq!(s.n, 3136);
        assert_eq!(s.window_width, 225);
        assert!((s.nominal_density - 0.072).abs() < 0.002, "nominal {}", s.nominal_density);
    }

    #[test]
    fn vil_stage2_matches_table2_sparsity() {
        // Table 2 row 3: 28x28 tokens, 15x15 window, sparsity 0.288.
        let p = vil_stage(28, 28, 15, 15, 1).unwrap();
        let s = p.stats();
        assert_eq!(s.n, 784);
        assert!((s.nominal_density - 0.288).abs() < 0.004, "nominal {}", s.nominal_density);
    }

    #[test]
    fn compression_is_inverse_density() {
        let p = longformer(1024, 128, 1).unwrap();
        let s = p.stats();
        assert!((s.compression() - 1.0 / s.density).abs() < 1e-9);
    }

    #[test]
    fn nominal_density_saturates_at_one() {
        let p = HybridPattern::builder(4).window(Window::symmetric(100).unwrap()).build().unwrap();
        assert!((p.stats().nominal_density - 1.0).abs() < f64::EPSILON);
        assert!((p.stats().density - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn macs_relation() {
        let p = longformer(256, 32, 1).unwrap();
        let s = p.stats();
        assert_eq!(s.sparse_macs(64), 2 * s.nnz * 64);
        assert_eq!(s.dense_macs(64), 2 * 256 * 256 * 64);
        assert!(s.sparse_macs(64) < s.dense_macs(64));
    }

    use crate::HybridPattern;
}
