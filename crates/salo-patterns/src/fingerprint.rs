//! A stable 64-bit structural hash for cache keys.
//!
//! `std::hash::Hasher` implementations (and the default `RandomState`) are
//! free to change between Rust releases and processes, so they cannot back
//! a fingerprint that identifies "the same pattern" across runs — e.g. a
//! plan cache persisted next to a trace, or two serving replicas agreeing
//! on a cache key. [`StableHasher`] is FNV-1a over an explicit field
//! ordering: the value is a function of the hashed bytes alone.

/// FNV-1a 64-bit hasher with explicit, endianness-stable primitives.
///
/// # Example
///
/// ```
/// use salo_patterns::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write_u64(42);
/// h.write_i64(-7);
/// let a = h.finish();
/// assert_eq!(a, {
///     let mut h = StableHasher::new();
///     h.write_u64(42);
///     h.write_i64(-7);
///     h.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Starts a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to 64 bits (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// The accumulated hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish(), "order matters");

        let mut c = StableHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish(), "same inputs, same hash");
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        // FNV-1a of "a" (well-known test vector).
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn primitive_encodings_distinguish_types_by_width() {
        let mut a = StableHasher::new();
        a.write_bool(true);
        let mut b = StableHasher::new();
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_f64(1.0);
        assert_ne!(b.finish(), c.finish());
    }
}
