//! Preset pattern generators for the sparse attention mechanisms surveyed in
//! the SALO paper (Fig. 2): Longformer, Star Transformer, Sparse Transformer
//! and the 2-D windows of Vision Longformer (ViL) — plus the pattern-zoo
//! additions the composable IR unlocks: BigBird ([`bigbird`]) and the
//! O(n·√n) strided+fixed pattern ([`strided_fixed`]).

use crate::{HybridPattern, PatternError, PatternTerm, Window};

/// Longformer's hybrid pattern: a symmetric sliding window of size `w` plus
/// `ng` global tokens at the start of the sequence (task tokens such as
/// `[CLS]`).
///
/// `longformer(4096, 512, 1)` is the Longformer-Base-4096 configuration from
/// Table 2 of the paper.
///
/// # Errors
///
/// Returns an error if `w == 0` or `ng > n`.
pub fn longformer(n: usize, w: usize, ng: usize) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n).window(Window::symmetric(w)?).global_tokens(0..ng).build()
}

/// A plain sliding window pattern with no global tokens.
///
/// # Errors
///
/// Returns an error if `w == 0` or `n == 0`.
pub fn sliding_only(n: usize, w: usize) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n).window(Window::symmetric(w)?).build()
}

/// Star Transformer's pattern: a local trigram window (each token attends its
/// immediate neighbours) plus one relay token attending and attended by all.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn star_transformer(n: usize) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n).window(Window::symmetric(3)?).global_token(0).build()
}

/// Sparse Transformer's strided pattern: a causal local window of size
/// `stride` plus a causal dilated window with gap `stride` reaching back
/// `depth * stride` positions (the "column" attention of Fig. 2c).
///
/// # Errors
///
/// Returns an error if `stride == 0` or `depth == 0`.
pub fn sparse_transformer(
    n: usize,
    stride: usize,
    depth: usize,
) -> Result<HybridPattern, PatternError> {
    if stride == 0 || depth == 0 {
        return Err(PatternError::EmptyWindow);
    }
    let local = Window::causal(stride)?;
    let column = Window::dilated(-((depth * stride) as i64), 0, stride)?;
    HybridPattern::builder(n).window(local).window(column).build()
}

/// BigBird's hybrid pattern: a symmetric sliding window of size `w`, `blocks`
/// pseudo-random keys per query row, and `ng` global tokens at the sequence
/// start.
///
/// The random part is deterministically derived from `seed` via the same
/// splitmix64 stream as [`bigbird_like_mask`](crate::bigbird_like_mask), so
/// `DenseMask::from_pattern(&bigbird(n, w, blocks, ng, seed)?)` reproduces
/// that mask bit for bit and the pattern's fingerprint is stable across
/// processes and releases.
///
/// # Errors
///
/// Returns an error if `w == 0` or `ng > n`.
pub fn bigbird(
    n: usize,
    w: usize,
    blocks: usize,
    ng: usize,
    seed: u64,
) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n)
        .window(Window::symmetric(w)?)
        .global_tokens(0..ng)
        .term(PatternTerm::RandomBlocks { count: blocks, seed })
        .build()
}

/// Sparse Transformer's strided+fixed pattern at full reach: a causal local
/// window of `stride` positions plus every `stride`-th earlier key over the
/// *whole* history — O(n·√n) kept positions at `stride ≈ √n`. Unlike
/// [`sparse_transformer`], whose column attention stops after `depth`
/// strides, this reaches position 0 from every query.
///
/// # Errors
///
/// Returns an error if `stride == 0` or `n == 0`.
pub fn strided_fixed(n: usize, stride: usize) -> Result<HybridPattern, PatternError> {
    HybridPattern::builder(n).term(PatternTerm::Strided { stride, local: stride }).build()
}

/// A 2-D local window over an `h x w` token grid, flattened row-major into a
/// 1-D sequence, plus `ng` global tokens.
///
/// A query at grid position `(r, c)` attends keys within the `wh x ww`
/// window centered on it. In flattened coordinates the window becomes `wh`
/// *bands*: for each row offset `dr` in `-(wh/2)..=wh/2`, a sliding window
/// of width `ww` shifted by `dr * w`. Band `dr` is the paper's dilated/
/// y-axis attention after flattening (§2.3); because every band is
/// translation invariant, SALO's diagonal dataflow applies to each directly.
///
/// Note: flattening makes bands wrap around image-row boundaries (a query in
/// column 0 "sees" a few keys from the end of the previous image row). This
/// matches the 1-D flattened approximation the paper uses in Fig. 2c; the
/// exact-2-D mask is available through [`DenseMask::grid_2d_exact`] for
/// comparison.
///
/// [`DenseMask::grid_2d_exact`]: crate::DenseMask::grid_2d_exact
///
/// # Errors
///
/// Returns an error if any extent is zero or a window dimension is even
/// (2-D windows must be centered, hence odd).
pub fn grid_2d(
    h: usize,
    w: usize,
    wh: usize,
    ww: usize,
    ng: usize,
) -> Result<HybridPattern, PatternError> {
    if h == 0 || w == 0 {
        return Err(PatternError::InvalidGrid { reason: "grid extent is zero".into() });
    }
    if wh == 0 || ww == 0 {
        return Err(PatternError::InvalidGrid { reason: "window extent is zero".into() });
    }
    if wh.is_multiple_of(2) || ww.is_multiple_of(2) {
        return Err(PatternError::InvalidGrid {
            reason: format!("2-D window {wh}x{ww} must have odd extents"),
        });
    }
    let n = h * w;
    let half_h = (wh / 2) as i64;
    let base = Window::symmetric(ww)?;
    let bands = (-half_h..=half_h).map(|dr| base.shifted(dr * w as i64)).collect::<Vec<_>>();
    HybridPattern::builder(n).windows(bands).global_tokens(0..ng).build()
}

/// The ViL (Vision Longformer) attention pattern for a stage operating on an
/// `h x w` patch grid with a `wh x ww` 2-D window and `ng` global tokens.
///
/// `vil_stage(56, 56, 15, 15, 1)` and `vil_stage(28, 28, 15, 15, 1)` are the
/// ViL-Medium-Wide stage-1 and stage-2 configurations of Table 2.
///
/// # Errors
///
/// Same as [`grid_2d`].
pub fn vil_stage(
    h: usize,
    w: usize,
    wh: usize,
    ww: usize,
    ng: usize,
) -> Result<HybridPattern, PatternError> {
    grid_2d(h, w, wh, ww, ng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longformer_structure() {
        let p = longformer(128, 16, 2).unwrap();
        assert_eq!(p.windows().len(), 1);
        assert_eq!(p.globals(), &[0, 1]);
        assert!(p.allows(64, 64 + 7));
        assert!(p.allows(64, 64 - 8));
        assert!(!p.allows(64, 64 + 8));
    }

    #[test]
    fn star_transformer_structure() {
        let p = star_transformer(32).unwrap();
        // q6 attends k5, k6, k7 (the paper's Fig. 2b walkthrough).
        assert_eq!(p.row_keys(6), vec![0, 5, 6, 7]);
    }

    #[test]
    fn sparse_transformer_structure() {
        let p = sparse_transformer(64, 4, 8).unwrap();
        // Local causal window of 4 plus strided column every 4.
        assert!(p.allows(20, 20));
        assert!(p.allows(20, 17));
        assert!(!p.allows(20, 21)); // causal
        assert!(p.allows(20, 16)); // stride hit: 20-16 = 4
        assert!(p.allows(20, 12));
        assert!(!p.allows(20, 15)); // gap: not local (20-15=5>3), not strided
        assert!(sparse_transformer(64, 0, 8).is_err());
    }

    #[test]
    fn grid_2d_band_structure() {
        // 4x8 grid, 3x3 window.
        let p = grid_2d(4, 8, 3, 3, 0).unwrap();
        assert_eq!(p.n(), 32);
        assert_eq!(p.windows().len(), 3);
        // Query at (1,3) = index 11 attends the 3x3 neighbourhood.
        let keys = p.row_keys(11);
        for (r, c) in [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 2), (2, 3), (2, 4)] {
            assert!(keys.contains(&(r * 8 + c)), "missing ({r},{c})");
        }
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn grid_2d_flattening_wraps_at_row_edges() {
        // The flattened approximation: query at column 0 sees keys from the
        // previous image row's tail. This is intended (Fig. 2c note).
        let p = grid_2d(4, 8, 3, 3, 0).unwrap();
        let keys = p.row_keys(8); // grid (1, 0)
        assert!(keys.contains(&7)); // (0,7): wrapped neighbour
    }

    #[test]
    fn grid_2d_rejects_even_windows() {
        assert!(grid_2d(8, 8, 2, 3, 0).is_err());
        assert!(grid_2d(8, 8, 3, 4, 0).is_err());
        assert!(grid_2d(0, 8, 3, 3, 0).is_err());
        assert!(grid_2d(8, 8, 0, 3, 0).is_err());
    }

    #[test]
    fn vil_table2_shapes() {
        let s1 = vil_stage(56, 56, 15, 15, 1).unwrap();
        assert_eq!(s1.n(), 3136);
        assert_eq!(s1.windows().len(), 15);
        assert_eq!(s1.total_window_width(), 225);
        let s2 = vil_stage(28, 28, 15, 15, 1).unwrap();
        assert_eq!(s2.n(), 784);
    }

    #[test]
    fn bigbird_preset_reproduces_the_reference_mask() {
        use crate::{bigbird_like_mask, DenseMask};
        let (n, w, blocks, ng, seed) = (96, 12, 3, 1, 42);
        let p = bigbird(n, w, blocks, ng, seed).unwrap();
        let mask = bigbird_like_mask(n, w, ng, blocks, seed).unwrap();
        assert_eq!(DenseMask::from_pattern(&p), mask, "pattern and mask share the random stream");
        assert!(!p.residual().is_empty(), "random links land in the residual");
    }

    #[test]
    fn strided_fixed_reaches_the_whole_history() {
        let p = strided_fixed(256, 16).unwrap();
        assert!(p.allows(200, 200));
        assert!(p.allows(200, 185), "inside the local window");
        assert!(!p.allows(200, 201), "causal");
        assert!(p.allows(200, 184), "stride hit");
        assert!(p.allows(200, 8), "column attention reaches the whole history");
        assert!(!p.allows(200, 9));
        // O(n·√n): each row keeps ~2√n keys.
        assert!(p.nnz() < 2 * 256 * 32);
        assert!(strided_fixed(256, 0).is_err());
    }

    #[test]
    fn sliding_only_has_no_globals() {
        let p = sliding_only(64, 8).unwrap();
        assert!(p.globals().is_empty());
        assert_eq!(p.total_window_width(), 8);
    }
}
