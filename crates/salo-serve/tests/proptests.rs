//! Property tests for the plan cache: stats stay consistent and plans stay
//! correct under proptest-driven request mixes, sequential and concurrent.

use std::sync::Arc;

use proptest::prelude::*;
use salo_core::{CompiledPlan, Salo};
use salo_patterns::{sliding_only, AttentionShape, HybridPattern};
use salo_scheduler::HardwareMeta;
use salo_serve::{PlanCache, PlanKey};
use salo_sim::AcceleratorConfig;

const WORKLOADS: [(usize, usize); 4] = [(16, 3), (24, 5), (32, 5), (40, 7)];

fn small_config() -> AcceleratorConfig {
    AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() }
}

struct Fixture {
    salo: Salo,
    config: AcceleratorConfig,
    patterns: Vec<HybridPattern>,
    shapes: Vec<AttentionShape>,
    keys: Vec<PlanKey>,
}

fn fixture() -> Fixture {
    let config = small_config();
    let salo = Salo::new(config.clone());
    let patterns: Vec<HybridPattern> =
        WORKLOADS.iter().map(|&(n, w)| sliding_only(n, w).unwrap()).collect();
    let shapes: Vec<AttentionShape> =
        WORKLOADS.iter().map(|&(n, _)| AttentionShape::new(n, 8, 1).unwrap()).collect();
    let keys: Vec<PlanKey> =
        patterns.iter().zip(&shapes).map(|(p, s)| PlanKey::new(p, s, &config)).collect();
    Fixture { salo, config, patterns, shapes, keys }
}

fn lookup(fx: &Fixture, cache: &PlanCache, w: usize) -> (Arc<CompiledPlan>, bool) {
    cache
        .get_or_compile(fx.keys[w], &fx.patterns[w], &fx.config, || {
            fx.salo.compile(&fx.patterns[w], &fx.shapes[w])
        })
        .expect("compile succeeds")
}

proptest! {
    #[test]
    fn sequential_mix_accounting(
        mix in prop::collection::vec(0usize..4, 4..48),
        capacity in 1usize..6,
        shards in 1usize..4,
    ) {
        let fx = fixture();
        let cache = PlanCache::new(capacity, shards);
        for &w in &mix {
            let (plan, _hit) = lookup(&fx, &cache, w);
            prop_assert_eq!(plan.shape.seq_len, WORKLOADS[w].0);
            prop_assert_eq!(plan.plan.n(), WORKLOADS[w].0);
        }
        let stats = cache.stats();
        // Every lookup is exactly one hit or one miss.
        prop_assert_eq!(stats.hits + stats.misses, mix.len() as u64);
        // Sequentially, every miss is one insert; evictions balance.
        prop_assert_eq!(stats.evictions, stats.misses - stats.entries as u64);
        // The cache never exceeds its (shard-rounded) capacity.
        let bound = shards * capacity.div_ceil(shards);
        prop_assert!(stats.entries <= bound, "{} entries > bound {}", stats.entries, bound);
    }

    #[test]
    fn concurrent_mix_accounting(
        mix in prop::collection::vec(0usize..4, 4..24),
        threads in 2usize..5,
    ) {
        let fx = fixture();
        // Per-shard capacity (16/4 = 4) covers all 4 keys even if every
        // key hashed to one shard, so no eviction can fire regardless of
        // how the fingerprints spread — the exact-entries assertions
        // below hold by construction, not by luck.
        let cache = PlanCache::new(16, 4);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for &w in &mix {
                        let (plan, _hit) = lookup(&fx, &cache, w);
                        // Plain asserts: a panic inside a scoped thread
                        // fails the test case.
                        assert_eq!(plan.shape.seq_len, WORKLOADS[w].0);
                        assert_eq!(plan.plan.n(), WORKLOADS[w].0);
                    }
                });
            }
        });
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, (threads * mix.len()) as u64);
        let distinct = {
            let mut seen = mix.clone();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        };
        prop_assert_eq!(stats.entries, distinct, "one live entry per distinct workload");
        // Racing threads may compile the same cold key more than once,
        // but never fewer times than there are distinct keys.
        prop_assert!(stats.misses >= distinct as u64);
        prop_assert_eq!(stats.evictions, 0);
        // After the race settles, all threads see one canonical plan.
        for &w in &mix {
            let (a, hit) = lookup(&fx, &cache, w);
            prop_assert!(hit);
            let (b, _) = lookup(&fx, &cache, w);
            prop_assert!(Arc::ptr_eq(&a, &b), "stable cached handle");
        }
    }
}
