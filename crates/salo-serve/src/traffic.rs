//! Closed-loop traffic generation over the paper's model workloads.
//!
//! A [`TrafficMix`] cycles deterministically through a set of
//! [`Workload`]s (Longformer / ViL / BERT layers from `salo-models`),
//! producing [`ServeRequest`]s with seeded Q/K/V inputs. Because every
//! request of a given workload shares the same pattern/shape/accelerator
//! triple, a mix of `k` workloads exercises exactly `k` plan-cache
//! entries — the steady-state hit rate approaches `1 - k/requests`.

use salo_kernels::{Matrix, Qkv};
use salo_models::{bert_base, bigbird_layer, longformer_layer, vil_stage_layer, Workload};
use salo_patterns::HybridPattern;

use crate::session::{SessionRequest, TokenQkv};
use crate::{ServeError, ServeRequest};

/// A deterministic round-robin generator over model workloads.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    workloads: Vec<Workload>,
}

impl TrafficMix {
    /// Builds a mix from explicit workloads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an empty mix.
    pub fn new(workloads: Vec<Workload>) -> Result<Self, ServeError> {
        if workloads.is_empty() {
            return Err(ServeError::InvalidRequest { reason: "empty traffic mix".into() });
        }
        Ok(Self { workloads })
    }

    /// A scaled-down Longformer + ViL + BERT mix sized for demos and
    /// tests: the same three model families as the paper's Table 2, at
    /// sequence lengths that execute in milliseconds on the functional
    /// simulator.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    #[must_use]
    pub fn demo_mix() -> Self {
        Self {
            workloads: vec![
                longformer_layer(256, 32, 64, 1).expect("valid parameters"),
                vil_stage_layer(16, 16, 5, 5, 64, 1).expect("valid parameters"),
                bert_base(64).expect("valid parameters"),
            ],
        }
    }

    /// A scaled-down mix with a BigBird layer in rotation: its seeded
    /// random-block residual exercises the scheduler's gather passes
    /// through the serving runtime, alongside a plain Longformer layer
    /// sharing the same sequence length.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    #[must_use]
    pub fn bigbird_mix() -> Self {
        Self {
            workloads: vec![
                bigbird_layer(128, 16, 2, 1, 7, 64).expect("valid parameters"),
                longformer_layer(128, 16, 64, 1).expect("valid parameters"),
            ],
        }
    }

    /// The paper's full Table 2 workloads (Longformer-Base-4096, ViL
    /// stages 1–2). Heavyweight: one request is a full long-sequence
    /// layer; use for throughput studies, not unit tests.
    #[must_use]
    pub fn paper_mix() -> Self {
        Self {
            workloads: vec![
                salo_models::longformer_base_4096(),
                salo_models::vil_stage1(),
                salo_models::vil_stage2(),
            ],
        }
    }

    /// The underlying workloads, in rotation order.
    #[must_use]
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of distinct workloads (= distinct compiled plans).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the mix is empty (never true for constructed mixes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// The `i`-th request of the closed loop: workload `i % len`, with
    /// inputs seeded by `i` (deterministic across runs and servers).
    #[must_use]
    pub fn request(&self, i: u64) -> ServeRequest {
        let workload = &self.workloads[(i % self.workloads.len() as u64) as usize];
        ServeRequest::from_workload(workload, i)
    }
}

/// One generation scenario: the pattern over the session's full capacity,
/// the head shape, and how the capacity splits into prompt and generated
/// tokens.
#[derive(Debug, Clone)]
pub struct GenerationShape {
    /// The hybrid pattern (causally clipped by the runtime at open).
    pub pattern: HybridPattern,
    /// Head dimension.
    pub head_dim: usize,
    /// Number of heads.
    pub num_heads: usize,
    /// Prompt length (must cover every global token).
    pub prompt_len: usize,
}

impl GenerationShape {
    /// Tokens a session of this shape generates (`capacity - prompt`) —
    /// zero when a hand-built shape's prompt exceeds its capacity (the
    /// fields are public; only [`GenerationTraffic::new`] validates).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.pattern.n().saturating_sub(self.prompt_len)
    }
}

/// A deterministic generator of decode-session traffic: chat/generation
/// workloads cycling over a set of [`GenerationShape`]s, each session
/// carrying seeded prompt and token inputs.
///
/// Sessions of the same shape share one causal pattern/shape triple, so a
/// mix of `k` shapes exercises exactly `k` plan-cache entries and every
/// later session opens on a cache hit — the compiled plan amortizes
/// across whole generations.
#[derive(Debug, Clone)]
pub struct GenerationTraffic {
    shapes: Vec<GenerationShape>,
}

impl GenerationTraffic {
    /// Builds a mix from explicit shapes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an empty mix or a shape
    /// whose prompt does not cover its globals (or leaves no steps).
    pub fn new(shapes: Vec<GenerationShape>) -> Result<Self, ServeError> {
        if shapes.is_empty() {
            return Err(ServeError::InvalidRequest { reason: "empty generation mix".into() });
        }
        for (i, s) in shapes.iter().enumerate() {
            let view = s
                .pattern
                .decode_view()
                .map_err(|e| ServeError::InvalidRequest { reason: format!("shape {i}: {e}") })?;
            if s.prompt_len < view.min_step() || s.prompt_len >= s.pattern.n() {
                return Err(ServeError::InvalidRequest {
                    reason: format!(
                        "shape {i}: prompt of {} rows must cover the globals \
                         (min {}) and leave room to generate (capacity {})",
                        s.prompt_len,
                        view.min_step(),
                        s.pattern.n()
                    ),
                });
            }
        }
        Ok(Self { shapes })
    }

    /// A scaled-down chat-generation mix: causal sliding windows with an
    /// attention-sink global token (the Salca/MiniCPM-style serving
    /// shape), at lengths that decode in milliseconds on the functional
    /// simulator.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    #[must_use]
    pub fn demo_mix() -> Self {
        let sink_window = |n: usize, w: usize| {
            HybridPattern::builder(n)
                .window(salo_patterns::Window::causal(w).expect("valid window"))
                .global_token(0)
                .build()
                .expect("valid pattern")
        };
        Self::new(vec![
            GenerationShape {
                pattern: sink_window(96, 24),
                head_dim: 32,
                num_heads: 2,
                prompt_len: 16,
            },
            GenerationShape {
                pattern: sink_window(64, 16),
                head_dim: 16,
                num_heads: 1,
                prompt_len: 8,
            },
        ])
        .expect("valid mix")
    }

    /// The shapes, in rotation order.
    #[must_use]
    pub fn shapes(&self) -> &[GenerationShape] {
        &self.shapes
    }

    /// Number of distinct shapes (= distinct compiled plans).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the mix is empty (never true for constructed mixes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The `i`-th session of the closed loop: shape `i % len`, with the
    /// whole sequence (prompt rows plus every generated token) seeded by
    /// `i`. Returns the open request and the per-step token stream.
    #[must_use]
    pub fn session(&self, i: u64) -> (SessionRequest, Vec<Vec<TokenQkv>>) {
        self.session_bounded(i, usize::MAX)
    }

    /// Like [`session`](Self::session) but materializes only the rows the
    /// caller will actually feed: the prompt plus the first `max_steps`
    /// generated tokens. The seeded generator is a row-major prefix
    /// stream, so the result is bit-identical to truncating
    /// [`session`](Self::session)'s step list — at `O(prompt + max_steps)`
    /// cost instead of `O(capacity)`, which is the difference between
    /// benching ten thousand 32k-context sessions and allocating their
    /// full token streams up front.
    #[must_use]
    pub fn session_bounded(
        &self,
        i: u64,
        max_steps: usize,
    ) -> (SessionRequest, Vec<Vec<TokenQkv>>) {
        let shape = &self.shapes[(i % self.shapes.len() as u64) as usize];
        let n = shape.pattern.n().min(shape.prompt_len.saturating_add(max_steps));
        let full: Vec<Qkv> = (0..shape.num_heads)
            .map(|h| Qkv::random(n, shape.head_dim, i.wrapping_mul(131).wrapping_add(h as u64)))
            .collect();
        let prompt = full
            .iter()
            .map(|qkv| {
                let rows = |m: &Matrix<f32>| {
                    Matrix::from_fn(shape.prompt_len, shape.head_dim, |r, c| m.get(r, c))
                };
                Qkv::new(rows(&qkv.q), rows(&qkv.k), rows(&qkv.v)).expect("consistent prompt")
            })
            .collect();
        let steps = (shape.prompt_len..n)
            .map(|t| full.iter().map(|qkv| TokenQkv::from_row(qkv, t)).collect())
            .collect();
        let request = SessionRequest {
            pattern: shape.pattern.clone(),
            head_dim: shape.head_dim,
            num_heads: shape.num_heads,
            prompt,
        };
        (request, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mix_rejected() {
        assert!(matches!(TrafficMix::new(Vec::new()), Err(ServeError::InvalidRequest { .. })));
    }

    #[test]
    fn demo_mix_rotates_and_is_deterministic() {
        let mix = TrafficMix::demo_mix();
        assert_eq!(mix.len(), 3);
        assert!(!mix.is_empty());
        let a = mix.request(0);
        let b = mix.request(3);
        assert_eq!(a.shape, b.shape, "same workload every len() steps");
        assert_ne!(a.heads[0].q, b.heads[0].q, "different seeds, different data");
        let a2 = mix.request(0);
        assert_eq!(a.heads[0].q, a2.heads[0].q, "same index, same data");
    }

    #[test]
    fn demo_mix_requests_validate() {
        let mix = TrafficMix::demo_mix();
        for i in 0..3 {
            let r = mix.request(i);
            assert!(ServeRequest::new(r.pattern, r.shape, r.heads).is_ok());
        }
    }

    #[test]
    fn bigbird_mix_requests_validate() {
        let mix = TrafficMix::bigbird_mix();
        assert_eq!(mix.len(), 2);
        assert!(
            !mix.workloads()[0].pattern.residual().is_empty(),
            "the BigBird workload carries a random-block residual"
        );
        for i in 0..2 {
            let r = mix.request(i);
            assert!(ServeRequest::new(r.pattern, r.shape, r.heads).is_ok());
        }
    }

    #[test]
    fn generation_mix_sessions_validate_and_are_deterministic() {
        let mix = GenerationTraffic::demo_mix();
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
        for i in 0..2u64 {
            let shape = &mix.shapes()[i as usize];
            let (request, steps) = mix.session(i);
            assert!(request.validate().is_ok(), "session {i} must validate");
            assert_eq!(steps.len(), shape.steps());
            assert_eq!(steps[0].len(), shape.num_heads);
            assert_eq!(steps[0][0].q.len(), shape.head_dim);
        }
        // Same index, same data; shape repeats every len() sessions with
        // fresh data.
        let (a, sa) = mix.session(0);
        let (a2, sa2) = mix.session(0);
        assert_eq!(a.prompt[0].q, a2.prompt[0].q);
        assert_eq!(sa[0], sa2[0]);
        let (b, _) = mix.session(2);
        assert_eq!(a.pattern, b.pattern, "same shape every len() sessions");
        assert_ne!(a.prompt[0].q, b.prompt[0].q, "different seeds");
    }

    #[test]
    fn bounded_session_is_a_prefix_of_the_full_session() {
        let mix = GenerationTraffic::demo_mix();
        for i in 0..2u64 {
            let (full_req, full_steps) = mix.session(i);
            let (bounded_req, bounded_steps) = mix.session_bounded(i, 3);
            assert_eq!(bounded_req.prompt[0].q, full_req.prompt[0].q, "same prompt rows");
            assert_eq!(bounded_req.pattern, full_req.pattern, "full-capacity pattern");
            assert_eq!(bounded_steps.len(), 3);
            assert_eq!(bounded_steps[..], full_steps[..3], "bit-identical step prefix");
        }
        // Asking for more steps than the capacity holds just yields them all.
        let (_, all) = mix.session_bounded(0, usize::MAX);
        assert_eq!(all.len(), mix.shapes()[0].steps());
    }

    #[test]
    fn generation_mix_rejects_uncovered_prompts() {
        let pattern = HybridPattern::builder(16)
            .window(salo_patterns::Window::causal(4).unwrap())
            .global_token(5)
            .build()
            .unwrap();
        // Prompt of 2 rows does not cover global token 5.
        let bad = GenerationTraffic::new(vec![GenerationShape {
            pattern: pattern.clone(),
            head_dim: 4,
            num_heads: 1,
            prompt_len: 2,
        }]);
        assert!(matches!(bad, Err(ServeError::InvalidRequest { .. })));
        // Prompt filling the whole capacity leaves nothing to generate.
        let full = GenerationTraffic::new(vec![GenerationShape {
            pattern,
            head_dim: 4,
            num_heads: 1,
            prompt_len: 16,
        }]);
        assert!(matches!(full, Err(ServeError::InvalidRequest { .. })));
        assert!(matches!(
            GenerationTraffic::new(Vec::new()),
            Err(ServeError::InvalidRequest { .. })
        ));
    }
}
