//! Closed-loop traffic generation over the paper's model workloads.
//!
//! A [`TrafficMix`] cycles deterministically through a set of
//! [`Workload`]s (Longformer / ViL / BERT layers from `salo-models`),
//! producing [`ServeRequest`]s with seeded Q/K/V inputs. Because every
//! request of a given workload shares the same pattern/shape/accelerator
//! triple, a mix of `k` workloads exercises exactly `k` plan-cache
//! entries — the steady-state hit rate approaches `1 - k/requests`.

use salo_models::{bert_base, longformer_layer, vil_stage_layer, Workload};

use crate::{ServeError, ServeRequest};

/// A deterministic round-robin generator over model workloads.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    workloads: Vec<Workload>,
}

impl TrafficMix {
    /// Builds a mix from explicit workloads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an empty mix.
    pub fn new(workloads: Vec<Workload>) -> Result<Self, ServeError> {
        if workloads.is_empty() {
            return Err(ServeError::InvalidRequest { reason: "empty traffic mix".into() });
        }
        Ok(Self { workloads })
    }

    /// A scaled-down Longformer + ViL + BERT mix sized for demos and
    /// tests: the same three model families as the paper's Table 2, at
    /// sequence lengths that execute in milliseconds on the functional
    /// simulator.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    #[must_use]
    pub fn demo_mix() -> Self {
        Self {
            workloads: vec![
                longformer_layer(256, 32, 64, 1).expect("valid parameters"),
                vil_stage_layer(16, 16, 5, 5, 64, 1).expect("valid parameters"),
                bert_base(64).expect("valid parameters"),
            ],
        }
    }

    /// The paper's full Table 2 workloads (Longformer-Base-4096, ViL
    /// stages 1–2). Heavyweight: one request is a full long-sequence
    /// layer; use for throughput studies, not unit tests.
    #[must_use]
    pub fn paper_mix() -> Self {
        Self {
            workloads: vec![
                salo_models::longformer_base_4096(),
                salo_models::vil_stage1(),
                salo_models::vil_stage2(),
            ],
        }
    }

    /// The underlying workloads, in rotation order.
    #[must_use]
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of distinct workloads (= distinct compiled plans).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the mix is empty (never true for constructed mixes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// The `i`-th request of the closed loop: workload `i % len`, with
    /// inputs seeded by `i` (deterministic across runs and servers).
    #[must_use]
    pub fn request(&self, i: u64) -> ServeRequest {
        let workload = &self.workloads[(i % self.workloads.len() as u64) as usize];
        ServeRequest::from_workload(workload, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mix_rejected() {
        assert!(matches!(TrafficMix::new(Vec::new()), Err(ServeError::InvalidRequest { .. })));
    }

    #[test]
    fn demo_mix_rotates_and_is_deterministic() {
        let mix = TrafficMix::demo_mix();
        assert_eq!(mix.len(), 3);
        assert!(!mix.is_empty());
        let a = mix.request(0);
        let b = mix.request(3);
        assert_eq!(a.shape, b.shape, "same workload every len() steps");
        assert_ne!(a.heads[0].q, b.heads[0].q, "different seeds, different data");
        let a2 = mix.request(0);
        assert_eq!(a.heads[0].q, a2.heads[0].q, "same index, same data");
    }

    #[test]
    fn demo_mix_requests_validate() {
        let mix = TrafficMix::demo_mix();
        for i in 0..3 {
            let r = mix.request(i);
            assert!(ServeRequest::new(r.pattern, r.shape, r.heads).is_ok());
        }
    }
}
