//! The concurrent serving runtime: dispatcher, worker pool, collector.
//!
//! ```text
//!             submit()                 ingress channel
//!   client ─────────────────────────────────────────────▶ dispatcher
//!                                                        │  plan cache
//!                                                        │  batcher
//!                                              batches   ▼
//!                                   ┌──────────┬──────────┬──────────┐
//!                                   │ worker 0 │ worker 1 │ worker N │   (one Salo each)
//!                                   └────┬─────┴────┬─────┴────┬─────┘
//!                                        └──────────┼──────────┘
//!                                                   ▼ completion channel
//!   client ◀──────────────────────────────────── collector (reorders by id,
//!             recv(), in submission order          accumulates metrics)
//! ```
//!
//! The dispatcher resolves each request's [`PlanKey`] against the shared
//! [`PlanCache`] (a hit skips the scheduler pass entirely), groups
//! compatible requests into same-plan batches, and ships each batch to the
//! least-loaded worker. The collector restores submission order — the
//! *ordered response channel* — and aggregates the session metrics
//! reported by [`SaloServer::shutdown`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use salo_core::Salo;
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::AcceleratorConfig;

use crate::batch::{Batcher, InFlight};
use crate::metrics::{DepthGauge, LatencyRecorder, ServeReport};
use crate::worker::{Completed, WorkerPool};
use crate::{CacheStats, PlanCache, PlanKey, ServeError, ServeRequest, ServeResponse};

/// Tunables of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Number of worker threads, each modeling one accelerator instance.
    pub workers: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Total compiled plans the cache may hold.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self { workers: 4, max_batch: 8, cache_capacity: 64, cache_shards: 8 }
    }
}

/// A request travelling from `submit` to the dispatcher.
struct Submission {
    id: u64,
    pattern: HybridPattern,
    shape: AttentionShape,
    heads: Vec<salo_kernels::Qkv>,
    submitted: Instant,
}

/// What the collector learned over the session.
#[derive(Debug, Default)]
struct CollectorSummary {
    requests: u64,
    errors: u64,
    latencies: LatencyRecorder,
    per_worker: Vec<u64>,
    sim_cycles: u64,
    sim_energy_j: f64,
    first_submit: Option<Instant>,
    last_finish: Option<Instant>,
}

/// A running SALO serving instance.
///
/// Submit requests with [`submit`](Self::submit); read responses — in
/// submission order — with [`recv`](Self::recv); end the session with
/// [`shutdown`](Self::shutdown), which drains in-flight work, joins every
/// thread and returns the aggregate [`ServeReport`].
pub struct SaloServer {
    config: AcceleratorConfig,
    ingress: Option<Sender<Submission>>,
    ordered: Mutex<Receiver<ServeResponse>>,
    cache: Arc<PlanCache>,
    depth: Arc<DepthGauge>,
    next_id: AtomicU64,
    batches: Arc<AtomicU64>,
    batched_requests: Arc<AtomicU64>,
    summary: Arc<Mutex<Option<CollectorSummary>>>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for SaloServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaloServer")
            .field("workers", &self.workers)
            .field("queue_depth", &self.depth.current())
            .field("cache", &self.cache)
            .finish()
    }
}

impl SaloServer {
    /// Starts the runtime: one dispatcher, `options.workers` workers (each
    /// owning a [`Salo`] built from `config`), and one collector.
    #[must_use]
    pub fn start(config: AcceleratorConfig, options: ServeOptions) -> Self {
        let workers = options.workers.max(1);
        let cache = Arc::new(PlanCache::new(options.cache_capacity, options.cache_shards));
        let depth = Arc::new(DepthGauge::new());
        let batches = Arc::new(AtomicU64::new(0));
        let batched_requests = Arc::new(AtomicU64::new(0));
        let summary = Arc::new(Mutex::new(None));

        let (ingress_tx, ingress_rx) = std::sync::mpsc::channel::<Submission>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Completed>();
        let (ordered_tx, ordered_rx) = std::sync::mpsc::channel::<ServeResponse>();

        let compiler = Salo::new(config.clone());
        let pool = WorkerPool::spawn(workers, &compiler, &done_tx);

        let mut threads = Vec::with_capacity(2);
        {
            let cache = Arc::clone(&cache);
            let batches = Arc::clone(&batches);
            let batched_requests = Arc::clone(&batched_requests);
            let max_batch = options.max_batch;
            threads.push(
                std::thread::Builder::new()
                    .name("salo-serve-dispatcher".into())
                    .spawn(move || {
                        dispatcher_loop(
                            &ingress_rx,
                            &compiler,
                            &cache,
                            pool,
                            max_batch,
                            &batches,
                            &batched_requests,
                            &done_tx,
                        );
                    })
                    .expect("spawn dispatcher thread"),
            );
        }
        {
            let depth = Arc::clone(&depth);
            let summary = Arc::clone(&summary);
            threads.push(
                std::thread::Builder::new()
                    .name("salo-serve-collector".into())
                    .spawn(move || collector_loop(&done_rx, &ordered_tx, &depth, workers, &summary))
                    .expect("spawn collector thread"),
            );
        }

        Self {
            config,
            ingress: Some(ingress_tx),
            ordered: Mutex::new(ordered_rx),
            cache,
            depth,
            next_id: AtomicU64::new(0),
            batches,
            batched_requests,
            summary,
            threads,
            workers,
        }
    }

    /// Starts the runtime with default options.
    #[must_use]
    pub fn with_defaults(config: AcceleratorConfig) -> Self {
        Self::start(config, ServeOptions::default())
    }

    /// The accelerator configuration every worker models.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Submits a request; returns its id. Responses come back through
    /// [`recv`](Self::recv) in increasing-id order, so a client that
    /// submits `k` requests reads exactly `k` responses.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] if the request is internally
    /// inconsistent, or [`ServeError::Closed`] after shutdown.
    pub fn submit(&self, request: ServeRequest) -> Result<u64, ServeError> {
        // Re-validate: the fields are public, so the request may not have
        // come through `ServeRequest::new`.
        let request = ServeRequest::new(request.pattern, request.shape, request.heads)?;
        let ingress = self.ingress.as_ref().ok_or(ServeError::Closed)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.depth.enter();
        let submission = Submission {
            id,
            pattern: request.pattern,
            shape: request.shape,
            heads: request.heads,
            submitted: Instant::now(),
        };
        if ingress.send(submission).is_err() {
            self.depth.exit();
            return Err(ServeError::Closed);
        }
        Ok(id)
    }

    /// Blocks for the next in-order response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] once the runtime has shut down and
    /// every response has been delivered.
    pub fn recv(&self) -> Result<ServeResponse, ServeError> {
        self.ordered
            .lock()
            .expect("response receiver poisoned")
            .recv()
            .map_err(|_| ServeError::Closed)
    }

    /// Non-blocking variant of [`recv`](Self::recv): `None` when no
    /// response is ready yet — including when another thread currently
    /// holds the response channel inside a blocking [`recv`](Self::recv)
    /// (this method never waits on that reader).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] once the runtime has shut down and
    /// every response has been delivered.
    pub fn try_recv(&self) -> Result<Option<ServeResponse>, ServeError> {
        let Ok(ordered) = self.ordered.try_lock() else {
            return Ok(None); // a blocking reader owns the channel
        };
        match ordered.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Requests currently in flight (submitted, not yet completed).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.depth.current()
    }

    /// Snapshot of the plan cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Stops accepting requests, drains all in-flight work, joins every
    /// thread and returns the session report. Responses not yet read via
    /// [`recv`](Self::recv) are discarded.
    #[must_use]
    pub fn shutdown(mut self) -> ServeReport {
        self.ingress.take(); // closes ingress: dispatcher → workers → collector wind down
        for handle in self.threads.drain(..) {
            handle.join().expect("serving thread panicked");
        }
        let summary = self.summary.lock().expect("summary poisoned").take().unwrap_or_default();
        let wall_s = match (summary.first_submit, summary.last_finish) {
            (Some(a), Some(b)) => b.duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        ServeReport {
            requests: summary.requests,
            errors: summary.errors,
            wall_s,
            throughput_rps: if wall_s > 0.0 { summary.requests as f64 / wall_s } else { 0.0 },
            latency: summary.latencies.stats(),
            cache: self.cache.stats(),
            batches,
            mean_batch_size: if batches > 0 { batched as f64 / batches as f64 } else { 0.0 },
            max_queue_depth: self.depth.high_water(),
            sim_cycles: summary.sim_cycles,
            sim_energy_j: summary.sim_energy_j,
            per_worker_requests: summary.per_worker,
        }
    }
}

/// Dispatcher thread body.
///
/// Plan compilation for cache misses runs inline here, on the single
/// dispatcher thread: the cache stays single-writer and a cold key is
/// compiled exactly once. The tradeoff is that one cold-key scheduler
/// pass (~0.4–1.6 ms at paper scale, see `bench_serving`) delays the
/// dispatch of queued cache-hit requests behind it; workloads mixing
/// many novel patterns with hot traffic would want compile shipped to
/// the workers instead.
#[allow(clippy::too_many_arguments)] // internal thread body, not public API
fn dispatcher_loop(
    ingress: &Receiver<Submission>,
    compiler: &Salo,
    cache: &PlanCache,
    mut pool: WorkerPool,
    max_batch: usize,
    batches: &AtomicU64,
    batched_requests: &AtomicU64,
    done: &Sender<Completed>,
) {
    let mut batcher = Batcher::new(max_batch);
    let dispatch = |batch: crate::batch::Batch| {
        let size = batch.len() as u64;
        match pool.dispatch(batch) {
            Ok(()) => {
                batches.fetch_add(1, Ordering::Relaxed);
                batched_requests.fetch_add(size, Ordering::Relaxed);
            }
            // The routed worker's thread is gone: fail every member
            // request so clients see an error instead of hanging on a
            // response that will never come.
            Err(batch) => {
                for req in batch.requests {
                    let failed = Completed {
                        id: req.id,
                        result: Err(ServeError::WorkerLost),
                        cache_hit: req.cache_hit,
                        worker: None,
                        batch_size: 0,
                        submitted: req.submitted,
                        finished: Instant::now(),
                    };
                    let _ = done.send(failed);
                }
            }
        }
    };
    // The accelerator configuration is fixed for the server's lifetime;
    // fingerprint it once instead of on every dispatched request.
    let config_fp = compiler.config().fingerprint();
    // Bound on the opportunistic drain between flushes: under sustained
    // open-loop traffic the submission queue may never run empty, and
    // without this bound an under-filled bucket (and, through ordered
    // delivery, every later response) could be held back indefinitely.
    let drain_limit = pool.workers() * max_batch.max(1);
    while let Ok(first) = ingress.recv() {
        let mut next = Some(first);
        let mut drained = 0usize;
        while let Some(sub) = next.take() {
            let key =
                PlanKey { pattern_fp: sub.pattern.fingerprint(), shape: sub.shape, config_fp };
            match cache.get_or_compile(key, &sub.pattern, compiler.config(), || {
                compiler.compile(&sub.pattern, &sub.shape)
            }) {
                Ok((plan, cache_hit)) => {
                    let inflight = InFlight {
                        id: sub.id,
                        heads: sub.heads,
                        submitted: sub.submitted,
                        cache_hit,
                    };
                    if let Some(batch) = batcher.push(key, &plan, inflight) {
                        dispatch(batch);
                    }
                }
                Err(e) => {
                    let failed = Completed {
                        id: sub.id,
                        result: Err(e.into()),
                        cache_hit: false,
                        worker: None,
                        batch_size: 0,
                        submitted: sub.submitted,
                        finished: Instant::now(),
                    };
                    if done.send(failed).is_err() {
                        return;
                    }
                }
            }
            // Opportunistic batching: drain whatever has queued up while
            // we were compiling, then flush (no timer, so an idle queue
            // never delays a lone request; the drain bound guarantees a
            // flush at least every `drain_limit` submissions).
            drained += 1;
            next = if drained < drain_limit { ingress.try_recv().ok() } else { None };
        }
        for batch in batcher.flush() {
            dispatch(batch);
        }
    }
    for batch in batcher.flush() {
        dispatch(batch);
    }
    debug_assert_eq!(batcher.pending(), 0, "every accepted request is dispatched");
    pool.close();
    for handle in pool.handles.drain(..) {
        handle.join().expect("worker thread panicked");
    }
}

fn collector_loop(
    done: &Receiver<Completed>,
    ordered: &Sender<ServeResponse>,
    depth: &DepthGauge,
    workers: usize,
    out: &Mutex<Option<CollectorSummary>>,
) {
    let mut summary = CollectorSummary { per_worker: vec![0; workers], ..Default::default() };
    let mut pending: BTreeMap<u64, ServeResponse> = BTreeMap::new();
    let mut next_id = 0u64;
    while let Ok(completed) = done.recv() {
        depth.exit();
        let latency_s = completed.finished.duration_since(completed.submitted).as_secs_f64();
        summary.requests += 1;
        summary.latencies.record(latency_s);
        match &completed.result {
            Ok(run) => {
                summary.sim_cycles +=
                    run.heads.iter().map(|h| h.report.timing.cycles.total).sum::<u64>();
                summary.sim_energy_j += run.total_energy_j;
            }
            Err(_) => summary.errors += 1,
        }
        if let Some(w) = completed.worker {
            summary.per_worker[w] += 1;
        }
        summary.first_submit = match summary.first_submit {
            Some(t) => Some(t.min(completed.submitted)),
            None => Some(completed.submitted),
        };
        summary.last_finish = match summary.last_finish {
            Some(t) => Some(t.max(completed.finished)),
            None => Some(completed.finished),
        };
        pending.insert(
            completed.id,
            ServeResponse {
                id: completed.id,
                result: completed.result,
                cache_hit: completed.cache_hit,
                worker: completed.worker,
                batch_size: completed.batch_size,
                latency_s,
            },
        );
        while let Some(response) = pending.remove(&next_id) {
            next_id += 1;
            // The client may have stopped reading; metrics still count.
            let _ = ordered.send(response);
        }
    }
    *out.lock().expect("summary poisoned") = Some(summary);
}
