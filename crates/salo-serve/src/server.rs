//! The concurrent serving runtime: dispatcher, worker pool, collector.
//!
//! ```text
//!             submit() / open_session() / step_session()    ingress channel
//!   client ─────────────────────────────────────────────▶ dispatcher
//!                                                        │  plan cache
//!                                                        │  batcher
//!                                                        │  session table (session -> pinned worker)
//!                                              batches   ▼  + session work
//!                                   ┌──────────┬──────────┬──────────┐
//!                                   │ worker 0 │ worker 1 │ worker N │   (one Salo each,
//!                                   └────┬─────┴────┬─────┴────┬─────┘    pinned session states)
//!                                        └──────────┼──────────┘
//!                                                   ▼ completion channel
//!   client ◀──────────────────────────────────── collector (reorders by id,
//!             recv(), in submission order          accumulates metrics)
//!   client ◀───── per-session event channels (step outputs, in generation order)
//! ```
//!
//! The dispatcher resolves each layer request's [`PlanKey`] against the
//! shared [`PlanCache`] (a hit skips the scheduler pass entirely), groups
//! compatible requests into same-plan batches, and ships each batch to the
//! least-loaded worker. Decode sessions are pinned at open time: the
//! session table maps each session id to its worker, and every step routes
//! there, so the session's persistent K/V state never moves or locks.
//! Layer responses return through the ordered collector; step outputs
//! return on per-session channels (a generation is ordered by
//! construction).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use salo_core::{AttentionRequest, PatternHandle, Salo};
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::AcceleratorConfig;
use salo_trace::MetricsRegistry;

use crate::batch::{Batcher, InFlight};
use crate::metrics::{DepthGauge, LatencyRecorder, ServeReport, TenantCounters};
use crate::session::{
    DecodeSessionHandle, SessionEvent, SessionRegistry, SessionRequest, SessionTable, TokenQkv,
};
use crate::worker::{Completed, Job, LayerDone, Reply, WorkerPool};
use crate::{CacheStats, PlanCache, PlanKey, ServeError, ServeRequest, ServeResponse};

/// Tunables of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Number of worker threads, each modeling one accelerator instance.
    pub workers: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Total compiled plans the cache may hold.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Prefill shard count inside each worker's engine (`0` inherits the
    /// `SALO_PARALLELISM` environment default, `1` is sequential).
    /// Bit-transparent: only wall-clock changes, never outputs.
    pub worker_parallelism: usize,
    /// Rows per K/V page in each worker's decode page pool (`None`
    /// inherits the engine default, `SALO_KV_PAGE_ROWS` included).
    /// Bit-transparent: paging changes memory residency, never outputs.
    pub decode_page_rows: Option<usize>,
    /// Capacity bound, in pages, of each worker's decode page pool
    /// (`None` is unbounded). A full pool refuses further allocations
    /// cleanly: the step fails with `PagePoolExhausted`, the session
    /// stays live, and the refusal is counted in
    /// [`ServeReport::decode_pool_exhausted`].
    pub decode_pool_pages: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            max_batch: 8,
            cache_capacity: 64,
            cache_shards: 8,
            worker_parallelism: 0,
            decode_page_rows: None,
            decode_pool_pages: None,
        }
    }
}

/// A layer request travelling from `submit` to the dispatcher.
struct Submission {
    id: u64,
    pattern: HybridPattern,
    shape: AttentionShape,
    heads: Vec<salo_kernels::Qkv>,
    submitted: Instant,
}

/// Everything that can enter the dispatcher.
enum Ingress {
    /// A one-shot attention-layer request.
    Layer(Submission),
    /// Open a decode session.
    Open(OpenSubmission),
    /// One decode step of an open session.
    Step(StepSubmission),
    /// Close a session and drop its pinned state.
    Close { session: u64 },
}

struct OpenSubmission {
    session: u64,
    request: SessionRequest,
    /// The request pattern's causal clip, built once during front-end
    /// validation (clipping again in the dispatcher would duplicate the
    /// work on every open).
    causal: HybridPattern,
    submitted: Instant,
    events: Sender<SessionEvent>,
}

struct StepSubmission {
    session: u64,
    token: Vec<TokenQkv>,
    submitted: Instant,
}

/// What the collector learned over the session.
///
/// The counters here are mirrored into the server's [`MetricsRegistry`]
/// as they accumulate (`serve.requests`, `serve.errors`,
/// `serve.latency_ns`, ...); [`SaloServer::shutdown`] rebuilds the
/// [`ServeReport`] from those registry metrics, with the recorders
/// supplying the exact small-count quantiles the histograms cannot.
#[derive(Debug, Default)]
struct CollectorSummary {
    latencies: LatencyRecorder,
    per_worker: Vec<u64>,
    sim_cycles: u64,
    sim_energy_j: f64,
    decode_latencies: LatencyRecorder,
    first_submit: Option<Instant>,
    last_finish: Option<Instant>,
}

/// A running SALO serving instance.
///
/// Submit layer requests with [`submit`](Self::submit); read responses —
/// in submission order — with [`recv`](Self::recv). Open decode sessions
/// with [`open_session`](Self::open_session), drive them with
/// [`step_session`](Self::step_session) (results arrive on the session's
/// own event channel), and end the runtime with
/// [`shutdown`](Self::shutdown), which drains in-flight work, joins every
/// thread and returns the aggregate [`ServeReport`].
pub struct SaloServer {
    config: AcceleratorConfig,
    ingress: Option<Sender<Ingress>>,
    ordered: Mutex<Receiver<ServeResponse>>,
    cache: Arc<PlanCache>,
    depth: Arc<DepthGauge>,
    next_id: AtomicU64,
    next_session: AtomicU64,
    sessions: Arc<SessionRegistry>,
    batches: Arc<AtomicU64>,
    batched_requests: Arc<AtomicU64>,
    summary: Arc<Mutex<Option<CollectorSummary>>>,
    metrics: Arc<MetricsRegistry>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    /// One-way flag set by [`drain`](Self::drain): new submissions, opens
    /// and steps are refused with [`ServeError::Draining`] while in-flight
    /// work finishes and sessions close out.
    draining: AtomicBool,
}

impl std::fmt::Debug for SaloServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaloServer")
            .field("workers", &self.workers)
            .field("queue_depth", &self.depth.current())
            .field("sessions", &self.active_sessions())
            .field("cache", &self.cache)
            .finish()
    }
}

impl SaloServer {
    /// Starts the runtime: one dispatcher, `options.workers` workers (each
    /// owning a [`Salo`] built from `config`), and one collector.
    #[must_use]
    pub fn start(config: AcceleratorConfig, options: ServeOptions) -> Self {
        let workers = options.workers.max(1);
        let cache = Arc::new(PlanCache::new(options.cache_capacity, options.cache_shards));
        let depth = Arc::new(DepthGauge::new());
        let batches = Arc::new(AtomicU64::new(0));
        let batched_requests = Arc::new(AtomicU64::new(0));
        let summary = Arc::new(Mutex::new(None));
        let sessions = Arc::new(SessionRegistry::new());
        let metrics = Arc::new(MetricsRegistry::new());

        let (ingress_tx, ingress_rx) = std::sync::mpsc::channel::<Ingress>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Completed>();
        let (ordered_tx, ordered_rx) = std::sync::mpsc::channel::<ServeResponse>();

        let compiler = Salo::new(config.clone());
        let pool = WorkerPool::spawn(
            workers,
            options.worker_parallelism,
            options.decode_page_rows,
            options.decode_pool_pages,
            &compiler,
            &done_tx,
            &sessions,
            &metrics,
        );

        let mut threads = Vec::with_capacity(2);
        {
            let cache = Arc::clone(&cache);
            let batches = Arc::clone(&batches);
            let batched_requests = Arc::clone(&batched_requests);
            let registry = Arc::clone(&sessions);
            let max_batch = options.max_batch;
            threads.push(
                std::thread::Builder::new()
                    .name("salo-serve-dispatcher".into())
                    .spawn(move || {
                        // The accelerator configuration is fixed for the
                        // server's lifetime; fingerprint it once instead
                        // of per request.
                        let config_fp = compiler.config().fingerprint();
                        Dispatcher {
                            compiler: &compiler,
                            cache: &cache,
                            pool,
                            batcher: Batcher::new(max_batch),
                            batches: &batches,
                            batched_requests: &batched_requests,
                            done: &done_tx,
                            table: SessionTable::new(),
                            registry: &registry,
                            config_fp,
                        }
                        .run(&ingress_rx);
                    })
                    .expect("spawn dispatcher thread"),
            );
        }
        {
            let depth = Arc::clone(&depth);
            let summary = Arc::clone(&summary);
            let metrics = Arc::clone(&metrics);
            threads.push(
                std::thread::Builder::new()
                    .name("salo-serve-collector".into())
                    .spawn(move || {
                        collector_loop(&done_rx, &ordered_tx, &depth, workers, &summary, &metrics);
                    })
                    .expect("spawn collector thread"),
            );
        }

        Self {
            config,
            ingress: Some(ingress_tx),
            ordered: Mutex::new(ordered_rx),
            cache,
            depth,
            next_id: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            sessions,
            batches,
            batched_requests,
            summary,
            metrics,
            threads,
            workers,
            draining: AtomicBool::new(false),
        }
    }

    /// Starts the runtime with default options.
    #[must_use]
    pub fn with_defaults(config: AcceleratorConfig) -> Self {
        Self::start(config, ServeOptions::default())
    }

    /// The accelerator configuration every worker models.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The tenant untenanted entry points ([`submit`](Self::submit),
    /// [`open_session`](Self::open_session)) account their work under.
    pub const DEFAULT_TENANT: u64 = 0;

    /// Submits a layer request; returns its id. Responses come back
    /// through [`recv`](Self::recv) in increasing-id order, so a client
    /// that submits `k` requests reads exactly `k` responses. Accounted
    /// under [`DEFAULT_TENANT`](Self::DEFAULT_TENANT).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] if the request is internally
    /// inconsistent, [`ServeError::Draining`] while a
    /// [`drain`](Self::drain) is in progress, or [`ServeError::Closed`]
    /// after shutdown.
    pub fn submit(&self, request: ServeRequest) -> Result<u64, ServeError> {
        self.submit_for(Self::DEFAULT_TENANT, request)
    }

    /// [`submit`](Self::submit) on behalf of a tenant: the request counts
    /// toward `tenant`'s entry in [`ServeReport::tenants`] (and the live
    /// `serve.tenant.{id}.requests` counter). Multi-tenant front ends —
    /// the gateway — thread the wire-header tenant id through here.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_for(&self, tenant: u64, request: ServeRequest) -> Result<u64, ServeError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        // Re-validate: the fields are public, so the request may not have
        // come through `ServeRequest::new`.
        let request = ServeRequest::new(request.pattern, request.shape, request.heads)?;
        let ingress = self.ingress.as_ref().ok_or(ServeError::Closed)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let _span = salo_trace::span_with("serve.admission", "serve", id);
        self.metrics.counter(&format!("serve.tenant.{tenant}.requests")).inc();
        self.depth.enter();
        let submission = Submission {
            id,
            pattern: request.pattern,
            shape: request.shape,
            heads: request.heads,
            submitted: Instant::now(),
        };
        if ingress.send(Ingress::Layer(submission)).is_err() {
            self.depth.exit();
            return Err(ServeError::Closed);
        }
        Ok(id)
    }

    /// Opens a streaming decode session: the pattern is causally clipped
    /// and compiled (through the shared plan cache — one compiled plan
    /// amortizes across every generation of the same pattern/shape), the
    /// session is pinned to the least-loaded worker, and the prompt is
    /// ingested there. The returned handle's event channel delivers the
    /// open handshake ([`SessionEvent::Opened`]) followed by one
    /// [`SessionEvent::Step`] per [`step_session`](Self::step_session)
    /// call, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] on an inconsistent request
    /// (prompt not covering the globals, head mismatches), or
    /// [`ServeError::Closed`] after shutdown. Compile failures arrive
    /// asynchronously in the `Opened` event and deregister the session:
    /// once [`wait_open`](DecodeSessionHandle::wait_open) has reported
    /// the failure, the id is gone and further calls on it return
    /// [`ServeError::UnknownSession`]. Accounted under
    /// [`DEFAULT_TENANT`](Self::DEFAULT_TENANT).
    pub fn open_session(&self, request: SessionRequest) -> Result<DecodeSessionHandle, ServeError> {
        self.open_session_for(Self::DEFAULT_TENANT, request)
    }

    /// [`open_session`](Self::open_session) on behalf of a tenant: the
    /// open counts toward `tenant`'s [`ServeReport::tenants`] entry, and
    /// every accepted step of the session counts toward its
    /// `decode_steps`.
    ///
    /// # Errors
    ///
    /// As [`open_session`](Self::open_session), plus
    /// [`ServeError::Draining`] while a [`drain`](Self::drain) is in
    /// progress.
    pub fn open_session_for(
        &self,
        tenant: u64,
        request: SessionRequest,
    ) -> Result<DecodeSessionHandle, ServeError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        let causal = request.validated_view()?.into_causal_pattern();
        let ingress = self.ingress.as_ref().ok_or(ServeError::Closed)?;
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        let _span = salo_trace::span_with("serve.session_open", "serve", session);
        self.metrics.counter(&format!("serve.tenant.{tenant}.requests")).inc();
        let (events_tx, events_rx) = std::sync::mpsc::channel();
        self.depth.enter();
        // Register before submitting: an asynchronous open failure
        // deregisters the id, and that removal must not race ahead of
        // the insert (a late insert would leak the dead session).
        self.sessions.insert(session, tenant);
        let submission = OpenSubmission {
            session,
            request,
            causal,
            submitted: Instant::now(),
            events: events_tx,
        };
        if ingress.send(Ingress::Open(submission)).is_err() {
            self.sessions.remove(session);
            self.depth.exit();
            return Err(ServeError::Closed);
        }
        Ok(DecodeSessionHandle { id: session, events: events_rx })
    }

    /// Submits one decode step: `token` carries the new position's
    /// `(q, k, v)` rows for every head. The result arrives on the
    /// session handle's event channel.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for a session this server
    /// never opened — or that is no longer live: closed, dropped by a
    /// poisoning step failure, or failed to open. Returns
    /// [`ServeError::Closed`] after shutdown. Execution failures arrive
    /// in the step event and poison the session.
    pub fn step_session(&self, session: u64, token: Vec<TokenQkv>) -> Result<(), ServeError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        let Some(tenant) = self.sessions.tenant_of(session) else {
            return Err(ServeError::UnknownSession { session });
        };
        let ingress = self.ingress.as_ref().ok_or(ServeError::Closed)?;
        let _span = salo_trace::span_with("serve.session_step", "serve", session);
        self.metrics.counter(&format!("serve.tenant.{tenant}.decode_steps")).inc();
        self.depth.enter();
        let submission = StepSubmission { session, token, submitted: Instant::now() };
        if ingress.send(Ingress::Step(submission)).is_err() {
            self.depth.exit();
            return Err(ServeError::Closed);
        }
        Ok(())
    }

    /// Closes a decode session, dropping its pinned state. The session's
    /// channel receives a final [`SessionEvent::Closed`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] if the session is not live
    /// — never opened, already closed, or already retired by a failure
    /// (a poisoned session counts as closed; its channel received the
    /// [`SessionEvent::Closed`] at poison time). Returns
    /// [`ServeError::Closed`] after shutdown.
    pub fn close_session(&self, session: u64) -> Result<(), ServeError> {
        if !self.sessions.remove(session) {
            return Err(ServeError::UnknownSession { session });
        }
        let ingress = self.ingress.as_ref().ok_or(ServeError::Closed)?;
        ingress.send(Ingress::Close { session }).map_err(|_| ServeError::Closed)
    }

    /// Number of live sessions: opened and not yet closed — explicitly,
    /// by a poisoning step failure, or by a failed open.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Blocks for the next in-order layer response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] once the runtime has shut down and
    /// every response has been delivered.
    pub fn recv(&self) -> Result<ServeResponse, ServeError> {
        self.ordered
            .lock()
            .expect("response receiver poisoned")
            .recv()
            .map_err(|_| ServeError::Closed)
    }

    /// Non-blocking variant of [`recv`](Self::recv): `None` when no
    /// response is ready yet — including when another thread currently
    /// holds the response channel inside a blocking [`recv`](Self::recv)
    /// (this method never waits on that reader).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] once the runtime has shut down and
    /// every response has been delivered.
    pub fn try_recv(&self) -> Result<Option<ServeResponse>, ServeError> {
        let Ok(ordered) = self.ordered.try_lock() else {
            return Ok(None); // a blocking reader owns the channel
        };
        match ordered.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Requests currently in flight (submitted, not yet completed),
    /// decode opens and steps included.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.depth.current()
    }

    /// Snapshot of the plan cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// This server's metrics registry: named counters, gauges and
    /// mergeable log-bucket histograms the collector maintains as
    /// completions stream in (`serve.requests`, `serve.latency_ns`,
    /// `serve.decode.steps`, ...). Per-server — two instances in one
    /// process never mix counts. Export it any time with
    /// [`MetricsRegistry::export_table`] or
    /// [`MetricsRegistry::export_json`]; [`shutdown`](Self::shutdown)
    /// rebuilds the [`ServeReport`] counters from it.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Records one admission rejection on behalf of `tenant`. Rejected
    /// work never enters the runtime, so the front door (the gateway's
    /// bounded queues) reports it here; the count lands in the tenant's
    /// [`ServeReport::tenants`] entry and the live
    /// `serve.tenant.{id}.rejections` counter.
    pub fn record_tenant_rejection(&self, tenant: u64) {
        self.metrics.counter(&format!("serve.tenant.{tenant}.rejections")).inc();
    }

    /// Whether [`drain`](Self::drain) has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Gracefully drains the runtime: refuses new work, closes every
    /// registered decode session with a terminal
    /// [`SessionEvent::Closed`], and waits — up to `deadline` — for all
    /// in-flight work to complete. Returns `true` when the runtime
    /// drained fully within the deadline.
    ///
    /// After a drain, [`submit`](Self::submit),
    /// [`open_session`](Self::open_session) and
    /// [`step_session`](Self::step_session) report
    /// [`ServeError::Draining`]; [`close_session`](Self::close_session)
    /// and response/event reads keep working so clients can collect what
    /// already completed. Draining is one-way: the runtime's remaining
    /// useful call is [`shutdown`](Self::shutdown), which produces the
    /// final report (drain-then-shutdown is the graceful path; `shutdown`
    /// alone drops session channels without terminal events).
    pub fn drain(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        let _span = salo_trace::span_with("serve.drain", "serve", 0);
        self.draining.store(true, Ordering::Release);
        // Close every live session: each gets its terminal Closed event
        // through the normal close path (remove from the registry first,
        // exactly like close_session, so a concurrent close cannot
        // double-send Ingress::Close).
        if let Some(ingress) = self.ingress.as_ref() {
            for session in self.sessions.live_ids() {
                if self.sessions.remove(session) {
                    let _ = ingress.send(Ingress::Close { session });
                }
            }
        }
        while start.elapsed() < deadline {
            if self.depth.current() == 0 && self.sessions.len() == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.depth.current() == 0 && self.sessions.len() == 0
    }

    /// Stops accepting requests, drains all in-flight work, joins every
    /// thread and returns the session report. Responses not yet read via
    /// [`recv`](Self::recv) are discarded; open decode sessions are
    /// dropped with their channels.
    #[must_use]
    pub fn shutdown(mut self) -> ServeReport {
        self.ingress.take(); // closes ingress: dispatcher → workers → collector wind down
        for handle in self.threads.drain(..) {
            handle.join().expect("serving thread panicked");
        }
        let summary = self.summary.lock().expect("summary poisoned").take().unwrap_or_default();
        let wall_s = match (summary.first_submit, summary.last_finish) {
            (Some(a), Some(b)) => b.duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        // Fold the dispatcher-side tallies into the registry, then build
        // the report's counters *from* the registry — the collector has
        // been mirroring its completion counts there all along, so the
        // registry is the single source the report is rebuilt on. The
        // recorders contribute the latency summaries (exact order
        // statistics at small counts, histogram quantiles beyond) and
        // their histograms ride on the report for bucket-exact merges.
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        self.metrics.counter("serve.batches").add(batches);
        self.metrics.counter("serve.batched_requests").add(batched);
        self.metrics.gauge("serve.queue_depth.high_water").set(self.depth.high_water() as i64);
        let requests = self.metrics.counter("serve.requests").get();
        // The per-tenant counters are dynamically named
        // (`serve.tenant.{id}.{field}`); recover the family by prefix and
        // fold it into the report's map.
        let mut tenants: BTreeMap<u64, TenantCounters> = BTreeMap::new();
        for (name, value) in self.metrics.counters_with_prefix("serve.tenant.") {
            let rest = &name["serve.tenant.".len()..];
            let Some((id, field)) = rest.split_once('.') else { continue };
            let Ok(id) = id.parse::<u64>() else { continue };
            let entry = tenants.entry(id).or_default();
            match field {
                "requests" => entry.requests = value,
                "rejections" => entry.rejections = value,
                "decode_steps" => entry.decode_steps = value,
                _ => {}
            }
        }
        ServeReport {
            requests,
            errors: self.metrics.counter("serve.errors").get(),
            wall_s,
            throughput_rps: if wall_s > 0.0 { requests as f64 / wall_s } else { 0.0 },
            latency: summary.latencies.stats(),
            latency_hist: summary.latencies.histogram().clone(),
            cache: self.cache.stats(),
            batches,
            mean_batch_size: if batches > 0 { batched as f64 / batches as f64 } else { 0.0 },
            max_queue_depth: self.depth.high_water(),
            sim_cycles: summary.sim_cycles,
            sim_energy_j: summary.sim_energy_j,
            per_worker_requests: summary.per_worker,
            decode_sessions: self.metrics.counter("serve.decode.sessions").get(),
            decode_session_errors: self.metrics.counter("serve.decode.session_errors").get(),
            decode_steps: self.metrics.counter("serve.decode.steps").get(),
            decode_step_errors: self.metrics.counter("serve.decode.step_errors").get(),
            decode_step_latency: summary.decode_latencies.stats(),
            decode_step_latency_hist: summary.decode_latencies.histogram().clone(),
            decode_resident_kv_byte_steps: self
                .metrics
                .counter("serve.decode.resident_kv_byte_steps")
                .get(),
            decode_peak_resident_pages: self
                .metrics
                .gauge("serve.decode.resident_pages")
                .high_water()
                .max(0) as u64,
            decode_peak_pool_pages: self
                .metrics
                .gauge("serve.decode.pool_pages")
                .high_water()
                .max(0) as u64,
            decode_page_reclaims: self.metrics.counter("serve.decode.page_reclaims").get(),
            decode_pool_exhausted: self.metrics.counter("serve.decode.pool_exhausted").get(),
            tenants,
        }
    }
}

/// Dispatcher thread state.
///
/// Plan compilation for cache misses runs inline here, on the single
/// dispatcher thread: the cache stays single-writer and a cold key is
/// compiled exactly once. The tradeoff is that one cold-key scheduler
/// pass (~0.4–1.6 ms at paper scale, see `bench_serving`) delays the
/// dispatch of queued cache-hit requests behind it; workloads mixing
/// many novel patterns with hot traffic would want compile shipped to
/// the workers instead.
struct Dispatcher<'a> {
    compiler: &'a Salo,
    cache: &'a PlanCache,
    pool: WorkerPool,
    batcher: Batcher,
    batches: &'a AtomicU64,
    batched_requests: &'a AtomicU64,
    done: &'a Sender<Completed>,
    table: SessionTable,
    registry: &'a SessionRegistry,
    config_fp: u64,
}

impl Dispatcher<'_> {
    fn run(mut self, ingress: &Receiver<Ingress>) {
        // Bound on the opportunistic drain between flushes: under
        // sustained open-loop traffic the submission queue may never run
        // empty, and without this bound an under-filled bucket (and,
        // through ordered delivery, every later response) could be held
        // back indefinitely.
        let drain_limit = self.pool.workers() * self.batcher.max_batch();
        while let Ok(first) = ingress.recv() {
            self.reap_retired();
            let mut next = Some(first);
            let mut drained = 0usize;
            while let Some(msg) = next.take() {
                match msg {
                    Ingress::Layer(sub) => self.handle_layer(sub),
                    Ingress::Open(open) => self.handle_open(open),
                    Ingress::Step(step) => self.handle_step(step),
                    Ingress::Close { session } => self.handle_close(session),
                }
                drained += 1;
                next = if drained < drain_limit { ingress.try_recv().ok() } else { None };
            }
            for batch in self.batcher.flush() {
                self.dispatch_batch(batch);
            }
        }
        for batch in self.batcher.flush() {
            self.dispatch_batch(batch);
        }
        debug_assert_eq!(self.batcher.pending(), 0, "every accepted request is dispatched");
        self.pool.close();
        for handle in self.pool.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }

    fn dispatch_batch(&mut self, batch: crate::batch::Batch) {
        let size = batch.len() as u64;
        let batch_size = batch.len();
        let _span = salo_trace::span_with("serve.batch_dispatch", "serve", size);
        // Mint one typed request per member; the pattern/plan pair is one
        // `Arc` clone each.
        let jobs: Vec<Job> = batch
            .requests
            .into_iter()
            .map(|req| Job {
                request: AttentionRequest::Prefill {
                    pattern: PatternHandle::new(
                        Arc::clone(&batch.pattern),
                        Arc::clone(&batch.plan),
                    ),
                    shape: batch.shape,
                    heads: req.heads,
                },
                reply: Reply::Layer {
                    id: req.id,
                    cache_hit: req.cache_hit,
                    batch_size,
                    submitted: req.submitted,
                },
            })
            .collect();
        match self.pool.dispatch(jobs) {
            Ok(()) => {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched_requests.fetch_add(size, Ordering::Relaxed);
            }
            // The routed worker's thread is gone: fail every member
            // request so clients see an error instead of hanging on a
            // response that will never come.
            Err(jobs) => {
                for job in jobs {
                    let Reply::Layer { id, cache_hit, submitted, .. } = job.reply else {
                        unreachable!("batches carry only layer replies");
                    };
                    let failed = Completed::Layer(LayerDone {
                        id,
                        result: Err(ServeError::WorkerLost),
                        cache_hit,
                        worker: None,
                        batch_size: 0,
                        submitted,
                        finished: Instant::now(),
                    });
                    let _ = self.done.send(failed);
                }
            }
        }
    }

    fn handle_layer(&mut self, sub: Submission) {
        let key = PlanKey {
            pattern_fp: sub.pattern.fingerprint(),
            shape: sub.shape,
            config_fp: self.config_fp,
        };
        let lookup = salo_trace::span_with("serve.plan_lookup", "serve", sub.id);
        let compiled = self.cache.get_or_compile(key, &sub.pattern, self.compiler.config(), || {
            self.compiler.compile(&sub.pattern, &sub.shape)
        });
        drop(lookup);
        match compiled {
            Ok((plan, cache_hit)) => {
                let _form = salo_trace::span_with("serve.batch_form", "serve", sub.id);
                let pattern = Arc::new(sub.pattern);
                let inflight =
                    InFlight { id: sub.id, heads: sub.heads, submitted: sub.submitted, cache_hit };
                if let Some(batch) = self.batcher.push(key, &pattern, &plan, sub.shape, inflight) {
                    self.dispatch_batch(batch);
                }
            }
            Err(e) => {
                let failed = Completed::Layer(LayerDone {
                    id: sub.id,
                    result: Err(e.into()),
                    cache_hit: false,
                    worker: None,
                    batch_size: 0,
                    submitted: sub.submitted,
                    finished: Instant::now(),
                });
                let _ = self.done.send(failed);
            }
        }
    }

    fn handle_open(&mut self, open: OpenSubmission) {
        let OpenSubmission { session, request, causal, submitted, events } = open;
        // Decode sessions compile the *causal* clip of the pattern (built
        // once at validation); its fingerprint keys the cache, so every
        // generation of the same pattern reuses one compiled plan. The
        // compiled program depends only on the pattern and the hardware —
        // per-head K/V state and row dimensions live in the session — so
        // the key uses a canonical single-head, unit-dim shape: sessions
        // differing only in head count or head dimension share one entry
        // instead of double-caching identical programs.
        let shape = match AttentionShape::new(causal.n(), 1, 1) {
            Ok(s) => s,
            Err(e) => {
                let reason = format!("shape: {e}");
                return self.fail_open(
                    session,
                    &events,
                    submitted,
                    ServeError::InvalidRequest { reason },
                );
            }
        };
        let key = PlanKey { pattern_fp: causal.fingerprint(), shape, config_fp: self.config_fp };
        match self.cache.get_or_compile(key, &causal, self.compiler.config(), || {
            self.compiler.compile(&causal, &shape)
        }) {
            Ok((plan, cache_hit)) => {
                let worker = self.place_session();
                let job = Job {
                    request: AttentionRequest::DecodeOpen {
                        session,
                        pattern: PatternHandle::new(Arc::new(causal), plan),
                        head_dim: request.head_dim,
                        num_heads: request.num_heads,
                        prompt: request.prompt,
                    },
                    reply: Reply::Open { session, cache_hit, submitted, events: events.clone() },
                };
                match self.pool.dispatch_to(worker, job) {
                    Ok(()) => self.table.insert(session, worker, events),
                    Err(_) => self.fail_open(session, &events, submitted, ServeError::WorkerLost),
                }
            }
            Err(e) => self.fail_open(session, &events, submitted, e.into()),
        }
    }

    /// Picks the worker a new session is pinned to. Sessions are
    /// long-lived, so the primary signal is how many live sessions each
    /// worker already hosts; transient queue depth only breaks ties
    /// (alone it would be 0 everywhere whenever the queues are idle and
    /// pin every session to worker 0).
    fn place_session(&mut self) -> usize {
        self.reap_retired();
        let pinned = self.table.pinned_per_worker(self.pool.workers());
        (0..self.pool.workers()).min_by_key(|&w| (pinned[w], self.pool.load_of(w), w)).unwrap_or(0)
    }

    /// Drops the routes of sessions the workers have retired (poisoning
    /// step failures, failed opens). Their clients never send another
    /// message for them — `step_session`/`close_session` already report
    /// `UnknownSession` — so without this sweep the routes would leak
    /// until shutdown.
    fn reap_retired(&mut self) {
        for session in self.registry.drain_retired() {
            self.table.remove(session);
        }
    }

    fn fail_open(
        &mut self,
        session: u64,
        events: &Sender<SessionEvent>,
        submitted: Instant,
        error: ServeError,
    ) {
        // Deregister before reporting: once the client has observed the
        // failed handshake, the id is guaranteed gone (steps report
        // `UnknownSession`, `active_sessions` does not count it).
        self.registry.remove(session);
        let _ = events.send(SessionEvent::Opened { session, result: Err(error) });
        let _ = self.done.send(Completed::SessionOpened {
            ok: false,
            submitted,
            finished: Instant::now(),
        });
    }

    fn handle_step(&mut self, step: StepSubmission) {
        let Some(route) = self.table.get(step.session) else {
            // Closed (or retired) by the time the step arrived — a benign
            // race, not an execution failure. The depth gauge still needs
            // its exit, but the step must not pollute the decode metrics.
            let _ = self.done.send(Completed::StepDropped);
            return;
        };
        // No liveness check here beyond the route: the registry is the
        // *front-end* gate, and consulting it now would let a
        // `close_session` issued after this step was accepted fail the
        // step retroactively (the removal happens on the caller thread,
        // ahead of the queued `Ingress::Close`). A step that still has a
        // route executes; if its session was meanwhile retired
        // worker-side, the worker reports `UnknownSession` on the job's
        // own event channel.
        let job = Job {
            request: AttentionRequest::DecodeStep { session: step.session, token: step.token },
            reply: Reply::Step {
                session: step.session,
                submitted: step.submitted,
                events: route.events.clone(),
            },
        };
        if self.pool.dispatch_to(route.worker, job).is_err() {
            // The pinned worker's thread is gone, taking the session
            // state with it: retire the session outright (registry and
            // route), so further steps report `UnknownSession` instead of
            // `WorkerLost` forever — and deliver the terminal Closed
            // event here, since no worker ever will.
            let route = self.table.remove(step.session).expect("route was just read");
            self.registry.remove(step.session);
            let _ = route.events.send(SessionEvent::Step {
                session: step.session,
                result: Err(ServeError::WorkerLost),
                latency_s: step.submitted.elapsed().as_secs_f64(),
            });
            // Position unknown — the state died with the worker.
            let _ =
                route.events.send(SessionEvent::Closed { session: step.session, position: None });
            let _ = self.done.send(Completed::Step {
                ok: false,
                submitted: step.submitted,
                finished: Instant::now(),
            });
        }
    }

    fn handle_close(&mut self, session: u64) {
        if let Some(route) = self.table.remove(session) {
            let job = Job {
                request: AttentionRequest::DecodeClose { session },
                reply: Reply::Close { session, events: route.events.clone() },
            };
            if self.pool.dispatch_to(route.worker, job).is_err() {
                // The pinned worker died with the session state; it can
                // never send the terminal Closed event, so deliver it
                // here (position unknown) rather than leave the client
                // blocking for it.
                let _ = route.events.send(SessionEvent::Closed { session, position: None });
            }
        }
    }
}

fn collector_loop(
    done: &Receiver<Completed>,
    ordered: &Sender<ServeResponse>,
    depth: &DepthGauge,
    workers: usize,
    out: &Mutex<Option<CollectorSummary>>,
    metrics: &MetricsRegistry,
) {
    fn span(submitted: Instant, finished: Instant, summary: &mut CollectorSummary) {
        summary.first_submit = Some(summary.first_submit.map_or(submitted, |t| t.min(submitted)));
        summary.last_finish = Some(summary.last_finish.map_or(finished, |t| t.max(finished)));
    }
    // Fetch the registry handles once; every completion then updates them
    // lock-free. These counters/histograms are what `shutdown` rebuilds
    // the `ServeReport` from.
    let requests_c = metrics.counter("serve.requests");
    let errors_c = metrics.counter("serve.errors");
    let latency_h = metrics.histogram("serve.latency_ns");
    let sessions_c = metrics.counter("serve.decode.sessions");
    let session_errors_c = metrics.counter("serve.decode.session_errors");
    let steps_c = metrics.counter("serve.decode.steps");
    let step_errors_c = metrics.counter("serve.decode.step_errors");
    let step_latency_h = metrics.histogram("serve.decode.step_latency_ns");
    let mut summary = CollectorSummary { per_worker: vec![0; workers], ..Default::default() };
    let mut pending: BTreeMap<u64, ServeResponse> = BTreeMap::new();
    let mut next_id = 0u64;
    while let Ok(completed) = done.recv() {
        depth.exit();
        match completed {
            Completed::Layer(layer) => {
                let latency_s = layer.finished.duration_since(layer.submitted).as_secs_f64();
                requests_c.inc();
                latency_h.record_secs(latency_s);
                summary.latencies.record(latency_s);
                match &layer.result {
                    Ok(run) => {
                        summary.sim_cycles +=
                            run.heads.iter().map(|h| h.report.timing.cycles.total).sum::<u64>();
                        summary.sim_energy_j += run.total_energy_j;
                    }
                    Err(_) => errors_c.inc(),
                }
                if let Some(w) = layer.worker {
                    summary.per_worker[w] += 1;
                }
                span(layer.submitted, layer.finished, &mut summary);
                pending.insert(
                    layer.id,
                    ServeResponse {
                        id: layer.id,
                        result: layer.result,
                        cache_hit: layer.cache_hit,
                        worker: layer.worker,
                        batch_size: layer.batch_size,
                        latency_s,
                    },
                );
                while let Some(response) = pending.remove(&next_id) {
                    next_id += 1;
                    // The client may have stopped reading; metrics still
                    // count.
                    let _ = ordered.send(response);
                }
            }
            Completed::SessionOpened { ok, submitted, finished } => {
                sessions_c.inc();
                if !ok {
                    session_errors_c.inc();
                }
                // Opens pay the compile + prompt ingest; their span counts
                // toward the report's wall clock like any other work.
                span(submitted, finished, &mut summary);
            }
            Completed::Step { ok, submitted, finished } => {
                steps_c.inc();
                if !ok {
                    step_errors_c.inc();
                }
                let step_s = finished.duration_since(submitted).as_secs_f64();
                step_latency_h.record_secs(step_s);
                summary.decode_latencies.record(step_s);
                span(submitted, finished, &mut summary);
            }
            // A benign close/step race: the step never executed, so it
            // contributes nothing to the decode counters or latencies
            // (only the depth-gauge exit above).
            Completed::StepDropped => {}
        }
    }
    *out.lock().expect("summary poisoned") = Some(summary);
}
