//! The compiled-plan cache.
//!
//! SALO's premise is that one compiled dataflow is reused across an entire
//! inference workload: the scheduler's splitting/reordering pass depends
//! only on the pattern and the array geometry, never on the Q/K/V data.
//! The serving runtime therefore caches [`CompiledPlan`]s keyed by
//! [`PlanKey`] — `(pattern fingerprint, shape, accelerator fingerprint)` —
//! so repeated requests skip the scheduler pass entirely.
//!
//! The cache is sharded: each shard is an independently locked map, so
//! concurrent lookups on different shards never contend. Eviction is
//! least-recently-used per shard, driven by a global monotone tick.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use salo_core::CompiledPlan;
use salo_patterns::{AttentionShape, HybridPattern};
use salo_sim::AcceleratorConfig;

/// The cache key of a compiled plan.
///
/// Two requests share a compiled plan when they use the same pattern
/// (structural [`HybridPattern::fingerprint`]), the same [`AttentionShape`]
/// and the same accelerator instance
/// ([`AcceleratorConfig::fingerprint`]). The fingerprints are 64-bit
/// non-cryptographic hashes, so the cache additionally verifies the
/// actual pattern and configuration on every hit — a fingerprint
/// collision degrades to a miss (recompile), never to serving a plan
/// compiled for different inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Stable structural fingerprint of the pattern.
    pub pattern_fp: u64,
    /// The attention dimensions the plan is compiled for.
    pub shape: AttentionShape,
    /// Stable fingerprint of the accelerator configuration.
    pub config_fp: u64,
}

impl PlanKey {
    /// Builds the key for a `(pattern, shape, accelerator)` triple.
    #[must_use]
    pub fn new(
        pattern: &HybridPattern,
        shape: &AttentionShape,
        config: &AcceleratorConfig,
    ) -> Self {
        Self { pattern_fp: pattern.fingerprint(), shape: *shape, config_fp: config.fingerprint() }
    }
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The exact pattern the plan was compiled from, compared on every
    /// hit to rule out fingerprint collisions.
    pattern: HybridPattern,
    /// The exact configuration, compared for the same reason.
    config: AcceleratorConfig,
    plan: Arc<CompiledPlan>,
    last_used: u64,
}

impl Entry {
    fn matches(&self, pattern: &HybridPattern, config: &AcceleratorConfig) -> bool {
        self.pattern == *pattern && self.config == *config
    }
}

/// A sharded, LRU-evicting cache of compiled execution plans.
///
/// Thread safe: lookups lock only the shard the key hashes to, and the
/// scheduler pass for a miss runs *outside* the shard lock (two threads
/// racing on the same cold key may both compile; the first insert wins and
/// both observe the same semantics, since compilation is deterministic).
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<PlanKey, Entry>>>,
    shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache of `shards` independently locked shards (both
    /// arguments clamped to at least 1), each holding at most
    /// `ceil(capacity / shards)` plans.
    ///
    /// Capacity and LRU eviction are therefore *per shard*: the total
    /// bound is `shards * ceil(capacity / shards)` (slightly above
    /// `capacity` when it does not divide evenly), and a skewed key
    /// distribution can evict from a hot shard while others have room.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(shards),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<HashMap<PlanKey, Entry>> {
        // The key's fields are already hashes; fold them instead of
        // re-hashing so shard selection is stable and cheap.
        let mix = key
            .pattern_fp
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.config_fp)
            .wrapping_add(key.shape.seq_len as u64)
            .wrapping_add((key.shape.head_dim as u64) << 24)
            .wrapping_add((key.shape.num_heads as u64) << 48);
        &self.shards[(mix % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a plan, bumping its recency on a hit.
    ///
    /// A key match alone is not a hit: the stored pattern and
    /// configuration are compared to the caller's, so a 64-bit
    /// fingerprint collision reads as a miss rather than returning a
    /// plan compiled for different inputs.
    #[must_use]
    pub fn get(
        &self,
        key: &PlanKey,
        pattern: &HybridPattern,
        config: &AcceleratorConfig,
    ) -> Option<Arc<CompiledPlan>> {
        let tick = self.next_tick();
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get_mut(key) {
            Some(entry) if entry.matches(pattern, config) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a plan, evicting the shard's least-recently-used entry if
    /// the shard is full. Returns the cached handle (the existing one if
    /// another thread inserted the same inputs first; a colliding entry
    /// for *different* inputs is displaced).
    pub fn insert(
        &self,
        key: PlanKey,
        pattern: &HybridPattern,
        config: &AcceleratorConfig,
        plan: CompiledPlan,
    ) -> Arc<CompiledPlan> {
        let tick = self.next_tick();
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(entry) = shard.get_mut(&key) {
            if entry.matches(pattern, config) {
                entry.last_used = tick;
                return Arc::clone(&entry.plan);
            }
            // Fingerprint collision: the newly compiled plan replaces the
            // colliding entry (counted below as an insert, not an
            // eviction — capacity is unchanged).
        } else if shard.len() >= self.shard_capacity {
            if let Some(lru) = shard.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k) {
                shard.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let plan = Arc::new(plan);
        shard.insert(
            key,
            Entry {
                pattern: pattern.clone(),
                config: config.clone(),
                plan: Arc::clone(&plan),
                last_used: tick,
            },
        );
        plan
    }

    /// Looks up `key`, compiling and caching on a miss.
    ///
    /// Returns the plan and whether the lookup was a hit. The `compile`
    /// closure runs outside the shard lock, so a slow scheduler pass never
    /// blocks lookups of other keys in the same shard.
    ///
    /// # Errors
    ///
    /// Propagates the `compile` closure's error; nothing is cached then.
    pub fn get_or_compile<E>(
        &self,
        key: PlanKey,
        pattern: &HybridPattern,
        config: &AcceleratorConfig,
        compile: impl FnOnce() -> Result<CompiledPlan, E>,
    ) -> Result<(Arc<CompiledPlan>, bool), E> {
        if let Some(plan) = self.get(&key, pattern, config) {
            return Ok((plan, true));
        }
        let plan = compile()?;
        Ok((self.insert(key, pattern, config, plan), false))
    }

    /// Number of live entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Snapshot of the hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_core::Salo;
    use salo_patterns::sliding_only;
    use salo_scheduler::HardwareMeta;

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() }
    }

    fn compile(n: usize, w: usize) -> (PlanKey, HybridPattern, AcceleratorConfig, CompiledPlan) {
        let config = small_config();
        let salo = Salo::new(config.clone());
        let pattern = sliding_only(n, w).unwrap();
        let shape = AttentionShape::new(n, 8, 1).unwrap();
        let key = PlanKey::new(&pattern, &shape, &config);
        let plan = salo.compile(&pattern, &shape).unwrap();
        (key, pattern, config, plan)
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = PlanCache::new(8, 2);
        let (key, pattern, config, plan) = compile(32, 5);
        assert!(cache.get(&key, &pattern, &config).is_none());
        cache.insert(key, &pattern, &config, plan);
        assert!(cache.get(&key, &pattern, &config).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn get_or_compile_compiles_once() {
        let cache = PlanCache::new(8, 2);
        let (key, pattern, config, plan) = compile(32, 5);
        let mut compiles = 0;
        for round in 0..3 {
            let (cached, hit) = cache
                .get_or_compile::<()>(key, &pattern, &config, || {
                    compiles += 1;
                    Ok(plan.clone())
                })
                .unwrap();
            assert_eq!(hit, round > 0);
            assert_eq!(cached.shape.seq_len, 32);
        }
        assert_eq!(compiles, 1);
    }

    #[test]
    fn forged_key_collision_reads_as_miss_not_wrong_plan() {
        // Simulate a 64-bit fingerprint collision: same PlanKey, different
        // actual pattern. The hit-side verification must refuse the entry
        // rather than hand out a plan compiled for other inputs.
        let cache = PlanCache::new(8, 1);
        let (key, pattern, config, plan) = compile(32, 5);
        cache.insert(key, &pattern, &config, plan.clone());

        let other_pattern = sliding_only(32, 7).unwrap();
        assert!(cache.get(&key, &other_pattern, &config).is_none(), "colliding pattern must miss");
        let other_config =
            AcceleratorConfig { hw: HardwareMeta::new(4, 4, 1, 1).unwrap(), ..Default::default() };
        assert!(cache.get(&key, &pattern, &other_config).is_none(), "colliding config must miss");

        // Inserting under the colliding key displaces the old entry
        // without growing the cache.
        let salo = Salo::new(config.clone());
        let shape = AttentionShape::new(32, 8, 1).unwrap();
        let other_plan = salo.compile(&other_pattern, &shape).unwrap();
        let cached = cache.insert(key, &other_pattern, &config, other_plan);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key, &other_pattern, &config).is_some());
        assert!(cache.get(&key, &pattern, &config).is_none(), "old entry displaced");
        assert_eq!(
            cached.plan.stats().passes,
            cache.get(&key, &other_pattern, &config).unwrap().plan.stats().passes
        );
    }

    #[test]
    fn get_or_compile_recompiles_on_forged_collision() {
        // The full lookup path under a synthetic 64-bit collision: the
        // same PlanKey arrives with a *different* actual pattern. The
        // hit-side verification must treat it as a miss and recompile for
        // the caller's real inputs — never serve the colliding entry.
        let cache = PlanCache::new(8, 1);
        let (key, pattern, config, plan) = compile(32, 5);
        cache.insert(key, &pattern, &config, plan);

        let salo = Salo::new(config.clone());
        let shape = AttentionShape::new(32, 8, 1).unwrap();
        let other_pattern = sliding_only(32, 7).unwrap();
        let mut compiles = 0;
        let (served, hit) = cache
            .get_or_compile(key, &other_pattern, &config, || {
                compiles += 1;
                salo.compile(&other_pattern, &shape)
            })
            .unwrap();
        assert!(!hit, "collision must read as a miss");
        assert_eq!(compiles, 1, "the colliding pattern is recompiled");
        // The served plan is the one for the caller's pattern, not the
        // cached impostor: a 7-wide window streams more keys per row
        // than a 5-wide one.
        assert_eq!(served.plan.stats().active_cells, {
            let direct = salo.compile(&other_pattern, &shape).unwrap();
            direct.plan.stats().active_cells
        });

        // The recompile displaced the colliding entry; the original
        // pattern now misses (and would itself recompile).
        assert!(cache.get(&key, &pattern, &config).is_none());
        let (_, hit) = cache
            .get_or_compile(key, &other_pattern, &config, || salo.compile(&other_pattern, &shape))
            .unwrap();
        assert!(hit, "the caller's own inputs now hit");
        assert_eq!(cache.len(), 1, "collision displacement never grows the cache");
    }

    #[test]
    fn keys_distinguish_pattern_shape_and_config() {
        let config = small_config();
        let pattern = sliding_only(32, 5).unwrap();
        let shape = AttentionShape::new(32, 8, 1).unwrap();
        let base = PlanKey::new(&pattern, &shape, &config);

        let other_pattern = sliding_only(32, 7).unwrap();
        assert_ne!(base, PlanKey::new(&other_pattern, &shape, &config));

        let other_shape = AttentionShape::new(32, 8, 2).unwrap();
        assert_ne!(base, PlanKey::new(&pattern, &other_shape, &config));

        let other_config =
            AcceleratorConfig { hw: HardwareMeta::new(4, 4, 1, 1).unwrap(), ..Default::default() };
        assert_ne!(base, PlanKey::new(&pattern, &shape, &other_config));
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        // Single shard, capacity 2: inserting a third entry must evict the
        // least recently *used* one, not merely the oldest inserted.
        let cache = PlanCache::new(2, 1);
        let (k1, pat1, cfg, p1) = compile(16, 3);
        let (k2, pat2, _, p2) = compile(24, 3);
        let (k3, pat3, _, p3) = compile(32, 3);
        cache.insert(k1, &pat1, &cfg, p1);
        cache.insert(k2, &pat2, &cfg, p2);
        assert!(cache.get(&k1, &pat1, &cfg).is_some(), "touch k1 so k2 becomes LRU");
        cache.insert(k3, &pat3, &cfg, p3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1, &pat1, &cfg).is_some(), "recently used survives");
        assert!(cache.get(&k2, &pat2, &cfg).is_none(), "LRU entry evicted");
        assert!(cache.get(&k3, &pat3, &cfg).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4, 2);
        let (key, pattern, config, plan) = compile(16, 3);
        cache.insert(key, &pattern, &config, plan);
        let _ = cache.get(&key, &pattern, &config);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn insert_race_first_writer_wins() {
        let cache = PlanCache::new(4, 1);
        let (key, pattern, config, plan) = compile(16, 3);
        let first = cache.insert(key, &pattern, &config, plan.clone());
        let second = cache.insert(key, &pattern, &config, plan);
        assert!(Arc::ptr_eq(&first, &second), "second insert returns the cached handle");
        assert_eq!(cache.len(), 1);
    }
}
