//! A concurrent attention-serving runtime over the SALO accelerator.
//!
//! The one-shot [`Salo`](salo_core::Salo) API re-runs the scheduler's
//! splitting/reordering pass on every call and executes on a single
//! simulated accelerator. That is the wrong shape for serving: SALO's
//! premise is that one compiled hybrid-sparsity dataflow is reused across
//! an entire inference workload, and serving-oriented follow-ups (Salca,
//! SparseAccelerate) show that plan reuse and batching — not kernel speed
//! alone — dominate end-to-end throughput. This crate supplies the
//! missing runtime:
//!
//! * a **[`PlanCache`]** keyed by `(pattern fingerprint, shape,
//!   accelerator fingerprint)` — repeated requests skip the scheduler
//!   pass entirely (sharded locking, LRU eviction, hit/miss counters);
//! * a **request batcher** that groups in-flight requests sharing a
//!   compiled plan and dispatches them as multi-head batches;
//! * a **worker pool** of N threads, each owning a
//!   [`LoweredEngine`](salo_core::LoweredEngine) (N accelerator replicas)
//!   that consumes typed [`AttentionRequest`](salo_core::AttentionRequest)s
//!   directly — prefill batches and decode-session traffic travel as one
//!   request shape, so swapping the backend never requires a serve
//!   rewrite — fed by a least-loaded dispatcher, with responses restored
//!   to submission order by a collector;
//! * a **metrics layer** ([`ServeReport`]): per-request latency
//!   percentiles, queue depth, cache hit rate, decode-session counters,
//!   and aggregate *simulated* cycles/energy from the `salo-sim` timing
//!   model;
//! * **decode sessions** ([`SaloServer::open_session`] /
//!   [`SaloServer::step_session`]): whole autoregressive generations with
//!   per-session K/V state pinned to one worker, compiled causal plans
//!   shared through the cache, and step outputs delivered on per-session
//!   event channels ([`GenerationTraffic`] generates the workload).
//!
//! Batched execution is bit-identical to the one-shot API: workers run
//! each request's heads back to back through the same fixed-point
//! datapath, so a response's output equals `Salo::execute` on the same
//! inputs — asserted in the integration tests.
//!
//! # Example
//!
//! ```
//! use salo_serve::{SaloServer, ServeOptions, TrafficMix};
//! use salo_sim::AcceleratorConfig;
//!
//! # fn main() -> Result<(), salo_serve::ServeError> {
//! let server = SaloServer::start(AcceleratorConfig::default(), ServeOptions {
//!     workers: 2,
//!     ..Default::default()
//! });
//! let mix = TrafficMix::demo_mix();
//! for i in 0..6 {
//!     server.submit(mix.request(i))?;
//! }
//! for i in 0..6 {
//!     let response = server.recv()?;
//!     assert_eq!(response.id, i, "responses arrive in submission order");
//!     assert!(response.output().is_ok());
//! }
//! let report = server.shutdown();
//! assert_eq!(report.requests, 6);
//! assert!(report.cache.hit_rate() > 0.0, "3 workloads, 6 requests: hits");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod batch;
mod cache;
mod error;
mod metrics;
mod request;
mod server;
mod session;
mod traffic;
mod worker;

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use error::ServeError;
pub use metrics::{DepthGauge, LatencyRecorder, LatencyStats, ServeReport, TenantCounters};
pub use request::{ServeRequest, ServeResponse};
pub use salo_trace::{HistogramSnapshot, MetricsRegistry};
pub use server::{SaloServer, ServeOptions};
pub use session::{
    DecodeSessionHandle, DecodeStep, SessionEvent, SessionInfo, SessionRequest, TokenQkv,
};
pub use traffic::{GenerationShape, GenerationTraffic, TrafficMix};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanCache>();
        assert_send_sync::<SaloServer>();
        assert_send_sync::<ServeRequest>();
        assert_send_sync::<ServeResponse>();
        assert_send_sync::<std::sync::Arc<salo_core::CompiledPlan>>();
        assert_send_sync::<salo_core::Salo>();
    }
}
