//! Serving metrics: latency distributions, queue depth, and the aggregate
//! report printed by the closed-loop demo.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::CacheStats;

/// Latency distribution summary over a set of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (seconds).
    pub mean_s: f64,
    /// Median latency (seconds).
    pub p50_s: f64,
    /// 99th-percentile latency (seconds).
    pub p99_s: f64,
    /// Worst observed latency (seconds).
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarizes a sample set (empty input yields all zeros).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let quantile = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len() as u64,
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: quantile(0.50),
            p99_s: quantile(0.99),
            max_s: *sorted.last().expect("non-empty"),
        }
    }
}

/// Bounded-memory latency accumulator: exact count/mean/max, quantiles
/// from a uniform reservoir sample.
///
/// A serving session can complete an unbounded number of requests;
/// keeping every sample just to compute two quantiles at shutdown would
/// grow without limit. The recorder keeps a fixed-size reservoir
/// (Vitter's algorithm R with a deterministic xorshift generator — same
/// statistics every run) and exact running aggregates for everything
/// that does not need the full distribution.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    count: u64,
    sum_s: f64,
    max_s: f64,
    reservoir: Vec<f64>,
    rng: u64,
}

/// Reservoir size: quantile error at p99 is well under a millisecond-scale
/// bucket for thousands of samples.
const RESERVOIR_CAP: usize = 4096;

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, sum_s: 0.0, max_s: 0.0, reservoir: Vec::new(), rng: 0x9e37_79b9_7f4a_7c15 }
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, sample_s: f64) {
        self.count += 1;
        self.sum_s += sample_s;
        self.max_s = self.max_s.max(sample_s);
        if self.reservoir.len() < RESERVOIR_CAP {
            self.reservoir.push(sample_s);
        } else {
            // xorshift64*: cheap, deterministic, plenty uniform for
            // reservoir slot selection.
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            let slot = (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.count) as usize;
            if slot < RESERVOIR_CAP {
                self.reservoir[slot] = sample_s;
            }
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Summarizes: count/mean/max are exact, p50/p99 come from the
    /// reservoir (exact too while `count` is within the reservoir size).
    #[must_use]
    pub fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::default();
        }
        let sampled = LatencyStats::from_samples(&self.reservoir);
        LatencyStats {
            count: self.count,
            mean_s: self.sum_s / self.count as f64,
            p50_s: sampled.p50_s,
            p99_s: sampled.p99_s,
            max_s: self.max_s,
        }
    }
}

/// A high-water-mark gauge for the number of in-flight requests.
#[derive(Debug, Default)]
pub struct DepthGauge {
    current: AtomicUsize,
    high_water: AtomicUsize,
}

impl DepthGauge {
    /// Creates a gauge at depth zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request entering the system.
    pub fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Records one request leaving the system.
    pub fn exit(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Aggregate statistics for one serving session, produced by
/// [`SaloServer::shutdown`](crate::SaloServer::shutdown).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeReport {
    /// Requests completed (successfully or not).
    pub requests: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Wall-clock span from first submission to last completion (seconds).
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Submission-to-completion latency distribution.
    pub latency: LatencyStats,
    /// Plan-cache effectiveness counters.
    pub cache: CacheStats,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Deepest observed in-flight queue.
    pub max_queue_depth: usize,
    /// Total *simulated* accelerator cycles across all responses.
    pub sim_cycles: u64,
    /// Total *simulated* accelerator energy across all responses (joules).
    pub sim_energy_j: f64,
    /// Requests executed by each worker (length = pool size).
    pub per_worker_requests: Vec<u64>,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests        : {} ({} errors)", self.requests, self.errors)?;
        writeln!(f, "wall time       : {:.3} s", self.wall_s)?;
        writeln!(f, "throughput      : {:.1} req/s", self.throughput_rps)?;
        writeln!(
            f,
            "latency         : p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms",
            self.latency.p50_s * 1e3,
            self.latency.p99_s * 1e3,
            self.latency.max_s * 1e3
        )?;
        writeln!(
            f,
            "plan cache      : {:.1} % hits ({} hits / {} misses / {} evictions, {} live)",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries
        )?;
        writeln!(
            f,
            "batching        : {} batches, {:.2} req/batch, max queue depth {}",
            self.batches, self.mean_batch_size, self.max_queue_depth
        )?;
        writeln!(f, "simulated cost  : {} cycles, {:.3e} J", self.sim_cycles, self.sim_energy_j)?;
        write!(f, "per-worker load : {:?}", self.per_worker_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_s - 50.5).abs() < 1e-12);
        assert!((stats.p50_s - 50.0).abs() <= 1.0);
        assert!((stats.p99_s - 99.0).abs() <= 1.0);
        assert!((stats.max_s - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn recorder_matches_exact_stats_below_reservoir_capacity() {
        let mut rec = LatencyRecorder::new();
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &s in &samples {
            rec.record(s);
        }
        assert_eq!(rec.stats(), LatencyStats::from_samples(&samples));
        assert_eq!(rec.count(), 100);
    }

    #[test]
    fn recorder_memory_is_bounded_and_quantiles_stay_sane() {
        let mut rec = LatencyRecorder::new();
        let total = 3 * RESERVOIR_CAP as u64;
        for i in 0..total {
            rec.record(i as f64); // uniform ramp 0..total
        }
        assert!(rec.reservoir.len() <= RESERVOIR_CAP, "memory bounded");
        let stats = rec.stats();
        assert_eq!(stats.count, total);
        assert!((stats.mean_s - (total - 1) as f64 / 2.0).abs() < 1e-9, "mean exact");
        assert!((stats.max_s - (total - 1) as f64).abs() < 1e-12, "max exact");
        // Sampled quantiles of a uniform ramp land near the true values.
        assert!((stats.p50_s / (total as f64) - 0.5).abs() < 0.05, "p50 {}", stats.p50_s);
        assert!(stats.p99_s / (total as f64) > 0.9, "p99 {}", stats.p99_s);
        // Deterministic: a second identical run reproduces the stats.
        let mut again = LatencyRecorder::new();
        for i in 0..total {
            again.record(i as f64);
        }
        assert_eq!(again.stats(), stats);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = DepthGauge::new();
        g.enter();
        g.enter();
        g.exit();
        g.enter();
        g.enter();
        assert_eq!(g.current(), 3);
        assert_eq!(g.high_water(), 3);
        g.exit();
        g.exit();
        g.exit();
        assert_eq!(g.current(), 0);
        assert_eq!(g.high_water(), 3);
    }

    #[test]
    fn report_displays_all_sections() {
        let report = ServeReport {
            requests: 10,
            throughput_rps: 5.0,
            per_worker_requests: vec![5, 5],
            ..Default::default()
        };
        let text = report.to_string();
        for needle in ["requests", "throughput", "plan cache", "batching", "per-worker"] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }
}
