//! Serving metrics: latency distributions, queue depth, and the aggregate
//! report printed by the closed-loop demo.
//!
//! Latency distributions are backed by the mergeable log-bucket histogram
//! from `salo-trace`: two shards' histograms add element-wise into exactly
//! the histogram of the union of their samples, so merged quantiles are
//! bucket-exact (within one bucket width, ≤ 1/16 relative) instead of the
//! count-weighted blends of the old reservoir scheme. The blend survives
//! only as [`LatencyStats::blended_with`], the clearly-named fallback for
//! summaries that no longer carry their histograms.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use salo_trace::HistogramSnapshot;

use crate::CacheStats;

/// Latency distribution summary over a set of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (seconds).
    pub mean_s: f64,
    /// Median latency (seconds).
    pub p50_s: f64,
    /// 99th-percentile latency (seconds).
    pub p99_s: f64,
    /// Worst observed latency (seconds).
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarizes a sample set (empty input yields all zeros). Quantiles
    /// are exact order statistics of the input: the sample at rank
    /// `round((n-1) * q)` of the sorted set.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let quantile = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len() as u64,
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: quantile(0.50),
            p99_s: quantile(0.99),
            max_s: *sorted.last().expect("non-empty"),
        }
    }

    /// Summarizes a nanosecond-scale latency histogram: count/mean/max
    /// exact, p50/p99 bucket-exact (the upper bound of the rank's bucket,
    /// within one bucket width of the true order statistic).
    #[must_use]
    pub fn from_histogram(hist: &HistogramSnapshot) -> Self {
        if hist.is_empty() {
            return Self::default();
        }
        Self {
            count: hist.count,
            mean_s: hist.mean() / 1e9,
            p50_s: hist.quantile(0.50) as f64 / 1e9,
            p99_s: hist.quantile(0.99) as f64 / 1e9,
            max_s: hist.max as f64 / 1e9,
        }
    }

    /// Count-weighted *blend* of two shard summaries — the clearly-named
    /// fallback for summaries that lost their histograms. Counts add, the
    /// mean is count-weighted, the max is exact, but the quantiles are
    /// blends that can misstate the true merged quantile badly when the
    /// shards are skewed (e.g. 900 fast + 100 slow samples: the blend
    /// reports a p50 an order of magnitude above the true median). Exact
    /// merged quantiles need the distributions, not the summaries: merge
    /// the [`LatencyRecorder`]s, or the histograms a [`ServeReport`]
    /// carries ([`ServeReport::merged_with`] does exactly that and only
    /// falls back to this blend when a report was built without them).
    #[must_use]
    pub fn blended_with(&self, other: &LatencyStats) -> LatencyStats {
        let total = self.count + other.count;
        if total == 0 {
            return LatencyStats::default();
        }
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let wa = self.count as f64 / total as f64;
        let wb = other.count as f64 / total as f64;
        LatencyStats {
            count: total,
            mean_s: self.mean_s * wa + other.mean_s * wb,
            p50_s: self.p50_s * wa + other.p50_s * wb,
            p99_s: self.p99_s * wa + other.p99_s * wb,
            max_s: self.max_s.max(other.max_s),
        }
    }
}

/// Bounded-memory latency accumulator: exact count/mean/max always; exact
/// quantiles while the complete sample set fits `EXACT_CAP`, bucket-exact
/// quantiles (from an always-on log-bucket histogram) beyond it.
///
/// A serving session can complete an unbounded number of requests;
/// keeping every sample just to compute two quantiles at shutdown would
/// grow without limit. Unlike the reservoir this recorder used to carry,
/// the histogram is deterministic *and mergeable*: merging two recorders
/// yields exactly the histogram of the union of their samples, so sharded
/// quantiles never blend.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    count: u64,
    sum_s: f64,
    max_s: f64,
    /// The complete sample set while `count <= EXACT_CAP`; emptied the
    /// moment it would become partial (the histogram carries on alone).
    samples: Vec<f64>,
    /// Always-on log-bucket histogram of the samples, in nanoseconds.
    hist: HistogramSnapshot,
}

/// Exact-quantile capacity: below this many samples the recorder holds
/// them all and quantiles are exact order statistics; above it they come
/// from the histogram (within one bucket width, ≤ 1/16 relative).
const EXACT_CAP: usize = 4096;

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, sample_s: f64) {
        self.count += 1;
        self.sum_s += sample_s;
        self.max_s = self.max_s.max(sample_s);
        self.hist.record_secs(sample_s);
        if self.samples.len() + 1 == self.count as usize && self.count as usize <= EXACT_CAP {
            self.samples.push(sample_s);
        } else {
            self.samples.clear(); // no longer the complete sample set
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The recorder's log-bucket histogram (nanoseconds). Merging two
    /// shards' histograms element-wise reproduces the histogram of their
    /// union exactly — this is what [`ServeReport`] carries so post-hoc
    /// report merges stay bucket-exact.
    #[must_use]
    pub fn histogram(&self) -> &HistogramSnapshot {
        &self.hist
    }

    /// Summarizes: count/mean/max are exact. While `count <= EXACT_CAP`
    /// the recorder still holds every sample, so p50/p99 are exact order
    /// statistics (pinned by tests down to single-sample recorders);
    /// beyond that they are bucket-exact histogram quantiles.
    #[must_use]
    pub fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::default();
        }
        if self.samples.len() as u64 == self.count {
            return LatencyStats::from_samples(&self.samples);
        }
        LatencyStats {
            count: self.count,
            mean_s: self.sum_s / self.count as f64,
            p50_s: self.hist.quantile(0.50) as f64 / 1e9,
            p99_s: self.hist.quantile(0.99) as f64 / 1e9,
            max_s: self.max_s,
        }
    }

    /// Merges another recorder into this one. Count, mean and max merge
    /// exactly. Quantiles stay exact while the union of complete sample
    /// sets fits `EXACT_CAP`; beyond that the merged histogram *is* the
    /// histogram of the union (element-wise bucket addition), so a shard
    /// with 10x the traffic contributes 10x the mass — never 50/50 — and
    /// merged quantiles are bucket-exact, not blends.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if other.count == 0 {
            return;
        }
        let both_complete =
            self.samples.len() as u64 == self.count && other.samples.len() as u64 == other.count;
        if both_complete && self.samples.len() + other.samples.len() <= EXACT_CAP {
            self.samples.extend_from_slice(&other.samples);
        } else {
            self.samples.clear();
        }
        self.hist = self.hist.merged_with(&other.hist);
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.max_s = self.max_s.max(other.max_s);
    }
}

/// A high-water-mark gauge for the number of in-flight requests.
#[derive(Debug, Default)]
pub struct DepthGauge {
    current: AtomicUsize,
    high_water: AtomicUsize,
}

impl DepthGauge {
    /// Creates a gauge at depth zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request entering the system.
    pub fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Records one request leaving the system.
    pub fn exit(&self) {
        self.current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight.
    #[must_use]
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Per-tenant accounting inside a [`ServeReport`], keyed by tenant id.
///
/// All three are exact flows, so sharded reports merge them by plain
/// addition ([`ServeReport::merged_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantCounters {
    /// Layer requests and session opens this tenant had accepted.
    pub requests: u64,
    /// Requests refused at admission (queue bounds) on this tenant's
    /// behalf — recorded by the front door
    /// ([`SaloServer::record_tenant_rejection`](crate::SaloServer::record_tenant_rejection)),
    /// since rejected work never enters the runtime.
    pub rejections: u64,
    /// Decode steps accepted across this tenant's sessions.
    pub decode_steps: u64,
}

/// Aggregate statistics for one serving session, produced by
/// [`SaloServer::shutdown`](crate::SaloServer::shutdown).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeReport {
    /// Requests completed (successfully or not).
    pub requests: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Wall-clock span from first submission to last completion (seconds).
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Submission-to-completion latency distribution.
    pub latency: LatencyStats,
    /// Log-bucket histogram behind [`latency`](Self::latency)
    /// (nanoseconds). Merging two reports adds these element-wise, so
    /// merged quantiles are bucket-exact. Empty in hand-built reports —
    /// [`merged_with`](Self::merged_with) then falls back to the blend.
    pub latency_hist: HistogramSnapshot,
    /// Plan-cache effectiveness counters.
    pub cache: CacheStats,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Deepest observed in-flight queue.
    pub max_queue_depth: usize,
    /// Total *simulated* accelerator cycles across all responses.
    pub sim_cycles: u64,
    /// Total *simulated* accelerator energy across all responses (joules).
    pub sim_energy_j: f64,
    /// Requests executed by each worker (length = pool size).
    pub per_worker_requests: Vec<u64>,
    /// Decode sessions opened (successfully or not).
    pub decode_sessions: u64,
    /// Decode sessions that failed to open.
    pub decode_session_errors: u64,
    /// Decode steps accepted across all sessions (executed or failed;
    /// steps dropped by a benign close/step race are not counted).
    pub decode_steps: u64,
    /// Accepted decode steps that failed — execution errors (poisoning
    /// their session), steps reaching an already-retired session, or a
    /// dead pinned worker.
    pub decode_step_errors: u64,
    /// Submission-to-completion latency distribution of decode steps.
    pub decode_step_latency: LatencyStats,
    /// Log-bucket histogram behind
    /// [`decode_step_latency`](Self::decode_step_latency) (nanoseconds).
    pub decode_step_latency_hist: HistogramSnapshot,
    /// Sum over successful decode steps of the stepped session's resident
    /// K/V bytes at step completion. Divided by
    /// [`decode_steps`](Self::decode_steps), it is the mean resident K/V
    /// footprint a step saw — the paged-arena counterpart of
    /// "sessions x full context" bytes a contiguous layout would pin.
    pub decode_resident_kv_byte_steps: u64,
    /// Peak K/V pages resident across any single worker's page pool
    /// (sampled at every scheduler tick). Merges by `max`: it is a
    /// high-water mark, not a flow.
    pub decode_peak_resident_pages: u64,
    /// Peak page-pool occupancy (the pool's own lifetime high-water)
    /// across workers. Merges by `max`.
    pub decode_peak_pool_pages: u64,
    /// Pages proven dead by the reclamation horizon and returned to the
    /// pools mid-generation (resets and closes not counted).
    pub decode_page_reclaims: u64,
    /// Page allocations refused because a bounded pool was full. Nonzero
    /// means steps failed with `PagePoolExhausted` (cleanly — the
    /// sessions stay live and retryable).
    pub decode_pool_exhausted: u64,
    /// Per-tenant accounting, keyed by tenant id. Untenanted work counts
    /// under the default tenant
    /// ([`DEFAULT_TENANT`](crate::SaloServer::DEFAULT_TENANT) = 0).
    pub tenants: BTreeMap<u64, TenantCounters>,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests        : {} ({} errors)", self.requests, self.errors)?;
        writeln!(f, "wall time       : {:.3} s", self.wall_s)?;
        writeln!(f, "throughput      : {:.1} req/s", self.throughput_rps)?;
        writeln!(
            f,
            "latency         : p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms",
            self.latency.p50_s * 1e3,
            self.latency.p99_s * 1e3,
            self.latency.max_s * 1e3
        )?;
        writeln!(
            f,
            "plan cache      : {:.1} % hits ({} hits / {} misses / {} evictions, {} live)",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries
        )?;
        writeln!(
            f,
            "batching        : {} batches, {:.2} req/batch, max queue depth {}",
            self.batches, self.mean_batch_size, self.max_queue_depth
        )?;
        writeln!(f, "simulated cost  : {} cycles, {:.3e} J", self.sim_cycles, self.sim_energy_j)?;
        writeln!(
            f,
            "decode          : {} sessions ({} failed), {} steps ({} failed), \
             step p50 {:.3} ms | p99 {:.3} ms",
            self.decode_sessions,
            self.decode_session_errors,
            self.decode_steps,
            self.decode_step_errors,
            self.decode_step_latency.p50_s * 1e3,
            self.decode_step_latency.p99_s * 1e3
        )?;
        let mean_resident_kv = if self.decode_steps > 0 {
            self.decode_resident_kv_byte_steps as f64 / self.decode_steps as f64
        } else {
            0.0
        };
        writeln!(
            f,
            "decode kv       : mean resident {:.1} KiB/step, peak {} pages resident, \
             pool high-water {} pages, {} reclaims, {} exhaustions",
            mean_resident_kv / 1024.0,
            self.decode_peak_resident_pages,
            self.decode_peak_pool_pages,
            self.decode_page_reclaims,
            self.decode_pool_exhausted
        )?;
        if !self.tenants.is_empty() {
            write!(f, "tenants         :")?;
            for (tenant, t) in &self.tenants {
                write!(
                    f,
                    " [{}: {} req / {} rej / {} steps]",
                    tenant, t.requests, t.rejections, t.decode_steps
                )?;
            }
            writeln!(f)?;
        }
        write!(f, "per-worker load : {:?}", self.per_worker_requests)
    }
}

/// Merges two shard latency summaries, preferring the bucket-exact path:
/// when the merged histogram accounts for every sample of both summaries,
/// p50/p99 come from it (count/mean/max stay exact from the summaries);
/// otherwise — a report built by hand without histograms — falls back to
/// the count-weighted [`LatencyStats::blended_with`].
fn merge_latency(
    a: &LatencyStats,
    b: &LatencyStats,
    merged_hist: &HistogramSnapshot,
) -> LatencyStats {
    let total = a.count + b.count;
    if total == 0 || merged_hist.count != total {
        return a.blended_with(b);
    }
    LatencyStats {
        count: total,
        mean_s: (a.mean_s * a.count as f64 + b.mean_s * b.count as f64) / total as f64,
        p50_s: merged_hist.quantile(0.50) as f64 / 1e9,
        p99_s: merged_hist.quantile(0.99) as f64 / 1e9,
        max_s: a.max_s.max(b.max_s),
    }
}

impl ServeReport {
    /// Merges the report of another (sharded) serving instance into this
    /// one without double-weighting either shard: counters, cycles and
    /// energy add exactly; latency histograms add element-wise — exactly
    /// the histogram of the union — so merged p50/p99 are bucket-exact
    /// whenever both reports carry their histograms (runtime-produced
    /// reports always do; hand-built ones without histograms fall back to
    /// the count-weighted [`LatencyStats::blended_with`]). Wall time
    /// takes the longer span and throughput is recomputed from it;
    /// per-worker loads concatenate (the shards' pools are distinct
    /// accelerators).
    #[must_use]
    pub fn merged_with(&self, other: &ServeReport) -> ServeReport {
        let wall_s = self.wall_s.max(other.wall_s);
        let requests = self.requests + other.requests;
        let batches = self.batches + other.batches;
        let batched = self.batches as f64 * self.mean_batch_size
            + other.batches as f64 * other.mean_batch_size;
        let mut per_worker = self.per_worker_requests.clone();
        per_worker.extend_from_slice(&other.per_worker_requests);
        let latency_hist = self.latency_hist.merged_with(&other.latency_hist);
        let decode_step_latency_hist =
            self.decode_step_latency_hist.merged_with(&other.decode_step_latency_hist);
        // Per-tenant counters are exact flows: the merged entry for a
        // tenant served by both shards is the element-wise sum.
        let mut tenants = self.tenants.clone();
        for (&tenant, t) in &other.tenants {
            let merged = tenants.entry(tenant).or_default();
            merged.requests += t.requests;
            merged.rejections += t.rejections;
            merged.decode_steps += t.decode_steps;
        }
        ServeReport {
            requests,
            errors: self.errors + other.errors,
            wall_s,
            throughput_rps: if wall_s > 0.0 { requests as f64 / wall_s } else { 0.0 },
            latency: merge_latency(&self.latency, &other.latency, &latency_hist),
            latency_hist,
            cache: CacheStats {
                hits: self.cache.hits + other.cache.hits,
                misses: self.cache.misses + other.cache.misses,
                evictions: self.cache.evictions + other.cache.evictions,
                entries: self.cache.entries + other.cache.entries,
            },
            batches,
            mean_batch_size: if batches > 0 { batched / batches as f64 } else { 0.0 },
            max_queue_depth: self.max_queue_depth.max(other.max_queue_depth),
            sim_cycles: self.sim_cycles + other.sim_cycles,
            sim_energy_j: self.sim_energy_j + other.sim_energy_j,
            per_worker_requests: per_worker,
            decode_sessions: self.decode_sessions + other.decode_sessions,
            decode_session_errors: self.decode_session_errors + other.decode_session_errors,
            decode_steps: self.decode_steps + other.decode_steps,
            decode_step_errors: self.decode_step_errors + other.decode_step_errors,
            decode_step_latency: merge_latency(
                &self.decode_step_latency,
                &other.decode_step_latency,
                &decode_step_latency_hist,
            ),
            decode_step_latency_hist,
            decode_resident_kv_byte_steps: self.decode_resident_kv_byte_steps
                + other.decode_resident_kv_byte_steps,
            // High-water marks merge as high-water marks: the shards are
            // distinct pools, so the merged peak is the worst single pool,
            // never a sum that no pool ever held.
            decode_peak_resident_pages: self
                .decode_peak_resident_pages
                .max(other.decode_peak_resident_pages),
            decode_peak_pool_pages: self.decode_peak_pool_pages.max(other.decode_peak_pool_pages),
            decode_page_reclaims: self.decode_page_reclaims + other.decode_page_reclaims,
            decode_pool_exhausted: self.decode_pool_exhausted + other.decode_pool_exhausted,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_s - 50.5).abs() < 1e-12);
        assert!((stats.p50_s - 50.0).abs() <= 1.0);
        assert!((stats.p99_s - 99.0).abs() <= 1.0);
        assert!((stats.max_s - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn recorder_matches_exact_stats_below_exact_capacity() {
        let mut rec = LatencyRecorder::new();
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &s in &samples {
            rec.record(s);
        }
        assert_eq!(rec.stats(), LatencyStats::from_samples(&samples));
        assert_eq!(rec.count(), 100);
        assert_eq!(rec.histogram().count, 100);
    }

    #[test]
    fn recorder_memory_is_bounded_and_quantiles_stay_within_bucket_width() {
        let mut rec = LatencyRecorder::new();
        let total = 3 * EXACT_CAP as u64;
        for i in 0..total {
            rec.record(i as f64); // uniform ramp 0..total (seconds)
        }
        assert!(rec.samples.len() <= EXACT_CAP, "memory bounded");
        let stats = rec.stats();
        assert_eq!(stats.count, total);
        assert!((stats.mean_s - (total - 1) as f64 / 2.0).abs() < 1e-9, "mean exact");
        assert!((stats.max_s - (total - 1) as f64).abs() < 1e-12, "max exact");
        // Above the exact capacity quantiles come from the histogram: the
        // upper bound of the rank's bucket, within one bucket width
        // (<= 1/16 relative) above the true order statistic.
        let true_p50 = total as f64 / 2.0;
        assert!(stats.p50_s >= true_p50 * 0.999, "p50 {} below true median", stats.p50_s);
        assert!(stats.p50_s <= true_p50 * (1.0 + 1.0 / 16.0) + 1.0, "p50 {}", stats.p50_s);
        assert!(stats.p99_s / (total as f64) > 0.9, "p99 {}", stats.p99_s);
        // Deterministic: a second identical run reproduces the stats.
        let mut again = LatencyRecorder::new();
        for i in 0..total {
            again.record(i as f64);
        }
        assert_eq!(again.stats(), stats);
    }

    #[test]
    fn quantiles_are_exact_at_small_counts() {
        // Below the exact capacity the recorder holds every sample, so
        // p50/p99 must be exact order statistics — pinned here for the
        // degenerate counts where estimation bugs hide.
        // One sample: every statistic is that sample.
        let mut rec = LatencyRecorder::new();
        rec.record(0.125);
        let s = rec.stats();
        assert_eq!((s.p50_s, s.p99_s, s.max_s, s.mean_s), (0.125, 0.125, 0.125, 0.125));

        // Two samples: p50 is the rank round(0.5) = upper sample, p99 the
        // max.
        let mut rec = LatencyRecorder::new();
        rec.record(1.0);
        rec.record(3.0);
        let s = rec.stats();
        assert_eq!(s.p50_s, 3.0);
        assert_eq!(s.p99_s, 3.0);
        assert_eq!(s.mean_s, 2.0);

        // Three samples: p50 is exactly the middle one, whatever the
        // arrival order.
        let mut rec = LatencyRecorder::new();
        for v in [9.0, 1.0, 5.0] {
            rec.record(v);
        }
        let s = rec.stats();
        assert_eq!(s.p50_s, 5.0);
        assert_eq!(s.p99_s, 9.0);

        // 100 samples: p99 is the rank-99 order statistic, exactly.
        let mut rec = LatencyRecorder::new();
        for v in (1..=100).rev() {
            rec.record(f64::from(v));
        }
        let s = rec.stats();
        assert_eq!(s.p50_s, 51.0, "rank round(99 * 0.5) = 50 -> 51st sample");
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
    }

    #[test]
    fn recorder_merge_is_exact_below_capacity_and_bucket_exact_above() {
        // Two shards whose combined samples fit the exact window: the
        // merge must be exactly the single-recorder result over the union.
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        let mut all = LatencyRecorder::new();
        for i in 0..100 {
            a.record(f64::from(i));
            all.record(f64::from(i));
        }
        for i in 100..150 {
            b.record(f64::from(i));
            all.record(f64::from(i));
        }
        a.merge(&b);
        assert_eq!(a.stats(), all.stats(), "sub-capacity merge is exact");
        assert_eq!(a.histogram(), all.histogram(), "histogram merge == histogram of union");

        // Merging an empty recorder is the identity.
        let before = a.stats();
        a.merge(&LatencyRecorder::new());
        assert_eq!(a.stats(), before);

        // Over capacity: a 9:1 traffic split. The old reservoir blend got
        // this right only statistically; the histogram gets it exactly —
        // the light shard's pathological samples land in their own
        // buckets and cannot drag p50 toward themselves.
        let mut heavy = LatencyRecorder::new();
        let mut light = LatencyRecorder::new();
        for i in 0..(9 * EXACT_CAP) {
            heavy.record(1.0 + (i % 7) as f64 * 1e-3); // ~1 ms-ish cluster
        }
        for _ in 0..EXACT_CAP {
            light.record(100.0); // pathological slow shard
        }
        heavy.merge(&light);
        let s = heavy.stats();
        assert_eq!(s.count, 10 * EXACT_CAP as u64);
        assert!((s.p50_s - 1.0).abs() < 0.1, "p50 {} dragged by light shard", s.p50_s);
        assert_eq!(s.max_s, 100.0, "max is exact");
        let expected_mean = (9.0 * 1.003 + 100.0) / 10.0;
        assert!((s.mean_s - expected_mean).abs() < 0.1, "mean {} count-weighted", s.mean_s);
    }

    #[test]
    fn merged_reports_do_not_double_weight_shards() {
        // Hand-built reports without histograms: merged_with falls back
        // to the count-weighted blend (documented coarse aggregate).
        let big = ServeReport {
            requests: 900,
            wall_s: 10.0,
            throughput_rps: 90.0,
            latency: LatencyStats {
                count: 900,
                mean_s: 0.001,
                p50_s: 0.001,
                p99_s: 0.002,
                max_s: 0.003,
            },
            batches: 300,
            mean_batch_size: 3.0,
            decode_steps: 90,
            per_worker_requests: vec![450, 450],
            ..Default::default()
        };
        let small = ServeReport {
            requests: 100,
            wall_s: 4.0,
            throughput_rps: 25.0,
            latency: LatencyStats { count: 100, mean_s: 0.1, p50_s: 0.1, p99_s: 0.2, max_s: 0.3 },
            batches: 100,
            mean_batch_size: 1.0,
            decode_steps: 10,
            per_worker_requests: vec![100],
            ..Default::default()
        };
        let merged = big.merged_with(&small);
        assert_eq!(merged.requests, 1000);
        assert_eq!(merged.decode_steps, 100);
        assert_eq!(merged.per_worker_requests, vec![450, 450, 100]);
        // Count-weighted, not averaged: the 9x shard dominates.
        let expected_mean = (900.0 * 0.001 + 100.0 * 0.1) / 1000.0;
        assert!((merged.latency.mean_s - expected_mean).abs() < 1e-12);
        assert!(merged.latency.p50_s < 0.02, "p50 {} double-weighted", merged.latency.p50_s);
        assert_eq!(merged.latency.max_s, 0.3);
        // Throughput re-derives from the merged wall, not the shard sum.
        assert_eq!(merged.wall_s, 10.0);
        assert!((merged.throughput_rps - 100.0).abs() < 1e-9);
        // Batch means re-weight by batch count: (300*3 + 100*1) / 400.
        assert!((merged.mean_batch_size - 2.5).abs() < 1e-12);
        // Merging with an all-zero report is the identity on exact fields.
        let ident = big.merged_with(&ServeReport::default());
        assert_eq!(ident.requests, big.requests);
        assert_eq!(ident.latency, big.latency);
    }

    #[test]
    fn merged_reports_with_histograms_are_bucket_exact() {
        // The exact scenario the old blend misstated by an order of
        // magnitude: 900 fast + 100 slow samples. With histograms on the
        // reports, the merged p50 lands in the fast cluster (the true
        // median) instead of blending toward the slow shard.
        let mut fast = LatencyRecorder::new();
        for _ in 0..900 {
            fast.record(0.001);
        }
        let mut slow = LatencyRecorder::new();
        for _ in 0..100 {
            slow.record(0.1);
        }
        let report_of = |rec: &LatencyRecorder| ServeReport {
            requests: rec.count(),
            latency: rec.stats(),
            latency_hist: rec.histogram().clone(),
            ..Default::default()
        };
        let merged = report_of(&fast).merged_with(&report_of(&slow));
        assert_eq!(merged.latency.count, 1000);
        // Bucket-exact: within one bucket width (<= 1/16 relative) of the
        // true 1 ms median — the blend would have said ~10.9 ms.
        assert!(
            merged.latency.p50_s <= 0.001 * (1.0 + 1.0 / 16.0),
            "p50 {} not bucket-exact",
            merged.latency.p50_s
        );
        assert!(
            merged.latency.p50_s >= 0.0009,
            "p50 {} below the fast cluster",
            merged.latency.p50_s
        );
        // p99 falls in the slow cluster (rank 990 of 1000).
        assert!(
            (merged.latency.p99_s - 0.1).abs() <= 0.1 / 16.0,
            "p99 {} not in the slow cluster",
            merged.latency.p99_s
        );
        assert_eq!(merged.latency.max_s, 0.1);
        // Merging is associative on the histograms: the merged report can
        // merge again and stay bucket-exact.
        let thrice = merged.merged_with(&report_of(&slow));
        assert_eq!(thrice.latency_hist.count, 1100);
        assert!(thrice.latency.p50_s <= 0.001 * (1.0 + 1.0 / 16.0));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = DepthGauge::new();
        g.enter();
        g.enter();
        g.exit();
        g.enter();
        g.enter();
        assert_eq!(g.current(), 3);
        assert_eq!(g.high_water(), 3);
        g.exit();
        g.exit();
        g.exit();
        assert_eq!(g.current(), 0);
        assert_eq!(g.high_water(), 3);
    }

    #[test]
    fn decode_kv_gauges_merge_as_high_water_marks_not_sums() {
        let a = ServeReport {
            decode_steps: 10,
            decode_resident_kv_byte_steps: 10_240,
            decode_peak_resident_pages: 7,
            decode_peak_pool_pages: 9,
            decode_page_reclaims: 4,
            decode_pool_exhausted: 1,
            ..Default::default()
        };
        let b = ServeReport {
            decode_steps: 30,
            decode_resident_kv_byte_steps: 61_440,
            decode_peak_resident_pages: 5,
            decode_peak_pool_pages: 12,
            decode_page_reclaims: 6,
            decode_pool_exhausted: 0,
            ..Default::default()
        };
        let merged = a.merged_with(&b);
        // Flows (byte-steps, reclaims, exhaustions) add ...
        assert_eq!(merged.decode_resident_kv_byte_steps, 71_680);
        assert_eq!(merged.decode_page_reclaims, 10);
        assert_eq!(merged.decode_pool_exhausted, 1);
        // ... but the occupancy peaks are bucket-exact high-water merges:
        // the shards are distinct pools, so max, never sum.
        assert_eq!(merged.decode_peak_resident_pages, 7);
        assert_eq!(merged.decode_peak_pool_pages, 12);
        // Merging is commutative on all five.
        assert_eq!(b.merged_with(&a).decode_peak_resident_pages, 7);
        assert_eq!(b.merged_with(&a).decode_resident_kv_byte_steps, 71_680);
    }

    #[test]
    fn tenant_counters_merge_by_exact_addition() {
        let a = ServeReport {
            tenants: BTreeMap::from([
                (1, TenantCounters { requests: 10, rejections: 2, decode_steps: 40 }),
                (2, TenantCounters { requests: 5, rejections: 0, decode_steps: 0 }),
            ]),
            ..Default::default()
        };
        let b = ServeReport {
            tenants: BTreeMap::from([
                (1, TenantCounters { requests: 7, rejections: 1, decode_steps: 3 }),
                (9, TenantCounters { requests: 1, rejections: 0, decode_steps: 8 }),
            ]),
            ..Default::default()
        };
        let merged = a.merged_with(&b);
        assert_eq!(
            merged.tenants,
            BTreeMap::from([
                (1, TenantCounters { requests: 17, rejections: 3, decode_steps: 43 }),
                (2, TenantCounters { requests: 5, rejections: 0, decode_steps: 0 }),
                (9, TenantCounters { requests: 1, rejections: 0, decode_steps: 8 }),
            ])
        );
        // Commutative, and the identity merge leaves the map unchanged.
        assert_eq!(b.merged_with(&a).tenants, merged.tenants);
        assert_eq!(a.merged_with(&ServeReport::default()).tenants, a.tenants);
        // The per-tenant line shows up in the report text.
        let text = merged.to_string();
        assert!(text.contains("tenants"), "missing tenants section:\n{text}");
        assert!(text.contains("[1: 17 req / 3 rej / 43 steps]"), "{text}");
    }

    #[test]
    fn report_displays_all_sections() {
        let report = ServeReport {
            requests: 10,
            throughput_rps: 5.0,
            per_worker_requests: vec![5, 5],
            ..Default::default()
        };
        let text = report.to_string();
        for needle in
            ["requests", "throughput", "plan cache", "batching", "decode kv", "per-worker"]
        {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }
}
