//! Decode sessions in the serving runtime.
//!
//! A *session* is a whole generation: one compiled causal plan (shared
//! through the [`PlanCache`](crate::PlanCache), so repeated generations of
//! the same pattern/shape skip the scheduler and lowering passes), plus
//! per-head persistent K/V state that lives **inside one worker's engine**
//! (`salo_core::LoweredEngine`) for the session's lifetime. Pinning the
//! state to a worker keeps it unsynchronized and cache-warm; the
//! dispatcher's session table maps session ids to their pinned worker so
//! every step routes to the same accelerator instance.
//!
//! Step results return through a per-session event channel rather than
//! the global ordered response stream: a generation is ordered by
//! construction (each step ingests the previous one's context), and
//! interleaving thousands of step events with layer responses would
//! stall the ordered collector.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use salo_core::HeadStep;
use salo_kernels::Qkv;
use salo_patterns::HybridPattern;

use crate::ServeError;

pub use salo_core::TokenQkv;

/// A request to open a decode session.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// The hybrid pattern over the session's full capacity (prompt plus
    /// generated tokens). It is causally clipped by the runtime; passing
    /// an already-causal pattern is fine.
    pub pattern: HybridPattern,
    /// Head dimension.
    pub head_dim: usize,
    /// Number of heads (one persistent K/V state each).
    pub num_heads: usize,
    /// Per-head prompt rows; every head must provide the same number of
    /// rows, and the prompt must cover every global token
    /// (`rows >= min_step`).
    pub prompt: Vec<Qkv>,
}

impl SessionRequest {
    /// Validates the request against the pattern's decode view.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] on any inconsistency, so
    /// the runtime never opens a session it would fail to step.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.validated_view().map(|_| ())
    }

    /// [`validate`](Self::validate), returning the decode view so the
    /// open path reuses the causal clip built here instead of clipping
    /// the pattern a second time.
    pub(crate) fn validated_view(&self) -> Result<salo_patterns::DecodeView, ServeError> {
        let view = self
            .pattern
            .decode_view()
            .map_err(|e| ServeError::InvalidRequest { reason: format!("pattern: {e}") })?;
        if self.num_heads == 0 || self.head_dim == 0 {
            return Err(ServeError::InvalidRequest { reason: "empty session shape".into() });
        }
        if self.prompt.len() != self.num_heads {
            return Err(ServeError::InvalidRequest {
                reason: format!(
                    "{} prompt heads provided, session declares {}",
                    self.prompt.len(),
                    self.num_heads
                ),
            });
        }
        let prompt_len = self.prompt.first().map_or(0, Qkv::seq_len);
        if prompt_len < view.min_step() {
            return Err(ServeError::InvalidRequest {
                reason: format!(
                    "prompt of {prompt_len} rows does not cover every global token \
                     (first decodable step is {})",
                    view.min_step()
                ),
            });
        }
        if prompt_len >= self.pattern.n() {
            return Err(ServeError::InvalidRequest {
                reason: format!(
                    "prompt of {prompt_len} rows leaves no capacity in a sequence of {}",
                    self.pattern.n()
                ),
            });
        }
        for (i, h) in self.prompt.iter().enumerate() {
            if h.seq_len() != prompt_len || h.head_dim() != self.head_dim {
                return Err(ServeError::InvalidRequest {
                    reason: format!(
                        "prompt head {i} is {}x{}, expected {prompt_len}x{}",
                        h.seq_len(),
                        h.head_dim(),
                        self.head_dim
                    ),
                });
            }
        }
        Ok(view)
    }
}

/// What the runtime reports once a session is open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The worker the session is pinned to.
    pub worker: usize,
    /// First decodable position (the prompt already covers up to here).
    pub min_step: usize,
    /// Position the next step will produce.
    pub position: usize,
    /// Sequence capacity.
    pub capacity: usize,
    /// Whether the compiled plan came from the cache.
    pub cache_hit: bool,
}

/// One completed decode step, all heads.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeStep {
    /// The position this step produced.
    pub position: usize,
    /// Per-head output rows, in the engine API's backend-neutral
    /// [`HeadStep`] form (the serving workers run the fixed-point
    /// [`LoweredEngine`](salo_core::LoweredEngine), so `raw` and
    /// `weight_q16` are always present).
    pub heads: Vec<HeadStep>,
    /// The worker that executed it.
    pub worker: usize,
}

/// Events delivered on a session's channel, in execution order.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// The session finished opening (plan resolved, prompt ingested) — or
    /// failed to.
    Opened {
        /// The session id.
        session: u64,
        /// Session parameters on success, the failure otherwise.
        result: Result<SessionInfo, ServeError>,
    },
    /// One decode step completed or failed. A failure that desynced the
    /// per-head states (any head advanced or was poisoned) retires the
    /// session: the runtime drops it, a final [`Closed`](Self::Closed)
    /// follows, and further steps report
    /// [`ServeError::UnknownSession`]. A pre-mutation validation failure
    /// (wrong token head count or row dimension, caught before any state
    /// moved) leaves the session intact and decodable.
    Step {
        /// The session id.
        session: u64,
        /// The step outputs, or the failure.
        result: Result<DecodeStep, ServeError>,
        /// Submission-to-completion latency of the step, in seconds.
        latency_s: f64,
    },
    /// The session was closed (explicitly, by a poisoning failure, or
    /// because its pinned worker died).
    Closed {
        /// The session id.
        session: u64,
        /// Tokens the session had ingested (prompt + steps); `None` when
        /// the pinned worker died and took the count with it.
        position: Option<usize>,
    },
}

/// The client's end of a decode session: its id plus the event channel
/// the pinned worker reports into.
#[derive(Debug)]
pub struct DecodeSessionHandle {
    pub(crate) id: u64,
    pub(crate) events: Receiver<SessionEvent>,
}

impl DecodeSessionHandle {
    /// The session id, as used by
    /// [`step_session`](crate::SaloServer::step_session) and
    /// [`close_session`](crate::SaloServer::close_session).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks for the next session event.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] once the runtime has shut down and
    /// every event has been delivered.
    pub fn recv(&self) -> Result<SessionEvent, ServeError> {
        self.events.recv().map_err(|_| ServeError::Closed)
    }

    /// Bounded [`recv`](Self::recv): blocks at most `timeout` for the next
    /// session event. The deadline-enforcement primitive of callers that
    /// must not hang on a session — the gateway's per-request service
    /// timeout is built on it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::TimedOut`] if no event arrived within
    /// `timeout` (the session may still be live), or
    /// [`ServeError::Closed`] once the runtime has shut down and every
    /// event has been delivered.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<SessionEvent, ServeError> {
        self.events.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServeError::TimedOut,
            RecvTimeoutError::Disconnected => ServeError::Closed,
        })
    }

    /// Blocks until the open handshake completes, returning the session
    /// parameters.
    ///
    /// # Errors
    ///
    /// Propagates the open failure, or [`ServeError::Closed`].
    pub fn wait_open(&self) -> Result<SessionInfo, ServeError> {
        match self.recv()? {
            SessionEvent::Opened { result, .. } => result,
            _ => Err(ServeError::Closed), // protocol violation: channel is dead to us
        }
    }

    /// Blocks for the next completed step, skipping non-step events.
    ///
    /// # Errors
    ///
    /// Propagates step failures, or [`ServeError::Closed`] after shutdown
    /// or once the session is closed.
    pub fn next_step(&self) -> Result<DecodeStep, ServeError> {
        loop {
            match self.recv()? {
                SessionEvent::Step { result, .. } => return result,
                SessionEvent::Closed { .. } => return Err(ServeError::Closed),
                SessionEvent::Opened { result, .. } => {
                    result?; // surface an open failure instead of looping
                }
            }
        }
    }
}

/// The set of live session ids, shared across the runtime's threads.
///
/// Three parties keep it honest: the server front-end inserts at
/// [`open_session`](crate::SaloServer::open_session) and gates
/// `step_session`/`close_session` on membership; the pinned worker
/// removes a session the moment it is retired by a failure (a poisoning
/// step, a failed open) — *before* emitting the failure event, so a
/// client that has observed the error is guaranteed further
/// `step_session` calls report
/// [`ServeError::UnknownSession`](crate::ServeError::UnknownSession);
/// and the dispatcher consults it to retire stale routes for steps that
/// were accepted just before the session died.
#[derive(Debug, Default)]
pub(crate) struct SessionRegistry {
    /// Live sessions, each tagged with the tenant that opened it (the
    /// per-tenant decode-step counters look the tenant up here on the
    /// step path).
    live: Mutex<HashMap<u64, u64>>,
    /// Sessions retired worker-side (poisoning step, failed open) whose
    /// dispatcher route still needs reaping. The worker cannot reach the
    /// dispatcher's table directly, so it queues the id here and the
    /// dispatcher drains the queue on its next pass — otherwise a client
    /// that (correctly) never touches the dead session again would leave
    /// its route leaked until shutdown.
    retired: Mutex<Vec<u64>>,
}

impl SessionRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, session: u64, tenant: u64) {
        self.live.lock().expect("session registry poisoned").insert(session, tenant);
    }

    /// Removes the session; `false` if it was not live.
    pub fn remove(&self, session: u64) -> bool {
        self.live.lock().expect("session registry poisoned").remove(&session).is_some()
    }

    /// Removes the session *and* queues its route for dispatcher-side
    /// reaping — the worker-side form of removal.
    pub fn retire(&self, session: u64) {
        self.remove(session);
        self.retired.lock().expect("session registry poisoned").push(session);
    }

    /// Takes the sessions retired since the last drain.
    pub fn drain_retired(&self) -> Vec<u64> {
        std::mem::take(&mut *self.retired.lock().expect("session registry poisoned"))
    }

    /// The tenant that opened the session, if it is live. This is also
    /// the liveness check of the step path: one lookup yields both
    /// membership and the tenant to account the step to.
    pub fn tenant_of(&self, session: u64) -> Option<u64> {
        self.live.lock().expect("session registry poisoned").get(&session).copied()
    }

    /// Snapshot of the live session ids — what a drain walks to close
    /// every registered session.
    pub fn live_ids(&self) -> Vec<u64> {
        self.live.lock().expect("session registry poisoned").keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.live.lock().expect("session registry poisoned").len()
    }
}

/// The dispatcher's routing table: which worker each live session is
/// pinned to, and the event channel failures are reported on.
#[derive(Debug, Default)]
pub(crate) struct SessionTable {
    routes: HashMap<u64, SessionRoute>,
}

#[derive(Debug)]
pub(crate) struct SessionRoute {
    pub worker: usize,
    pub events: Sender<SessionEvent>,
}

impl SessionTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, session: u64, worker: usize, events: Sender<SessionEvent>) {
        self.routes.insert(session, SessionRoute { worker, events });
    }

    pub fn get(&self, session: u64) -> Option<&SessionRoute> {
        self.routes.get(&session)
    }

    pub fn remove(&mut self, session: u64) -> Option<SessionRoute> {
        self.routes.remove(&session)
    }

    /// Live sessions pinned to each of `workers` workers — the placement
    /// signal for new sessions (sessions are long-lived, so transient
    /// queue depth alone would pin everything to worker 0).
    pub fn pinned_per_worker(&self, workers: usize) -> Vec<usize> {
        let mut pinned = vec![0usize; workers];
        for route in self.routes.values() {
            if let Some(count) = pinned.get_mut(route.worker) {
                *count += 1;
            }
        }
        pinned
    }
}
