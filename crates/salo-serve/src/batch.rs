//! Grouping of in-flight requests into same-plan batches.
//!
//! A batch is a set of requests that share one compiled plan: the worker
//! loads the plan once and runs every request's heads back to back, which
//! is exactly the reuse the SALO dataflow is built around. The batcher
//! keeps one open bucket per [`PlanKey`]; a bucket is sealed into a
//! [`Batch`] when it reaches the configured size or when the dispatcher
//! drains its submission queue (closed-loop flush).

use std::sync::Arc;
use std::time::Instant;

use salo_core::CompiledPlan;
use salo_kernels::Qkv;
use salo_patterns::{AttentionShape, HybridPattern};

use crate::PlanKey;

/// One accepted request travelling through the runtime.
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    /// Submission id (also the response-ordering key).
    pub id: u64,
    /// Per-head inputs.
    pub heads: Vec<Qkv>,
    /// Submission timestamp, for end-to-end latency.
    pub submitted: Instant,
    /// Whether the plan lookup hit the cache.
    pub cache_hit: bool,
}

/// A group of requests sharing one compiled plan, dispatched to a single
/// worker as a unit. Carries everything the dispatcher needs to mint one
/// typed [`AttentionRequest`](salo_core::AttentionRequest) per member:
/// the shared pattern/plan pair and the shape.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    /// The shared pattern (one `Arc` for the whole batch).
    pub pattern: Arc<HybridPattern>,
    /// The shared compiled plan.
    pub plan: Arc<CompiledPlan>,
    /// The shape every member was validated against.
    pub shape: AttentionShape,
    /// The member requests, in submission order.
    pub requests: Vec<InFlight>,
}

impl Batch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }
}

/// Accumulates requests into per-plan buckets.
#[derive(Debug)]
pub(crate) struct Batcher {
    max_batch: usize,
    buckets: Vec<(PlanKey, Batch)>,
}

impl Batcher {
    /// Creates a batcher sealing buckets at `max_batch` requests
    /// (clamped to at least 1).
    pub fn new(max_batch: usize) -> Self {
        Self { max_batch: max_batch.max(1), buckets: Vec::new() }
    }

    /// The sealing threshold (always >= 1).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Adds a request under its plan key; returns a sealed batch when the
    /// bucket reaches the size limit.
    pub fn push(
        &mut self,
        key: PlanKey,
        pattern: &Arc<HybridPattern>,
        plan: &Arc<CompiledPlan>,
        shape: AttentionShape,
        req: InFlight,
    ) -> Option<Batch> {
        let idx = match self.buckets.iter().position(|(k, _)| *k == key) {
            Some(idx) => idx,
            None => {
                self.buckets.push((
                    key,
                    Batch {
                        pattern: Arc::clone(pattern),
                        plan: Arc::clone(plan),
                        shape,
                        requests: Vec::new(),
                    },
                ));
                self.buckets.len() - 1
            }
        };
        let bucket = &mut self.buckets[idx].1;
        bucket.requests.push(req);
        if bucket.len() >= self.max_batch {
            return Some(self.buckets.swap_remove(idx).1);
        }
        None
    }

    /// Seals and returns every open bucket, oldest first.
    pub fn flush(&mut self) -> Vec<Batch> {
        self.buckets.drain(..).map(|(_, b)| b).collect()
    }

    /// Requests waiting in open buckets.
    pub fn pending(&self) -> usize {
        self.buckets.iter().map(|(_, b)| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_core::Salo;
    use salo_patterns::{sliding_only, AttentionShape};
    use salo_scheduler::HardwareMeta;
    use salo_sim::AcceleratorConfig;

    fn plan_for(n: usize) -> (PlanKey, Arc<HybridPattern>, Arc<CompiledPlan>, AttentionShape) {
        let config =
            AcceleratorConfig { hw: HardwareMeta::new(8, 8, 1, 1).unwrap(), ..Default::default() };
        let salo = Salo::new(config.clone());
        let pattern = sliding_only(n, 3).unwrap();
        let shape = AttentionShape::new(n, 8, 1).unwrap();
        let key = PlanKey::new(&pattern, &shape, &config);
        let plan = Arc::new(salo.compile(&pattern, &shape).unwrap());
        (key, Arc::new(pattern), plan, shape)
    }

    fn req(id: u64) -> InFlight {
        InFlight { id, heads: Vec::new(), submitted: Instant::now(), cache_hit: false }
    }

    #[test]
    fn seals_at_max_batch() {
        let (key, pattern, plan, shape) = plan_for(16);
        let mut b = Batcher::new(3);
        assert!(b.push(key, &pattern, &plan, shape, req(0)).is_none());
        assert!(b.push(key, &pattern, &plan, shape, req(1)).is_none());
        let sealed = b.push(key, &pattern, &plan, shape, req(2)).expect("sealed at 3");
        assert_eq!(sealed.len(), 3);
        assert_eq!(sealed.requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn separates_plans_and_flushes_in_arrival_order() {
        let (k1, pat1, p1, s1) = plan_for(16);
        let (k2, pat2, p2, s2) = plan_for(24);
        let mut b = Batcher::new(8);
        b.push(k1, &pat1, &p1, s1, req(0));
        b.push(k2, &pat2, &p2, s2, req(1));
        b.push(k1, &pat1, &p1, s1, req(2));
        assert_eq!(b.pending(), 3);
        let flushed = b.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(flushed[1].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn max_batch_one_degenerates_to_per_request_dispatch() {
        let (key, pattern, plan, shape) = plan_for(16);
        let mut b = Batcher::new(0); // clamped to 1
        assert!(b.push(key, &pattern, &plan, shape, req(0)).is_some());
        assert!(b.push(key, &pattern, &plan, shape, req(1)).is_some());
    }
}
