use std::error::Error;
use std::fmt;

use salo_core::SaloError;

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request is internally inconsistent (heads disagree with the
    /// declared shape, or the pattern disagrees with the sequence length).
    InvalidRequest {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// Compilation or execution failed inside the runtime.
    Salo(SaloError),
    /// The server has shut down: the submission or response channel is
    /// closed and no further requests can be served.
    Closed,
    /// The worker a batch was routed to is gone (its thread exited); the
    /// affected requests fail instead of being silently dropped.
    WorkerLost,
    /// A decode step or close referenced a session id the server does not
    /// know (never opened, already closed, or failed to open).
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// The server is draining ([`SaloServer::drain`](crate::SaloServer::drain)):
    /// it refuses new submissions, opens and steps while in-flight work
    /// finishes. Closes are still accepted.
    Draining,
    /// A blocking wait on a session event ran past its deadline
    /// ([`DecodeSessionHandle::recv_timeout`](crate::DecodeSessionHandle::recv_timeout)).
    /// The session itself may still be live; only the wait gave up.
    TimedOut,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::Salo(e) => write!(f, "execution error: {e}"),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::WorkerLost => write!(f, "worker thread is gone"),
            ServeError::UnknownSession { session } => {
                write!(f, "unknown decode session {session}")
            }
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::TimedOut => write!(f, "timed out waiting for a session event"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Salo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SaloError> for ServeError {
    /// Folds engine-level errors into the serving surface. The engine's
    /// request-shaped variants map onto their serving twins — so a
    /// worker's engine error reaches the client as the same
    /// `UnknownSession`/`InvalidRequest` it would have gotten from the
    /// front-end — and everything else wraps as [`ServeError::Salo`].
    fn from(e: SaloError) -> Self {
        match e {
            SaloError::UnknownSession { session } => ServeError::UnknownSession { session },
            SaloError::InvalidRequest { reason } => ServeError::InvalidRequest { reason },
            // A head-count disagreement is the client's malformed request
            // (the pre-engine runtime reported it as such), not an
            // internal execution failure.
            SaloError::HeadCountMismatch { expected, got } => ServeError::InvalidRequest {
                reason: format!("{got} head(s) provided, expected {expected}"),
            },
            other => ServeError::Salo(other),
        }
    }
}

/// Sub-layer errors flow through [`SaloError`] into the serving surface,
/// so `?` works on pattern/scheduler/simulator/kernel/fixed-point results
/// without per-crate ad-hoc mapping.
macro_rules! from_via_salo {
    ($source:ty) => {
        impl From<$source> for ServeError {
            fn from(e: $source) -> Self {
                ServeError::from(SaloError::from(e))
            }
        }
    };
}

from_via_salo!(salo_patterns::PatternError);
from_via_salo!(salo_scheduler::SchedulerError);
from_via_salo!(salo_sim::SimError);
from_via_salo!(salo_kernels::KernelError);
from_via_salo!(salo_fixed::FixedError);

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::PatternError;

    #[test]
    fn display_and_source() {
        let e = ServeError::InvalidRequest { reason: "nope".into() };
        assert!(e.to_string().contains("nope"));
        assert!(e.source().is_none());

        let e: ServeError = SaloError::from(PatternError::EmptySequence).into();
        assert!(e.to_string().contains("execution error"));
        assert!(e.source().is_some());

        assert_eq!(ServeError::Closed.to_string(), "server is shut down");
        assert_eq!(ServeError::WorkerLost.to_string(), "worker thread is gone");
        assert_eq!(ServeError::Draining.to_string(), "server is draining");
        assert!(ServeError::TimedOut.to_string().contains("timed out"));
    }
}
