//! Request and response types of the serving runtime.

use salo_core::MultiHeadRun;
use salo_kernels::Qkv;
use salo_models::Workload;
use salo_patterns::{AttentionShape, HybridPattern};

use crate::ServeError;

/// One attention-layer inference request: a hybrid pattern, its shape and
/// the per-head Q/K/V inputs.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The hybrid sparse attention pattern (shared by all heads).
    pub pattern: HybridPattern,
    /// Sequence/head dimensions.
    pub shape: AttentionShape,
    /// Per-head inputs; length must equal `shape.num_heads`.
    pub heads: Vec<Qkv>,
}

impl ServeRequest {
    /// Builds a request, validating that the heads agree with the shape
    /// and the pattern agrees with the sequence length.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] on any disagreement, so the
    /// runtime never accepts work it would later fail to execute.
    pub fn new(
        pattern: HybridPattern,
        shape: AttentionShape,
        heads: Vec<Qkv>,
    ) -> Result<Self, ServeError> {
        if pattern.n() != shape.seq_len {
            return Err(ServeError::InvalidRequest {
                reason: format!(
                    "pattern length {} != shape sequence length {}",
                    pattern.n(),
                    shape.seq_len
                ),
            });
        }
        if heads.len() != shape.num_heads {
            return Err(ServeError::InvalidRequest {
                reason: format!(
                    "{} heads provided, shape declares {}",
                    heads.len(),
                    shape.num_heads
                ),
            });
        }
        for (i, h) in heads.iter().enumerate() {
            if h.seq_len() != shape.seq_len || h.head_dim() != shape.head_dim {
                return Err(ServeError::InvalidRequest {
                    reason: format!(
                        "head {i} is {}x{}, shape declares {}x{}",
                        h.seq_len(),
                        h.head_dim(),
                        shape.seq_len,
                        shape.head_dim
                    ),
                });
            }
        }
        Ok(Self { pattern, shape, heads })
    }

    /// A request for one layer of a model workload, with deterministic
    /// seeded inputs — the building block of traffic generators.
    #[must_use]
    pub fn from_workload(workload: &Workload, seed: u64) -> Self {
        Self {
            pattern: workload.pattern.clone(),
            shape: workload.shape,
            heads: workload.qkv_heads(seed),
        }
    }
}

/// The serving runtime's answer to one [`ServeRequest`].
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Submission id; responses are delivered in increasing-id order.
    pub id: u64,
    /// The multi-head execution result, or the failure that prevented it.
    pub result: Result<MultiHeadRun, ServeError>,
    /// Whether the compiled plan came from the cache.
    pub cache_hit: bool,
    /// Index of the worker (accelerator instance) that executed it;
    /// `None` when the request failed before reaching a worker.
    pub worker: Option<usize>,
    /// Number of requests in the batch this request rode in.
    pub batch_size: usize,
    /// Wall-clock latency from submission to completion, in seconds.
    pub latency_s: f64,
}

impl ServeResponse {
    /// The execution result, unwrapped.
    ///
    /// # Errors
    ///
    /// Returns the per-request failure, if any.
    pub fn output(&self) -> Result<&MultiHeadRun, ServeError> {
        self.result.as_ref().map_err(Clone::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::sliding_only;

    #[test]
    fn validates_head_count_and_dims() {
        let pattern = sliding_only(16, 3).unwrap();
        let shape = AttentionShape::new(16, 8, 2).unwrap();
        let ok = ServeRequest::new(pattern.clone(), shape, Qkv::random_heads(&shape, 1));
        assert!(ok.is_ok());

        let wrong_count = ServeRequest::new(pattern.clone(), shape, vec![Qkv::random(16, 8, 1)]);
        assert!(matches!(wrong_count, Err(ServeError::InvalidRequest { .. })));

        let wrong_dim = ServeRequest::new(
            pattern.clone(),
            shape,
            vec![Qkv::random(16, 4, 1), Qkv::random(16, 4, 2)],
        );
        assert!(matches!(wrong_dim, Err(ServeError::InvalidRequest { .. })));

        let wrong_len = ServeRequest::new(
            pattern,
            AttentionShape::new(32, 8, 1).unwrap(),
            vec![Qkv::random(32, 8, 1)],
        );
        assert!(matches!(wrong_len, Err(ServeError::InvalidRequest { .. })));
    }

    #[test]
    fn from_workload_is_deterministic() {
        let w = salo_models::bert_base(16).unwrap();
        let a = ServeRequest::from_workload(&w, 7);
        let b = ServeRequest::from_workload(&w, 7);
        assert_eq!(a.heads.len(), w.shape.num_heads);
        assert_eq!(a.heads[0].q, b.heads[0].q, "same seed, same inputs");
    }
}
