//! The worker pool: N execution engines behind channels.
//!
//! Each worker thread owns a [`LoweredEngine`] (modeling one physical
//! accelerator) and consumes [`AttentionRequest`]s directly — prefill
//! batches and decode-session traffic alike travel as typed requests, so
//! the worker body is one `engine.execute(request)` call plus reply
//! routing ([`Reply`]). Decode sessions are *pinned*: their per-head K/V
//! state lives inside the worker's engine for the whole generation, so
//! steps never cross threads and the state is never locked.
//!
//! Three resources amortize across the pool's lifetime: the engines share
//! one set of exponential/reciprocal lookup tables (behind `Arc` inside
//! the accelerator), each engine carries one scratch across every request
//! and step it ever serves, and session K/V pages recycle through each
//! engine's shared page pool.
//!
//! # The scheduler tick
//!
//! Each `recv` on the job channel opens one *scheduler tick*: the worker
//! opportunistically drains whatever else is already queued (bounded by
//! [`TICK_DRAIN_BATCHES`]), then walks the tick's jobs strictly in
//! arrival order. Every maximal contiguous run of decode steps for
//! *distinct* sessions — at most one pending step per ready session, by
//! construction — fuses into a single
//! [`AttentionRequest::DecodeStepBatch`], executed as one multi-session
//! pass over the engine's shared scratch. A second step for a session
//! already in the run ends the run and opens the next one, so
//! per-session step order is untouched; runs of one fall back to the
//! ordinary single-step path. Fusion changes scheduling only: outputs,
//! per-entry errors and poisoning semantics are those of the same steps
//! run back to back (the engine's fused kernel is bit-identical by
//! construction, pinned by the `salo-sim` and `salo-core` test suites).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use salo_core::{AttentionRequest, Engine, LoweredEngine, MultiHeadRun, PrefillOutput, Salo};
use salo_sim::DEFAULT_PAGE_ROWS;
use salo_trace::{Counter, Gauge, MetricsRegistry};

use crate::session::{DecodeStep, SessionEvent, SessionInfo, SessionRegistry, TokenQkv};
use crate::ServeError;

/// Bound on the extra job batches one scheduler tick may drain beyond the
/// blocking `recv` that opened it. Keeps a firehose of submissions from
/// starving the tick's first job while still giving concurrently
/// submitted steps a window to land in the same fused pass.
const TICK_DRAIN_BATCHES: usize = 64;

/// One typed request travelling to a worker, paired with the routing
/// metadata its response needs. Workers do not translate it: the
/// `request` goes straight into the engine.
pub(crate) struct Job {
    /// The typed attention request the engine executes verbatim.
    pub request: AttentionRequest,
    /// Where (and how) the outcome is reported.
    pub reply: Reply,
}

/// Response routing for a [`Job`] — the only per-kind metadata left
/// outside the typed request itself.
pub(crate) enum Reply {
    /// A layer request: the result enters the ordered response stream.
    Layer { id: u64, cache_hit: bool, batch_size: usize, submitted: Instant },
    /// A decode-session open: the handshake goes to the session channel.
    Open { session: u64, cache_hit: bool, submitted: Instant, events: Sender<SessionEvent> },
    /// A decode step: the output goes to the session channel.
    Step { session: u64, submitted: Instant, events: Sender<SessionEvent> },
    /// A session close: the terminal event goes to the session channel.
    Close { session: u64, events: Sender<SessionEvent> },
}

/// A finished layer request, reported by a worker to the collector.
#[derive(Debug)]
pub(crate) struct LayerDone {
    pub id: u64,
    pub result: Result<MultiHeadRun, ServeError>,
    pub cache_hit: bool,
    /// `None` when the request failed before reaching a worker.
    pub worker: Option<usize>,
    pub batch_size: usize,
    pub submitted: Instant,
    pub finished: Instant,
}

/// Anything a worker (or the dispatcher, for pre-worker failures) reports
/// to the collector.
#[derive(Debug)]
pub(crate) enum Completed {
    /// A layer request finished; enters the ordered response stream.
    Layer(LayerDone),
    /// A decode session finished opening (metrics only — the client hears
    /// through the session channel). Opens pay compile + prompt ingest,
    /// so they carry timestamps and count toward the report's wall span.
    SessionOpened { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step finished (metrics only).
    Step { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step was dropped without executing because its session
    /// was already closed when the dispatcher saw it (a benign
    /// close/step race). Exits the depth gauge but is not a step
    /// execution — it must not count as a decode step or error.
    StepDropped,
}

/// Pre-resolved registry handles for the decode scheduler's telemetry:
/// fetched once at pool spawn, shared by every worker (the underlying
/// counters and gauges are atomic), updated lock-free on the hot path.
#[derive(Clone)]
struct DecodeMetrics {
    /// Scheduler ticks that fused (>= 2 steps in one pass).
    ticks: Arc<Counter>,
    /// Steps executed through fused passes (`fused_steps / ticks` is the
    /// mean fusion width).
    fused_steps: Arc<Counter>,
    /// Sum over successful steps of the stepped session's resident K/V
    /// bytes — divided by the step count it is the mean paged footprint.
    resident_kv_byte_steps: Arc<Counter>,
    /// Pages currently resident in a worker's pool, sampled every tick;
    /// its high-water mark is the report's peak-resident gauge.
    resident_pages: Arc<Gauge>,
    /// The pools' own lifetime occupancy high-water, mirrored every tick.
    pool_pages: Arc<Gauge>,
    /// Pages proven dead by the reclamation horizon and recycled.
    page_reclaims: Arc<Counter>,
    /// Allocations refused by a bounded pool at capacity.
    pool_exhausted: Arc<Counter>,
}

impl DecodeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            ticks: registry.counter("serve.decode.ticks"),
            fused_steps: registry.counter("serve.decode.fused_steps"),
            resident_kv_byte_steps: registry.counter("serve.decode.resident_kv_byte_steps"),
            resident_pages: registry.gauge("serve.decode.resident_pages"),
            pool_pages: registry.gauge("serve.decode.pool_pages"),
            page_reclaims: registry.counter("serve.decode.page_reclaims"),
            pool_exhausted: registry.counter("serve.decode.pool_exhausted"),
        }
    }
}

/// Last-published pool counters of one worker, so each tick pushes only
/// the *delta* into the shared registry counters (the pool's own counts
/// are cumulative and per-engine).
#[derive(Default)]
struct PoolWatch {
    reclaimed: u64,
    exhausted: u64,
}

/// Mirrors one worker's page-pool state into the shared registry: gauges
/// take the raw values (their high-water marks are max-merged across
/// workers by construction), counters take deltas since the last publish.
fn publish_pool_stats(engine: &LoweredEngine, metrics: &DecodeMetrics, watch: &mut PoolWatch) {
    let Some(stats) = engine.kv_pool_stats() else { return };
    metrics.resident_pages.set(stats.in_use as i64);
    metrics.pool_pages.set(stats.high_water as i64);
    metrics.page_reclaims.add(stats.reclaimed - watch.reclaimed);
    metrics.pool_exhausted.add(stats.exhausted - watch.exhausted);
    watch.reclaimed = stats.reclaimed;
    watch.exhausted = stats.exhausted;
}

/// Handles to the worker threads plus their load counters.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Vec<Job>>>,
    outstanding: Vec<Arc<AtomicUsize>>,
    pub handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning an engine built from `salo`.
    /// `parallelism` is the engines' prefill shard count (`0` inherits
    /// the `SALO_PARALLELISM` environment default). `decode_page_rows` /
    /// `decode_pool_pages` configure each engine's K/V page pool (`None`
    /// keeps the engine's environment-derived defaults); decode
    /// telemetry lands in `metrics`.
    #[allow(clippy::too_many_arguments)] // one call site, in SaloServer::start
    pub fn spawn(
        workers: usize,
        parallelism: usize,
        decode_page_rows: Option<usize>,
        decode_pool_pages: Option<usize>,
        salo: &Salo,
        done: &Sender<Completed>,
        registry: &Arc<SessionRegistry>,
        metrics: &Arc<MetricsRegistry>,
    ) -> Self {
        let workers = workers.max(1);
        let parallelism = if parallelism == 0 { salo_core::env_parallelism() } else { parallelism };
        let decode_metrics = DecodeMetrics::new(metrics);
        let mut senders = Vec::with_capacity(workers);
        let mut outstanding = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<Vec<Job>>();
            let load = Arc::new(AtomicUsize::new(0));
            // Engines built from one Salo share its lookup tables.
            let mut engine = salo.engine_with_parallelism(parallelism);
            if decode_page_rows.is_some() || decode_pool_pages.is_some() {
                // A lone capacity bound keeps the engine's own page-rows
                // default (environment override included) instead of
                // resetting it.
                let rows = decode_page_rows
                    .or_else(|| engine.kv_pool_stats().map(|s| s.page_rows))
                    .unwrap_or(DEFAULT_PAGE_ROWS);
                engine.configure_kv_pool(rows, decode_pool_pages);
            }
            let worker_done = done.clone();
            let worker_load = Arc::clone(&load);
            let worker_registry = Arc::clone(registry);
            let worker_metrics = decode_metrics.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("salo-serve-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            index,
                            engine,
                            &rx,
                            &worker_done,
                            &worker_load,
                            &worker_registry,
                            &worker_metrics,
                        )
                    })
                    .expect("spawn worker thread"),
            );
            senders.push(tx);
            outstanding.push(load);
        }
        Self { senders, outstanding, handles }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.outstanding.len()
    }

    /// Outstanding work units queued on one worker.
    pub fn load_of(&self, worker: usize) -> usize {
        self.outstanding[worker].load(Ordering::Relaxed)
    }

    /// The worker with the fewest outstanding work units — where the
    /// dispatcher routes batches. (Session pinning additionally weighs
    /// live pinned sessions; see the dispatcher's placement.)
    pub fn least_loaded(&self) -> usize {
        self.outstanding
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
            .map_or(0, |(i, _)| i)
    }

    /// Sends a batch of jobs to the least-loaded worker (by outstanding
    /// request count). On failure — the chosen worker's thread is gone —
    /// the jobs are handed back so the caller can fail their requests
    /// instead of dropping them.
    pub fn dispatch(&self, jobs: Vec<Job>) -> Result<(), Vec<Job>> {
        let target = self.least_loaded();
        self.outstanding[target].fetch_add(jobs.len(), Ordering::Relaxed);
        match self.senders[target].send(jobs) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(jobs)) => {
                self.outstanding[target].fetch_sub(jobs.len(), Ordering::Relaxed);
                Err(jobs)
            }
        }
    }

    /// Sends one session job to a specific (pinned) worker. Returns the
    /// job back if that worker's thread is gone.
    #[allow(clippy::result_large_err)] // the Err is the undelivered job itself
    pub fn dispatch_to(&self, worker: usize, job: Job) -> Result<(), Job> {
        self.outstanding[worker].fetch_add(1, Ordering::Relaxed);
        match self.senders[worker].send(vec![job]) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(mut jobs)) => {
                self.outstanding[worker].fetch_sub(1, Ordering::Relaxed);
                Err(jobs.pop().expect("one job sent, one returned"))
            }
        }
    }

    /// Closes the submission side; workers drain their queues and exit.
    pub fn close(&mut self) {
        self.senders.clear();
    }
}

/// One decode step extracted from its [`Job`] for the tick scheduler:
/// the token payload plus the reply route.
struct StepJob {
    session: u64,
    token: Vec<TokenQkv>,
    submitted: Instant,
    events: Sender<SessionEvent>,
}

impl StepJob {
    /// Reassembles the original job — the fallback for runs of one, which
    /// take the ordinary single-step path.
    fn into_job(self) -> Job {
        Job {
            request: AttentionRequest::DecodeStep { session: self.session, token: self.token },
            reply: Reply::Step {
                session: self.session,
                submitted: self.submitted,
                events: self.events,
            },
        }
    }
}

fn worker_loop(
    index: usize,
    mut engine: LoweredEngine,
    rx: &Receiver<Vec<Job>>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
    metrics: &DecodeMetrics,
) {
    let mut watch = PoolWatch::default();
    while let Ok(mut jobs) = rx.recv() {
        // Open the tick: drain whatever else is already queued (bounded),
        // so steps submitted close together can fuse below.
        let mut drained = 0usize;
        while drained < TICK_DRAIN_BATCHES {
            match rx.try_recv() {
                Ok(more) => {
                    jobs.extend(more);
                    drained += 1;
                }
                Err(_) => break,
            }
        }
        if !run_tick(index, &mut engine, jobs, done, load, registry, metrics) {
            return; // collector is gone; nothing left to report to
        }
        publish_pool_stats(&engine, metrics, &mut watch);
    }
}

/// Processes one scheduler tick's jobs strictly in arrival order, fusing
/// each maximal contiguous run of distinct-session decode steps into one
/// batched engine pass. Returns `false` once the collector is gone.
#[allow(clippy::too_many_arguments)]
fn run_tick(
    index: usize,
    engine: &mut LoweredEngine,
    jobs: Vec<Job>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
    metrics: &DecodeMetrics,
) -> bool {
    let mut run: Vec<StepJob> = Vec::new();
    let flush = |run: &mut Vec<StepJob>, engine: &mut LoweredEngine| -> bool {
        match run.len() {
            0 => true,
            1 => {
                let single = run.pop().expect("run has one step").into_job();
                run_job(index, engine, single, done, load, registry, metrics)
            }
            _ => run_fused(index, engine, std::mem::take(run), done, load, registry, metrics),
        }
    };
    for job in jobs {
        match job {
            Job {
                request: AttentionRequest::DecodeStep { session, token },
                reply: Reply::Step { submitted, events, .. },
            } => {
                if run.iter().any(|s| s.session == session) {
                    // A second step for a session already in the run: it
                    // must observe the first step's state, so the run ends
                    // here and this step opens the next one — per-session
                    // order is preserved by construction.
                    if !flush(&mut run, engine) {
                        return false;
                    }
                }
                run.push(StepJob { session, token, submitted, events });
            }
            other => {
                if !flush(&mut run, engine) {
                    return false;
                }
                if !run_job(index, engine, other, done, load, registry, metrics) {
                    return false;
                }
            }
        }
    }
    flush(&mut run, engine)
}

/// Executes a fused run of >= 2 distinct-session decode steps as one
/// [`AttentionRequest::DecodeStepBatch`] pass, then routes every entry's
/// outcome with exactly the single-step bookkeeping: queue-wait recorded
/// at dequeue, retirement settled and load released before the event
/// sends, one [`Completed::Step`] per entry, in run order.
#[allow(clippy::too_many_arguments)]
fn run_fused(
    index: usize,
    engine: &mut LoweredEngine,
    steps: Vec<StepJob>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
    metrics: &DecodeMetrics,
) -> bool {
    let tracer = salo_trace::Tracer::global();
    let tick_span = tracer.span_with("serve.decode.tick", "serve", steps.len() as u64);
    metrics.ticks.inc();
    metrics.fused_steps.add(steps.len() as u64);
    let mut routes = Vec::with_capacity(steps.len());
    let mut batch = Vec::with_capacity(steps.len());
    for step in steps {
        tracer.record_since("serve.decode.queue_wait", "serve", step.submitted, step.session);
        // Liveness and position snapshots *before* the pass, per entry —
        // the same observations the single-step path makes at dispatch.
        let known = engine.has_session(step.session);
        let before = engine.session_position(step.session);
        routes.push((step.session, step.submitted, step.events, known, before));
        batch.push((step.session, step.token));
    }
    let executed = engine
        .execute(AttentionRequest::DecodeStepBatch { steps: batch })
        .and_then(|r| r.into_step_batch());
    let results = match executed {
        Ok(list) => {
            debug_assert!(
                list.len() == routes.len()
                    && list.iter().zip(&routes).all(|((sid, _), (rs, ..))| sid == rs),
                "fused results align with the run, in order"
            );
            list.into_iter().map(|(_, result)| result).collect::<Vec<_>>()
        }
        // The batch itself was rejected (an engine without decode, a
        // malformed request): every member step failed identically.
        Err(e) => routes.iter().map(|_| Err(e.clone())).collect(),
    };
    drop(tick_span);
    for ((session, submitted, events, known, before), result) in routes.into_iter().zip(results) {
        let ok = result.is_ok();
        // Same settlement order as the single-step path: retirement and
        // load release strictly precede the event sends.
        let poisoned = known && !engine.has_session(session);
        if poisoned {
            registry.retire(session);
        }
        load.fetch_sub(1, Ordering::Relaxed);
        if let Ok(step) = &result {
            metrics.resident_kv_byte_steps.add(step.telemetry.resident_kv_bytes.unwrap_or(0));
        }
        let result = result
            .map(|step| DecodeStep { position: step.position, heads: step.heads, worker: index })
            .map_err(ServeError::from);
        let _reply_span = tracer.span_with("serve.reply", "serve", session);
        let _ = events.send(SessionEvent::Step {
            session,
            result,
            latency_s: submitted.elapsed().as_secs_f64(),
        });
        if poisoned {
            let _ = events.send(SessionEvent::Closed { session, position: before });
        }
        if done.send(Completed::Step { ok, submitted, finished: Instant::now() }).is_err() {
            return false;
        }
    }
    true
}

/// Executes one job on the worker's engine and routes its outcome.
/// Returns `false` once the collector is gone.
#[allow(clippy::too_many_arguments)]
fn run_job(
    index: usize,
    engine: &mut LoweredEngine,
    job: Job,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
    metrics: &DecodeMetrics,
) -> bool {
    let Job { request, reply } = job;
    let tracer = salo_trace::Tracer::global();
    match reply {
        Reply::Layer { id, cache_hit, batch_size, submitted } => {
            // Queue wait: submission to execution start, recorded from
            // this worker's dequeue (it includes the dispatcher's plan
            // lookup and batch formation ahead of the worker queue).
            tracer.record_since("serve.queue_wait", "serve", submitted, id);
            let result = engine
                .execute(request)
                .and_then(|r| r.into_prefill())
                .and_then(PrefillOutput::into_multi_head_run)
                .map_err(ServeError::from);
            load.fetch_sub(1, Ordering::Relaxed);
            let _reply_span = tracer.span_with("serve.reply", "serve", id);
            let completed = Completed::Layer(LayerDone {
                id,
                result,
                cache_hit,
                worker: Some(index),
                batch_size,
                submitted,
                finished: Instant::now(),
            });
            done.send(completed).is_ok()
        }
        Reply::Open { session, cache_hit, submitted, events } => {
            tracer.record_since("serve.queue_wait", "serve", submitted, session);
            let result = engine.execute(request).and_then(|r| r.into_opened());
            load.fetch_sub(1, Ordering::Relaxed);
            let ok = result.is_ok();
            let info = result.map(|opened| SessionInfo {
                worker: index,
                min_step: opened.min_step,
                position: opened.position,
                capacity: opened.capacity,
                cache_hit,
            });
            if !ok {
                // Deregister before reporting, so a client that saw the
                // failed handshake gets `UnknownSession` from any later
                // `step_session` instead of a silent drop; the retirement
                // also queues the dispatcher route for reaping.
                registry.retire(session);
            }
            let _ = events
                .send(SessionEvent::Opened { session, result: info.map_err(ServeError::from) });
            let completed = Completed::SessionOpened { ok, submitted, finished: Instant::now() };
            done.send(completed).is_ok()
        }
        Reply::Step { session, submitted, events } => {
            // Bookkeeping (load, registry retirement) strictly precedes
            // the event sends: a client that has observed a step's
            // outcome must see the worker's state already settled —
            // retired sessions reject further steps, and session
            // placement reads a load this step no longer inflates.
            // Per-token decode timeline: queue wait (submission to this
            // dequeue) then the step execute, which traces itself as
            // `engine.decode_step` with the sim's stage spans below it.
            tracer.record_since("serve.decode.queue_wait", "serve", submitted, session);
            let known = engine.has_session(session);
            let before = engine.session_position(session);
            let result = engine.execute(request).and_then(|r| r.into_step());
            let ok = result.is_ok();
            // A failure that desynced the per-head states made the engine
            // retire the session; propagate the retirement runtime-wide.
            // Pre-mutation validation failures leave it live (and
            // decodable), and steps for sessions this engine never held
            // were retired long ago.
            let poisoned = known && !engine.has_session(session);
            if poisoned {
                registry.retire(session);
            }
            load.fetch_sub(1, Ordering::Relaxed);
            if let Ok(step) = &result {
                metrics.resident_kv_byte_steps.add(step.telemetry.resident_kv_bytes.unwrap_or(0));
            }
            let result = result
                .map(|step| DecodeStep {
                    position: step.position,
                    heads: step.heads,
                    worker: index,
                })
                .map_err(ServeError::from);
            let _reply_span = tracer.span_with("serve.reply", "serve", session);
            let _ = events.send(SessionEvent::Step {
                session,
                result,
                latency_s: submitted.elapsed().as_secs_f64(),
            });
            if poisoned {
                // `before` is the tokens known ingested when the failing
                // step began; the failing token's partial ingest died
                // with the session state.
                let _ = events.send(SessionEvent::Closed { session, position: before });
            }
            let completed = Completed::Step { ok, submitted, finished: Instant::now() };
            done.send(completed).is_ok()
        }
        Reply::Close { session, events } => {
            load.fetch_sub(1, Ordering::Relaxed);
            if let Ok(closed) = engine.execute(request).and_then(|r| r.into_closed()) {
                let _ =
                    events.send(SessionEvent::Closed { session, position: Some(closed.position) });
            }
            true
        }
    }
}
