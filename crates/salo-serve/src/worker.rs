//! The worker pool: N simulated accelerator instances behind channels.
//!
//! Each worker thread owns its own [`Salo`] instance (modeling one
//! physical accelerator) and executes whole batches: the compiled plan is
//! shared across the batch, and each member request's heads run back to
//! back — the same sequential head schedule as the one-shot API, so
//! batched outputs are bit-identical to [`Salo::execute`].
//!
//! Two resources amortize across the pool's lifetime: the clones share
//! one set of exponential/reciprocal lookup tables (they sit behind `Arc`
//! inside the accelerator), and each worker carries one
//! [`ExecScratch`] across every request it ever serves, so steady-state
//! execution — cached plan, pre-lowered program, warm scratch — touches
//! the allocator only for the response buffers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use salo_core::{MultiHeadRun, Salo};
use salo_sim::ExecScratch;

use crate::batch::Batch;
use crate::ServeError;

/// A finished request, reported by a worker to the collector.
#[derive(Debug)]
pub(crate) struct Completed {
    pub id: u64,
    pub result: Result<MultiHeadRun, ServeError>,
    pub cache_hit: bool,
    /// `None` when the request failed before reaching a worker.
    pub worker: Option<usize>,
    pub batch_size: usize,
    pub submitted: Instant,
    pub finished: Instant,
}

/// Handles to the worker threads plus their load counters.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Batch>>,
    outstanding: Vec<Arc<AtomicUsize>>,
    pub handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning a clone of `salo`.
    pub fn spawn(workers: usize, salo: &Salo, done: &Sender<Completed>) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut outstanding = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<Batch>();
            let load = Arc::new(AtomicUsize::new(0));
            let worker_salo = salo.clone();
            let worker_done = done.clone();
            let worker_load = Arc::clone(&load);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("salo-serve-worker-{index}"))
                    .spawn(move || {
                        worker_loop(index, &worker_salo, &rx, &worker_done, &worker_load)
                    })
                    .expect("spawn worker thread"),
            );
            senders.push(tx);
            outstanding.push(load);
        }
        Self { senders, outstanding, handles }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.outstanding.len()
    }

    /// Sends a batch to the least-loaded worker (by outstanding request
    /// count). On failure — the chosen worker's thread is gone — the
    /// batch is handed back so the caller can fail its requests instead
    /// of dropping them.
    pub fn dispatch(&self, batch: Batch) -> Result<(), Batch> {
        let target = self
            .outstanding
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
            .map_or(0, |(i, _)| i);
        self.outstanding[target].fetch_add(batch.len(), Ordering::Relaxed);
        match self.senders[target].send(batch) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(batch)) => {
                self.outstanding[target].fetch_sub(batch.len(), Ordering::Relaxed);
                Err(batch)
            }
        }
    }

    /// Closes the submission side; workers drain their queues and exit.
    pub fn close(&mut self) {
        self.senders.clear();
    }
}

fn worker_loop(
    index: usize,
    salo: &Salo,
    rx: &Receiver<Batch>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
) {
    // One scratch for the worker's lifetime: arenas and accumulators grow
    // to the largest shape seen and are then reused across requests.
    let mut scratch = ExecScratch::new();
    while let Ok(batch) = rx.recv() {
        let batch_size = batch.requests.len();
        for req in batch.requests {
            let result = salo
                .execute_with_scratch(&batch.plan, &req.heads, &mut scratch)
                .map_err(ServeError::from);
            load.fetch_sub(1, Ordering::Relaxed);
            let completed = Completed {
                id: req.id,
                result,
                cache_hit: req.cache_hit,
                worker: Some(index),
                batch_size,
                submitted: req.submitted,
                finished: Instant::now(),
            };
            if done.send(completed).is_err() {
                return; // collector is gone; nothing left to report to
            }
        }
    }
}
