//! The worker pool: N execution engines behind channels.
//!
//! Each worker thread owns a [`LoweredEngine`] (modeling one physical
//! accelerator) and consumes [`AttentionRequest`]s directly — prefill
//! batches and decode-session traffic alike travel as typed requests, so
//! the worker body is one `engine.execute(request)` call plus reply
//! routing ([`Reply`]). Decode sessions are *pinned*: their per-head K/V
//! state lives inside the worker's engine for the whole generation, so
//! steps never cross threads and the state is never locked.
//!
//! Three resources amortize across the pool's lifetime: the engines share
//! one set of exponential/reciprocal lookup tables (behind `Arc` inside
//! the accelerator), each engine carries one scratch across every request
//! and step it ever serves, and session K/V arenas grow once per
//! generation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use salo_core::{AttentionRequest, Engine, LoweredEngine, MultiHeadRun, PrefillOutput, Salo};

use crate::session::{DecodeStep, SessionEvent, SessionInfo, SessionRegistry};
use crate::ServeError;

/// One typed request travelling to a worker, paired with the routing
/// metadata its response needs. Workers do not translate it: the
/// `request` goes straight into the engine.
pub(crate) struct Job {
    /// The typed attention request the engine executes verbatim.
    pub request: AttentionRequest,
    /// Where (and how) the outcome is reported.
    pub reply: Reply,
}

/// Response routing for a [`Job`] — the only per-kind metadata left
/// outside the typed request itself.
pub(crate) enum Reply {
    /// A layer request: the result enters the ordered response stream.
    Layer { id: u64, cache_hit: bool, batch_size: usize, submitted: Instant },
    /// A decode-session open: the handshake goes to the session channel.
    Open { session: u64, cache_hit: bool, submitted: Instant, events: Sender<SessionEvent> },
    /// A decode step: the output goes to the session channel.
    Step { session: u64, submitted: Instant, events: Sender<SessionEvent> },
    /// A session close: the terminal event goes to the session channel.
    Close { session: u64, events: Sender<SessionEvent> },
}

/// A finished layer request, reported by a worker to the collector.
#[derive(Debug)]
pub(crate) struct LayerDone {
    pub id: u64,
    pub result: Result<MultiHeadRun, ServeError>,
    pub cache_hit: bool,
    /// `None` when the request failed before reaching a worker.
    pub worker: Option<usize>,
    pub batch_size: usize,
    pub submitted: Instant,
    pub finished: Instant,
}

/// Anything a worker (or the dispatcher, for pre-worker failures) reports
/// to the collector.
#[derive(Debug)]
pub(crate) enum Completed {
    /// A layer request finished; enters the ordered response stream.
    Layer(LayerDone),
    /// A decode session finished opening (metrics only — the client hears
    /// through the session channel). Opens pay compile + prompt ingest,
    /// so they carry timestamps and count toward the report's wall span.
    SessionOpened { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step finished (metrics only).
    Step { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step was dropped without executing because its session
    /// was already closed when the dispatcher saw it (a benign
    /// close/step race). Exits the depth gauge but is not a step
    /// execution — it must not count as a decode step or error.
    StepDropped,
}

/// Handles to the worker threads plus their load counters.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Vec<Job>>>,
    outstanding: Vec<Arc<AtomicUsize>>,
    pub handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning an engine built from `salo`.
    /// `parallelism` is the engines' prefill shard count (`0` inherits
    /// the `SALO_PARALLELISM` environment default).
    pub fn spawn(
        workers: usize,
        parallelism: usize,
        salo: &Salo,
        done: &Sender<Completed>,
        registry: &Arc<SessionRegistry>,
    ) -> Self {
        let workers = workers.max(1);
        let parallelism = if parallelism == 0 { salo_core::env_parallelism() } else { parallelism };
        let mut senders = Vec::with_capacity(workers);
        let mut outstanding = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<Vec<Job>>();
            let load = Arc::new(AtomicUsize::new(0));
            // Engines built from one Salo share its lookup tables.
            let engine = salo.engine_with_parallelism(parallelism);
            let worker_done = done.clone();
            let worker_load = Arc::clone(&load);
            let worker_registry = Arc::clone(registry);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("salo-serve-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            index,
                            engine,
                            &rx,
                            &worker_done,
                            &worker_load,
                            &worker_registry,
                        )
                    })
                    .expect("spawn worker thread"),
            );
            senders.push(tx);
            outstanding.push(load);
        }
        Self { senders, outstanding, handles }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.outstanding.len()
    }

    /// Outstanding work units queued on one worker.
    pub fn load_of(&self, worker: usize) -> usize {
        self.outstanding[worker].load(Ordering::Relaxed)
    }

    /// The worker with the fewest outstanding work units — where the
    /// dispatcher routes batches. (Session pinning additionally weighs
    /// live pinned sessions; see the dispatcher's placement.)
    pub fn least_loaded(&self) -> usize {
        self.outstanding
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
            .map_or(0, |(i, _)| i)
    }

    /// Sends a batch of jobs to the least-loaded worker (by outstanding
    /// request count). On failure — the chosen worker's thread is gone —
    /// the jobs are handed back so the caller can fail their requests
    /// instead of dropping them.
    pub fn dispatch(&self, jobs: Vec<Job>) -> Result<(), Vec<Job>> {
        let target = self.least_loaded();
        self.outstanding[target].fetch_add(jobs.len(), Ordering::Relaxed);
        match self.senders[target].send(jobs) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(jobs)) => {
                self.outstanding[target].fetch_sub(jobs.len(), Ordering::Relaxed);
                Err(jobs)
            }
        }
    }

    /// Sends one session job to a specific (pinned) worker. Returns the
    /// job back if that worker's thread is gone.
    #[allow(clippy::result_large_err)] // the Err is the undelivered job itself
    pub fn dispatch_to(&self, worker: usize, job: Job) -> Result<(), Job> {
        self.outstanding[worker].fetch_add(1, Ordering::Relaxed);
        match self.senders[worker].send(vec![job]) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(mut jobs)) => {
                self.outstanding[worker].fetch_sub(1, Ordering::Relaxed);
                Err(jobs.pop().expect("one job sent, one returned"))
            }
        }
    }

    /// Closes the submission side; workers drain their queues and exit.
    pub fn close(&mut self) {
        self.senders.clear();
    }
}

fn worker_loop(
    index: usize,
    mut engine: LoweredEngine,
    rx: &Receiver<Vec<Job>>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
) {
    while let Ok(jobs) = rx.recv() {
        for job in jobs {
            if !run_job(index, &mut engine, job, done, load, registry) {
                return; // collector is gone; nothing left to report to
            }
        }
    }
}

/// Executes one job on the worker's engine and routes its outcome.
/// Returns `false` once the collector is gone.
fn run_job(
    index: usize,
    engine: &mut LoweredEngine,
    job: Job,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
) -> bool {
    let Job { request, reply } = job;
    let tracer = salo_trace::Tracer::global();
    match reply {
        Reply::Layer { id, cache_hit, batch_size, submitted } => {
            // Queue wait: submission to execution start, recorded from
            // this worker's dequeue (it includes the dispatcher's plan
            // lookup and batch formation ahead of the worker queue).
            tracer.record_since("serve.queue_wait", "serve", submitted, id);
            let result = engine
                .execute(request)
                .and_then(|r| r.into_prefill())
                .and_then(PrefillOutput::into_multi_head_run)
                .map_err(ServeError::from);
            load.fetch_sub(1, Ordering::Relaxed);
            let _reply_span = tracer.span_with("serve.reply", "serve", id);
            let completed = Completed::Layer(LayerDone {
                id,
                result,
                cache_hit,
                worker: Some(index),
                batch_size,
                submitted,
                finished: Instant::now(),
            });
            done.send(completed).is_ok()
        }
        Reply::Open { session, cache_hit, submitted, events } => {
            tracer.record_since("serve.queue_wait", "serve", submitted, session);
            let result = engine.execute(request).and_then(|r| r.into_opened());
            load.fetch_sub(1, Ordering::Relaxed);
            let ok = result.is_ok();
            let info = result.map(|opened| SessionInfo {
                worker: index,
                min_step: opened.min_step,
                position: opened.position,
                capacity: opened.capacity,
                cache_hit,
            });
            if !ok {
                // Deregister before reporting, so a client that saw the
                // failed handshake gets `UnknownSession` from any later
                // `step_session` instead of a silent drop; the retirement
                // also queues the dispatcher route for reaping.
                registry.retire(session);
            }
            let _ = events
                .send(SessionEvent::Opened { session, result: info.map_err(ServeError::from) });
            let completed = Completed::SessionOpened { ok, submitted, finished: Instant::now() };
            done.send(completed).is_ok()
        }
        Reply::Step { session, submitted, events } => {
            // Bookkeeping (load, registry retirement) strictly precedes
            // the event sends: a client that has observed a step's
            // outcome must see the worker's state already settled —
            // retired sessions reject further steps, and session
            // placement reads a load this step no longer inflates.
            // Per-token decode timeline: queue wait (submission to this
            // dequeue) then the step execute, which traces itself as
            // `engine.decode_step` with the sim's stage spans below it.
            tracer.record_since("serve.decode.queue_wait", "serve", submitted, session);
            let known = engine.has_session(session);
            let before = engine.session_position(session);
            let result = engine.execute(request).and_then(|r| r.into_step());
            let ok = result.is_ok();
            // A failure that desynced the per-head states made the engine
            // retire the session; propagate the retirement runtime-wide.
            // Pre-mutation validation failures leave it live (and
            // decodable), and steps for sessions this engine never held
            // were retired long ago.
            let poisoned = known && !engine.has_session(session);
            if poisoned {
                registry.retire(session);
            }
            load.fetch_sub(1, Ordering::Relaxed);
            let result = result
                .map(|step| DecodeStep {
                    position: step.position,
                    heads: step.heads,
                    worker: index,
                })
                .map_err(ServeError::from);
            let _reply_span = tracer.span_with("serve.reply", "serve", session);
            let _ = events.send(SessionEvent::Step {
                session,
                result,
                latency_s: submitted.elapsed().as_secs_f64(),
            });
            if poisoned {
                // `before` is the tokens known ingested when the failing
                // step began; the failing token's partial ingest died
                // with the session state.
                let _ = events.send(SessionEvent::Closed { session, position: before });
            }
            let completed = Completed::Step { ok, submitted, finished: Instant::now() };
            done.send(completed).is_ok()
        }
        Reply::Close { session, events } => {
            load.fetch_sub(1, Ordering::Relaxed);
            if let Ok(closed) = engine.execute(request).and_then(|r| r.into_closed()) {
                let _ =
                    events.send(SessionEvent::Closed { session, position: Some(closed.position) });
            }
            true
        }
    }
}
