//! The worker pool: N simulated accelerator instances behind channels.
//!
//! Each worker thread owns its own [`Salo`] instance (modeling one
//! physical accelerator) and processes [`Work`] items: whole same-plan
//! batches (the compiled plan is shared across the batch, each member
//! request's heads run back to back — bit-identical to [`Salo::execute`])
//! and decode-session traffic (open / step / close). Decode sessions are
//! *pinned*: their per-head K/V state lives in the worker's local session
//! map for the whole generation, so steps never cross threads and the
//! state is never locked.
//!
//! Three resources amortize across the pool's lifetime: the clones share
//! one set of exponential/reciprocal lookup tables (behind `Arc` inside
//! the accelerator), each worker carries one [`ExecScratch`] across every
//! request and step it ever serves, and session K/V arenas grow once per
//! generation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use salo_core::{CompiledPlan, MultiHeadRun, Salo};
use salo_sim::ExecScratch;

use crate::batch::Batch;
use crate::session::{
    SessionEvent, SessionInfo, SessionRegistry, SessionRequest, TokenQkv, WorkerSession,
};
use crate::ServeError;

/// One unit of work shipped to a worker thread.
pub(crate) enum Work {
    /// A same-plan batch of layer requests.
    Batch(Batch),
    /// Open a decode session (lower the step program, ingest the prompt).
    Open(OpenJob),
    /// One decode step of a pinned session.
    Step(StepJob),
    /// Drop a session's state.
    Close {
        /// The session to drop.
        session: u64,
    },
}

/// Payload of [`Work::Open`].
pub(crate) struct OpenJob {
    pub session: u64,
    pub plan: Arc<CompiledPlan>,
    pub request: SessionRequest,
    pub cache_hit: bool,
    pub submitted: Instant,
    pub events: Sender<SessionEvent>,
}

/// Payload of [`Work::Step`].
pub(crate) struct StepJob {
    pub session: u64,
    pub token: Vec<TokenQkv>,
    pub submitted: Instant,
    /// The session's event channel, carried with the job so a step that
    /// arrives after the session was retired (poisoned or closed while
    /// this step sat in the queue) can still report its failure instead
    /// of leaving the client blocked on an event that never comes.
    pub events: Sender<SessionEvent>,
}

/// A finished layer request, reported by a worker to the collector.
#[derive(Debug)]
pub(crate) struct LayerDone {
    pub id: u64,
    pub result: Result<MultiHeadRun, ServeError>,
    pub cache_hit: bool,
    /// `None` when the request failed before reaching a worker.
    pub worker: Option<usize>,
    pub batch_size: usize,
    pub submitted: Instant,
    pub finished: Instant,
}

/// Anything a worker (or the dispatcher, for pre-worker failures) reports
/// to the collector.
#[derive(Debug)]
pub(crate) enum Completed {
    /// A layer request finished; enters the ordered response stream.
    Layer(LayerDone),
    /// A decode session finished opening (metrics only — the client hears
    /// through the session channel). Opens pay compile + prompt ingest,
    /// so they carry timestamps and count toward the report's wall span.
    SessionOpened { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step finished (metrics only).
    Step { ok: bool, submitted: Instant, finished: Instant },
    /// A decode step was dropped without executing because its session
    /// was already closed when the dispatcher saw it (a benign
    /// close/step race). Exits the depth gauge but is not a step
    /// execution — it must not count as a decode step or error.
    StepDropped,
}

/// Handles to the worker threads plus their load counters.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Work>>,
    outstanding: Vec<Arc<AtomicUsize>>,
    pub handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning a clone of `salo`.
    pub fn spawn(
        workers: usize,
        salo: &Salo,
        done: &Sender<Completed>,
        registry: &Arc<SessionRegistry>,
    ) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut outstanding = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<Work>();
            let load = Arc::new(AtomicUsize::new(0));
            let worker_salo = salo.clone();
            let worker_done = done.clone();
            let worker_load = Arc::clone(&load);
            let worker_registry = Arc::clone(registry);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("salo-serve-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            index,
                            &worker_salo,
                            &rx,
                            &worker_done,
                            &worker_load,
                            &worker_registry,
                        )
                    })
                    .expect("spawn worker thread"),
            );
            senders.push(tx);
            outstanding.push(load);
        }
        Self { senders, outstanding, handles }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.outstanding.len()
    }

    /// Outstanding work units queued on one worker.
    pub fn load_of(&self, worker: usize) -> usize {
        self.outstanding[worker].load(Ordering::Relaxed)
    }

    /// The worker with the fewest outstanding work units — where the
    /// dispatcher routes batches. (Session pinning additionally weighs
    /// live pinned sessions; see the dispatcher's placement.)
    pub fn least_loaded(&self) -> usize {
        self.outstanding
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::Relaxed))
            .map_or(0, |(i, _)| i)
    }

    /// Sends a batch to the least-loaded worker (by outstanding request
    /// count). On failure — the chosen worker's thread is gone — the
    /// batch is handed back so the caller can fail its requests instead
    /// of dropping them.
    pub fn dispatch(&self, batch: Batch) -> Result<(), Batch> {
        let target = self.least_loaded();
        self.outstanding[target].fetch_add(batch.len(), Ordering::Relaxed);
        match self.senders[target].send(Work::Batch(batch)) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(work)) => {
                let Work::Batch(batch) = work else { unreachable!("batch sent, batch returned") };
                self.outstanding[target].fetch_sub(batch.len(), Ordering::Relaxed);
                Err(batch)
            }
        }
    }

    /// Sends session work to a specific (pinned) worker. Returns the work
    /// back if that worker's thread is gone.
    #[allow(clippy::result_large_err)] // the Err is the undelivered work itself
    pub fn dispatch_to(&self, worker: usize, work: Work) -> Result<(), Work> {
        self.outstanding[worker].fetch_add(1, Ordering::Relaxed);
        match self.senders[worker].send(work) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::SendError(work)) => {
                self.outstanding[worker].fetch_sub(1, Ordering::Relaxed);
                Err(work)
            }
        }
    }

    /// Closes the submission side; workers drain their queues and exit.
    pub fn close(&mut self) {
        self.senders.clear();
    }
}

fn worker_loop(
    index: usize,
    salo: &Salo,
    rx: &Receiver<Work>,
    done: &Sender<Completed>,
    load: &AtomicUsize,
    registry: &SessionRegistry,
) {
    // One scratch for the worker's lifetime: arenas and accumulators grow
    // to the largest shape seen and are then reused across requests,
    // session prompts and decode steps.
    let mut scratch = ExecScratch::new();
    // The worker-resident halves of the sessions pinned here.
    let mut sessions: HashMap<u64, WorkerSession> = HashMap::new();
    while let Ok(work) = rx.recv() {
        match work {
            Work::Batch(batch) => {
                let batch_size = batch.requests.len();
                for req in batch.requests {
                    let result = salo
                        .execute_with_scratch(&batch.plan, &req.heads, &mut scratch)
                        .map_err(ServeError::from);
                    load.fetch_sub(1, Ordering::Relaxed);
                    let completed = Completed::Layer(LayerDone {
                        id: req.id,
                        result,
                        cache_hit: req.cache_hit,
                        worker: Some(index),
                        batch_size,
                        submitted: req.submitted,
                        finished: Instant::now(),
                    });
                    if done.send(completed).is_err() {
                        return; // collector is gone; nothing left to report to
                    }
                }
            }
            Work::Open(job) => {
                let result = WorkerSession::open(
                    salo,
                    &job.plan,
                    &job.request,
                    job.events.clone(),
                    &mut scratch,
                );
                load.fetch_sub(1, Ordering::Relaxed);
                let ok = result.is_ok();
                let info = result.map(|session| {
                    let info = SessionInfo {
                        worker: index,
                        min_step: session.min_step(),
                        position: session.position(),
                        capacity: session.capacity(),
                        cache_hit: job.cache_hit,
                    };
                    sessions.insert(job.session, session);
                    info
                });
                if !ok {
                    // Deregister before reporting, so a client that saw
                    // the failed handshake gets `UnknownSession` from any
                    // later `step_session` instead of a silent drop; the
                    // retirement also queues the dispatcher route for
                    // reaping.
                    registry.retire(job.session);
                }
                let _ =
                    job.events.send(SessionEvent::Opened { session: job.session, result: info });
                let completed = Completed::SessionOpened {
                    ok,
                    submitted: job.submitted,
                    finished: Instant::now(),
                };
                if done.send(completed).is_err() {
                    return;
                }
            }
            Work::Step(job) => {
                // Bookkeeping (load, registry retirement) strictly
                // precedes the event sends: a client that has observed a
                // step's outcome must see the worker's state already
                // settled — retired sessions reject further steps, and
                // session placement reads a load this step no longer
                // inflates.
                let ok = match sessions.get_mut(&job.session) {
                    Some(session) => {
                        let before = session.position();
                        let result = session.step(salo, &job.token, &mut scratch, index);
                        let events = session.events.clone();
                        let position = session.position();
                        let ok = result.is_ok();
                        // A failure that left any head advanced or
                        // poisoned desyncs the session: retire it. A
                        // pre-mutation validation failure (wrong head
                        // count, bad row dimension caught up front)
                        // leaves it intact and decodable.
                        let poisoned = !ok && !session.is_intact(before);
                        if poisoned {
                            sessions.remove(&job.session);
                            registry.retire(job.session);
                        }
                        load.fetch_sub(1, Ordering::Relaxed);
                        let _ = events.send(SessionEvent::Step {
                            session: job.session,
                            result,
                            latency_s: job.submitted.elapsed().as_secs_f64(),
                        });
                        if poisoned {
                            let _ = events.send(SessionEvent::Closed {
                                session: job.session,
                                position: Some(position),
                            });
                        }
                        ok
                    }
                    None => {
                        // The session was retired (poisoned or closed)
                        // while this step sat in the queue: report the
                        // failure on the job's own channel so no client
                        // blocks on a result that will never come.
                        load.fetch_sub(1, Ordering::Relaxed);
                        let _ = job.events.send(SessionEvent::Step {
                            session: job.session,
                            result: Err(ServeError::UnknownSession { session: job.session }),
                            latency_s: job.submitted.elapsed().as_secs_f64(),
                        });
                        false
                    }
                };
                let completed =
                    Completed::Step { ok, submitted: job.submitted, finished: Instant::now() };
                if done.send(completed).is_err() {
                    return;
                }
            }
            Work::Close { session } => {
                load.fetch_sub(1, Ordering::Relaxed);
                if let Some(state) = sessions.remove(&session) {
                    let _ = state
                        .events
                        .send(SessionEvent::Closed { session, position: Some(state.position()) });
                }
            }
        }
    }
}
