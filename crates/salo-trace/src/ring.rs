//! Lock-free bounded event ring, one per traced thread.
//!
//! Each traced thread owns a single-writer ring; any thread may snapshot it
//! concurrently (the exporter). Slots use a per-slot sequence word in the
//! classic seqlock discipline — the writer marks a slot odd while rewriting
//! it and even (with the event's version) when committed, and the reader
//! re-validates the sequence after copying the payload, discarding torn
//! slots. Every payload word is an individual atomic, so there are no data
//! races and the module needs no `unsafe`.
//!
//! Overflow policy: the ring holds the most recent `capacity` events; older
//! events are overwritten in place. The number of dropped (overwritten)
//! events is exactly `total_pushed - capacity` — see [`EventRing::dropped`].

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of payload words per event slot.
///
/// Layout: `[name_idx, cat_idx, start_ns, dur_ns, span_id, parent_id, arg]`.
pub(crate) const EVENT_WORDS: usize = 7;

/// Word indices into an event payload.
pub(crate) mod word {
    pub const NAME: usize = 0;
    pub const CAT: usize = 1;
    pub const START_NS: usize = 2;
    pub const DUR_NS: usize = 3;
    pub const ID: usize = 4;
    pub const PARENT: usize = 5;
    pub const ARG: usize = 6;
}

struct Slot {
    /// Seqlock word: `2*h + 1` while the event with logical index `h` is
    /// being written, `2*(h+1)` once it is committed.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { seq: AtomicU64::new(0), words: [const { AtomicU64::new(0) }; EVENT_WORDS] }
    }
}

/// A bounded single-writer, multi-reader event ring.
pub(crate) struct EventRing {
    /// Total number of events ever pushed (monotonic).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing { head: AtomicU64::new(0), slots: (0..capacity).map(|_| Slot::new()).collect() }
    }

    /// Total number of events ever pushed into this ring.
    pub(crate) fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Exact number of events overwritten (dropped) so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Pushes an event. Must only be called from the ring's owning thread
    /// (single writer); readers may run concurrently.
    pub(crate) fn push(&self, words: [u64; EVENT_WORDS]) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // Seqlock write protocol: mark odd, publish payload, mark even.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (h + 1), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies out the currently resident events, oldest first, together with
    /// the exact number of events dropped at snapshot time.
    ///
    /// Events concurrently overwritten while the snapshot runs are skipped
    /// (they fail seq validation); they are accounted for by a later
    /// [`dropped`](Self::dropped) reading, never silently miscounted.
    pub(crate) fn snapshot(&self) -> (Vec<[u64; EVENT_WORDS]>, u64) {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = h.saturating_sub(cap);
        let mut out = Vec::with_capacity((h - start) as usize);
        for i in start..h {
            let slot = &self.slots[(i % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * (i + 1) {
                // Slot is mid-write or already holds a newer event.
                continue;
            }
            let mut words = [0u64; EVENT_WORDS];
            for (d, w) in words.iter_mut().zip(&slot.words) {
                *d = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push(words);
            }
        }
        (out, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> [u64; EVENT_WORDS] {
        let mut w = [0u64; EVENT_WORDS];
        w[word::ID] = id;
        w
    }

    #[test]
    fn keeps_newest_and_counts_drops_exactly() {
        let ring = EventRing::new(8);
        for i in 0..20 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 12);
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 12);
        let ids: Vec<u64> = events.iter().map(|w| w[word::ID]).collect();
        assert_eq!(ids, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn no_drops_below_capacity() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 0);
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn concurrent_snapshot_never_sees_torn_ids() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(32));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    let mut w = [i; EVENT_WORDS];
                    w[word::ID] = i;
                    ring.push(w);
                }
            })
        };
        for _ in 0..200 {
            let (events, _) = ring.snapshot();
            for w in events {
                // Every word of a validated event must come from one push.
                assert!(w.iter().all(|&x| x == w[word::ID]));
            }
        }
        writer.join().unwrap();
    }
}
