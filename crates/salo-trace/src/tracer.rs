//! The span tracer: thread-local lanes, RAII spans, explicit intervals.
//!
//! A [`Tracer`] owns one lock-free event ring per traced thread (a *lane*).
//! Spans carry hierarchical identity — a process-unique span id plus the id
//! of the enclosing span on the same thread (0 at the root) — maintained via
//! a per-thread span stack. Emission is wait-free on the hot path: when the
//! tracer is disabled a span costs one relaxed atomic load; when enabled it
//! costs two clock reads and a ring push.
//!
//! Span names and categories are `&'static str` interned into a per-tracer
//! table so ring slots store plain integers; a torn slot can therefore never
//! fabricate an out-of-bounds string, only fail validation and be skipped.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::clock::{interval_since, now_ns};
use crate::ring::{word, EventRing, EVENT_WORDS};

/// Default per-thread ring capacity (events). Override with
/// `SALO_TRACE_BUFFER` for the global tracer.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// One traced thread's state inside a tracer: its ring plus display identity.
struct Lane {
    tid: u64,
    thread_name: String,
    ring: EventRing,
}

/// A completed span copied out of the rings by [`Tracer::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (interned static string).
    pub name: &'static str,
    /// Span category; groups spans in trace viewers ("serve", "engine", "sim").
    pub cat: &'static str,
    /// Trace-local id of the thread that recorded the span.
    pub tid: u64,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form numeric payload (request id, shard index, token index...).
    pub arg: u64,
}

/// Display identity of a traced thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Trace-local thread id (dense, assigned at first span on the thread).
    pub tid: u64,
    /// OS thread name at registration time, or `thread-<tid>`.
    pub name: String,
}

/// A consistent copy of everything a tracer has observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Completed spans, ordered per-thread oldest-first.
    pub spans: Vec<SpanRecord>,
    /// Threads that recorded at least one span.
    pub threads: Vec<ThreadInfo>,
    /// Exact total of ring-overflow-dropped events across all threads.
    pub dropped_events: u64,
}

struct LaneState {
    tracer_instance: u64,
    lane: Arc<Lane>,
    /// Ids of the open spans on this thread, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static LANES: RefCell<Vec<LaneState>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// A span tracer. Use [`Tracer::global`] in production code; construct
/// instances directly in tests that need isolation.
pub struct Tracer {
    /// Unique per-instance key so thread-local lane caches never alias
    /// across tracer lifetimes.
    instance: u64,
    enabled: AtomicBool,
    ring_capacity: usize,
    next_span_id: AtomicU64,
    next_tid: AtomicU64,
    names: Mutex<Vec<&'static str>>,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

impl Tracer {
    /// Creates a disabled tracer with the given per-thread ring capacity.
    pub fn new(ring_capacity: usize) -> Self {
        Tracer {
            instance: NEXT_TRACER_INSTANCE.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            ring_capacity: ring_capacity.max(16),
            next_span_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(1),
            names: Mutex::new(Vec::new()),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// The process-global tracer. Enabled at first use when the `SALO_TRACE`
    /// environment variable is `1`/`true`; ring capacity comes from
    /// `SALO_TRACE_BUFFER` (default [`DEFAULT_RING_CAPACITY`]).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("SALO_TRACE_BUFFER")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_RING_CAPACITY);
            let tracer = Tracer::new(capacity);
            if env_flag("SALO_TRACE") {
                tracer.set_enabled(true);
            }
            tracer
        })
    }

    /// Whether spans are being recorded. One relaxed load — safe to call on
    /// hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans created while disabled are no-ops
    /// even if recording is re-enabled before they drop.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a span in the default category. Closes (records) when the
    /// returned guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with(name, "task", 0)
    }

    /// Opens a span with an explicit category and numeric argument.
    #[inline]
    pub fn span_with(&self, name: &'static str, cat: &'static str, arg: u64) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { tracer: self, name, cat, arg, id: 0, parent: 0, start_ns: 0 };
        }
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.with_lane(|state| {
            let parent = state.stack.last().copied().unwrap_or(0);
            state.stack.push(id);
            parent
        });
        SpanGuard { tracer: self, name, cat, arg, id, parent, start_ns: now_ns() }
    }

    /// Records a completed interval with explicit endpoints (in ns since the
    /// trace epoch), parented under the current thread's innermost open span.
    ///
    /// This is the tool for cross-thread intervals (queue wait measured at
    /// dequeue) and for synthetic sub-spans reconstructed from accumulated
    /// stage timings. Returns the span id, or 0 when disabled.
    pub fn record_interval(
        &self,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        arg: u64,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let name_idx = self.intern(name);
        let cat_idx = self.intern(cat);
        self.with_lane(|state| {
            let parent = state.stack.last().copied().unwrap_or(0);
            let mut words = [0u64; EVENT_WORDS];
            words[word::NAME] = name_idx;
            words[word::CAT] = cat_idx;
            words[word::START_NS] = start_ns;
            words[word::DUR_NS] = end_ns.saturating_sub(start_ns);
            words[word::ID] = id;
            words[word::PARENT] = parent;
            words[word::ARG] = arg;
            state.lane.ring.push(words);
        });
        id
    }

    /// Records the interval from `start` (an `Instant` captured on any
    /// thread) until now. Convenience wrapper over
    /// [`record_interval`](Self::record_interval) for queue-wait style
    /// measurements.
    pub fn record_since(&self, name: &'static str, cat: &'static str, start: Instant, arg: u64) {
        if !self.enabled() {
            return;
        }
        let (s, e) = interval_since(start);
        self.record_interval(name, cat, s, e, arg);
    }

    /// Exact number of events lost to ring overflow across all threads.
    pub fn dropped_events(&self) -> u64 {
        let lanes = self.lanes.lock().expect("tracer lane registry poisoned");
        lanes.iter().map(|l| l.ring.dropped()).sum()
    }

    /// Copies out all resident spans from every thread's ring.
    pub fn snapshot(&self) -> TraceSnapshot {
        let lanes: Vec<Arc<Lane>> = {
            let guard = self.lanes.lock().expect("tracer lane registry poisoned");
            guard.clone()
        };
        let names: Vec<&'static str> = {
            let guard = self.names.lock().expect("tracer name table poisoned");
            guard.clone()
        };
        let mut snapshot = TraceSnapshot::default();
        for lane in &lanes {
            let (events, dropped) = lane.ring.snapshot();
            snapshot.dropped_events += dropped;
            if events.is_empty() && dropped == 0 {
                continue;
            }
            snapshot.threads.push(ThreadInfo { tid: lane.tid, name: lane.thread_name.clone() });
            for words in events {
                let name_idx = words[word::NAME] as usize;
                let cat_idx = words[word::CAT] as usize;
                // A torn slot that slipped past seq validation can only carry
                // garbage indices; drop it rather than mislabel.
                let (Some(&name), Some(&cat)) = (names.get(name_idx), names.get(cat_idx)) else {
                    continue;
                };
                snapshot.spans.push(SpanRecord {
                    name,
                    cat,
                    tid: lane.tid,
                    id: words[word::ID],
                    parent: words[word::PARENT],
                    start_ns: words[word::START_NS],
                    dur_ns: words[word::DUR_NS],
                    arg: words[word::ARG],
                });
            }
        }
        snapshot
    }

    /// Renders the current snapshot as Chrome trace-event JSON (load it at
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn export_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.snapshot())
    }

    fn intern(&self, s: &'static str) -> u64 {
        let mut names = self.names.lock().expect("tracer name table poisoned");
        if let Some(idx) =
            names.iter().position(|&n| std::ptr::eq(n.as_ptr(), s.as_ptr()) && n.len() == s.len())
        {
            return idx as u64;
        }
        // Same literal text can live at different addresses across codegen
        // units; fall back to a text comparison before growing the table.
        if let Some(idx) = names.iter().position(|&n| n == s) {
            return idx as u64;
        }
        names.push(s);
        (names.len() - 1) as u64
    }

    /// Runs `f` with this thread's lane for this tracer, registering the
    /// lane on first use.
    fn with_lane<R>(&self, f: impl FnOnce(&mut LaneState) -> R) -> R {
        LANES.with(|cell| {
            let mut lanes = cell.borrow_mut();
            if let Some(state) = lanes.iter_mut().find(|s| s.tracer_instance == self.instance) {
                return f(state);
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            let thread_name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let lane =
                Arc::new(Lane { tid, thread_name, ring: EventRing::new(self.ring_capacity) });
            self.lanes.lock().expect("tracer lane registry poisoned").push(Arc::clone(&lane));
            lanes.push(LaneState { tracer_instance: self.instance, lane, stack: Vec::new() });
            f(lanes.last_mut().expect("lane just pushed"))
        })
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false)
}

/// RAII guard for an open span; records the completed span on drop.
///
/// Guards from a disabled tracer are inert. Dropping guards out of creation
/// order is tolerated (the span is removed from wherever it sits in the
/// thread's open-span stack), though nesting semantics are only meaningful
/// for properly nested lifetimes.
#[must_use = "a span records when the guard drops; binding to _ closes it immediately"]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    cat: &'static str,
    arg: u64,
    /// 0 when the tracer was disabled at creation.
    id: u64,
    parent: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// The span id (0 for an inert guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Replaces the numeric argument recorded with the span.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_ns = now_ns();
        let name_idx = self.tracer.intern(self.name);
        let cat_idx = self.tracer.intern(self.cat);
        self.tracer.with_lane(|state| {
            if let Some(pos) = state.stack.iter().rposition(|&id| id == self.id) {
                state.stack.remove(pos);
            }
            let mut words = [0u64; EVENT_WORDS];
            words[word::NAME] = name_idx;
            words[word::CAT] = cat_idx;
            words[word::START_NS] = self.start_ns;
            words[word::DUR_NS] = end_ns.saturating_sub(self.start_ns);
            words[word::ID] = self.id;
            words[word::PARENT] = self.parent;
            words[word::ARG] = self.arg;
            state.lane.ring.push(words);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(64);
        {
            let _s = t.span("noop");
        }
        assert!(t.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_nest_via_parent_ids() {
        let t = Tracer::new(64);
        t.set_enabled(true);
        {
            let outer = t.span("outer");
            let outer_id = outer.id();
            {
                let inner = t.span_with("inner", "test", 7);
                assert_ne!(inner.id(), 0);
            }
            assert_ne!(outer_id, 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.arg, 7);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn record_interval_parents_under_open_span() {
        let t = Tracer::new(64);
        t.set_enabled(true);
        {
            let outer = t.span("outer");
            t.record_interval("queued", "serve", 10, 25, 3);
            assert_ne!(outer.id(), 0);
        }
        let snap = t.snapshot();
        let q = snap.spans.iter().find(|s| s.name == "queued").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(q.parent, outer.id);
        assert_eq!((q.start_ns, q.dur_ns), (10, 15));
    }

    #[test]
    fn threads_get_distinct_tids() {
        let t = Tracer::new(64);
        t.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = t.span("worker");
                });
            }
        });
        let snap = t.snapshot();
        let mut tids: Vec<u64> = snap.threads.iter().map(|t| t.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3);
        assert_eq!(snap.spans.len(), 3);
    }

    #[test]
    fn overflow_reports_exact_drop_count() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        for _ in 0..40 {
            let _s = t.span("e");
        }
        assert_eq!(t.dropped_events(), 24);
        let snap = t.snapshot();
        assert_eq!(snap.dropped_events, 24);
        assert_eq!(snap.spans.len(), 16);
    }
}
