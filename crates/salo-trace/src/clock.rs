//! Process-wide monotonic clock for trace timestamps.
//!
//! All spans and intervals are stamped in nanoseconds since a lazily
//! initialised process epoch (the first call into the clock). Using a single
//! epoch keeps timestamps from different threads directly comparable and lets
//! the Chrome trace exporter emit absolute `ts` values without clock-domain
//! translation.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process trace epoch. Initialised on first use; stable afterwards.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process trace [`epoch`].
///
/// Monotonic and comparable across threads. Saturates (after ~584 years) at
/// `u64::MAX`, which is not a practical concern.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Converts an [`Instant`] captured elsewhere (possibly before the epoch was
/// initialised) into an interval `(start_ns, end_ns)` with `end_ns` taken now.
///
/// The start is derived backwards from the current clock reading, so an
/// `Instant` captured before the trace epoch clamps to `0` instead of
/// panicking. This is the tool for cross-thread intervals such as queue-wait
/// spans: the submitting thread records an `Instant`, the worker thread turns
/// it into a trace interval on dequeue.
pub fn interval_since(start: Instant) -> (u64, u64) {
    let end_ns = now_ns();
    let elapsed = start.elapsed().as_nanos() as u64;
    (end_ns.saturating_sub(elapsed), end_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn interval_since_is_well_formed() {
        let t = Instant::now();
        std::hint::black_box((0..1000).sum::<u64>());
        let (s, e) = interval_since(t);
        assert!(e >= s);
    }
}
