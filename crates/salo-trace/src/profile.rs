//! Stage-level kernel profiles for the lowered attention datapath.
//!
//! [`StageProfile`] accumulates wall time per datapath stage — qk_dot
//! (stage 1), the exp-LUT sweep with renormalisation (stages 2–4), the
//! weighted-sum partial merge, and sv_mac (stage 5) — plus op/key counts.
//! The accumulator lives in the executor's scratch state and is gated by a
//! plain `bool`, so a disabled profile costs one predictable branch per
//! stage. [`StageTimer`] is the matching lap timer.

use std::time::Instant;

/// Accumulated per-stage cost of lowered-plan execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage 1: query·key dot products.
    pub qk_dot_ns: u64,
    /// Stages 2–4: exp-LUT sweep, row sum/reciprocal, and normalisation.
    pub exp_lut_ns: u64,
    /// Cross-op weighted-sum merge of partial rows (Eq. 2).
    pub renorm_merge_ns: u64,
    /// Stage 5: score×value multiply-accumulate.
    pub sv_mac_ns: u64,
    /// Number of lowered ops executed.
    pub ops: u64,
    /// Total keys processed across those ops.
    pub keys: u64,
}

impl StageProfile {
    /// Adds another profile into this one (exact: plain summation).
    pub fn merge(&mut self, other: &StageProfile) {
        self.qk_dot_ns += other.qk_dot_ns;
        self.exp_lut_ns += other.exp_lut_ns;
        self.renorm_merge_ns += other.renorm_merge_ns;
        self.sv_mac_ns += other.sv_mac_ns;
        self.ops += other.ops;
        self.keys += other.keys;
    }

    /// Sum of the four stage timings.
    pub fn total_ns(&self) -> u64 {
        self.qk_dot_ns + self.exp_lut_ns + self.renorm_merge_ns + self.sv_mac_ns
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        *self == StageProfile::default()
    }

    /// The four stages as `(name, nanoseconds)` pairs, in datapath order.
    pub fn stages(&self) -> [(&'static str, u64); 4] {
        [
            ("qk_dot", self.qk_dot_ns),
            ("exp_lut", self.exp_lut_ns),
            ("renorm_merge", self.renorm_merge_ns),
            ("sv_mac", self.sv_mac_ns),
        ]
    }

    /// Takes the current value, leaving this profile empty.
    pub fn take(&mut self) -> StageProfile {
        std::mem::take(self)
    }
}

/// A lap timer charging elapsed time to stage accumulator slots.
///
/// Constructed per op; when disabled every method is a single branch on a
/// `None` and touches no clock.
pub struct StageTimer {
    last: Option<Instant>,
}

impl StageTimer {
    /// Starts a timer; `enabled = false` yields an inert timer.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        StageTimer { last: enabled.then(Instant::now) }
    }

    /// Charges the time since the previous lap (or start) to `slot`.
    #[inline]
    pub fn lap(&mut self, slot: &mut u64) {
        if let Some(prev) = self.last {
            let now = Instant::now();
            *slot += now.duration_since(prev).as_nanos() as u64;
            self.last = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = StageProfile {
            qk_dot_ns: 1,
            exp_lut_ns: 2,
            renorm_merge_ns: 3,
            sv_mac_ns: 4,
            ops: 5,
            keys: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.total_ns(), 20);
        assert_eq!((a.ops, a.keys), (10, 12));
    }

    #[test]
    fn disabled_timer_accumulates_nothing() {
        let mut t = StageTimer::start(false);
        let mut slot = 0u64;
        t.lap(&mut slot);
        assert_eq!(slot, 0);
    }

    #[test]
    fn enabled_timer_accumulates_monotonically() {
        let mut t = StageTimer::start(true);
        let mut a = 0u64;
        let mut b = 0u64;
        std::hint::black_box((0..10_000).sum::<u64>());
        t.lap(&mut a);
        std::hint::black_box((0..10_000).sum::<u64>());
        t.lap(&mut b);
        // Both laps ran real work; at least the clock must have advanced in
        // aggregate (individual laps can round to 0 on coarse clocks).
        let _ = a + b;
    }

    #[test]
    fn stages_are_in_datapath_order() {
        let p = StageProfile::default();
        let names: Vec<&str> = p.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["qk_dot", "exp_lut", "renorm_merge", "sv_mac"]);
    }
}
