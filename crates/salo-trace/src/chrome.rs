//! Chrome trace-event JSON export.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev> → "Open trace file"). Each completed
//! span becomes a `ph:"X"` complete event; each traced thread gets a
//! `thread_name` metadata record so lanes are labelled in the viewer.
//! Timestamps are microseconds with nanosecond fractions, relative to the
//! process trace epoch.

use crate::tracer::TraceSnapshot;

/// Renders a snapshot as a Chrome trace-event JSON document.
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    // Rough sizing: ~160 bytes per span row.
    let mut out = String::with_capacity(64 + 160 * snapshot.spans.len());
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &snapshot.threads {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            thread.tid,
            escape(&thread.name)
        ));
    }
    for span in &snapshot.spans {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"arg\":{}}}}}",
            span.tid,
            escape(span.name),
            escape(span.cat),
            micros(span.start_ns),
            micros(span.dur_ns),
            span.id,
            span.parent,
            span.arg
        ));
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}",
        snapshot.dropped_events
    ));
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Nanoseconds → microseconds with full nanosecond precision, as a decimal
/// literal (Chrome `ts`/`dur` are in µs).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanRecord, ThreadInfo};

    #[test]
    fn renders_metadata_and_complete_events() {
        let snap = TraceSnapshot {
            spans: vec![SpanRecord {
                name: "engine.prefill",
                cat: "engine",
                tid: 2,
                id: 5,
                parent: 1,
                start_ns: 1_234_567,
                dur_ns: 89_001,
                arg: 42,
            }],
            threads: vec![ThreadInfo { tid: 2, name: "worker-0".into() }],
            dropped_events: 3,
        };
        let json = to_chrome_json(&snap);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":89.001"));
        assert!(json.contains("\"dropped_events\":3"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
