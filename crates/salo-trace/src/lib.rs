//! # salo-trace — zero-dependency observability for the SALO stack
//!
//! Three pieces, threaded through every layer of the workspace:
//!
//! 1. **Span tracer** ([`Tracer`]): thread-local spans on a process-wide
//!    monotonic clock, buffered in a lock-free bounded ring per thread,
//!    with hierarchical span ids and an exporter to Chrome trace-event JSON
//!    (loadable in Perfetto / `chrome://tracing`).
//! 2. **Metrics registry** ([`MetricsRegistry`]): named atomic counters and
//!    gauges plus fixed-boundary log₂-bucket histograms ([`LogHistogram`])
//!    whose merge is *exact* across workers and shards.
//! 3. **Kernel stage profiles** ([`StageProfile`]/[`StageTimer`]): cheap
//!    flag-gated per-stage accumulators for the lowered attention datapath.
//!
//! Everything is plain `std` — no external crates, no `unsafe`.
//!
//! ## Enabling
//!
//! The global tracer is off by default (a disabled span costs one relaxed
//! atomic load). Set `SALO_TRACE=1` in the environment, or call
//! [`set_enabled`]`(true)` programmatically. `SALO_TRACE_BUFFER` overrides
//! the per-thread ring capacity (default 65 536 events; on overflow the
//! oldest events are dropped and counted exactly).
//!
//! ## Quick use
//!
//! ```
//! use salo_trace as trace;
//!
//! trace::set_enabled(true);
//! {
//!     let _outer = trace::span("request");
//!     let _inner = trace::span_with("engine.execute", "engine", 42);
//! } // spans record on drop
//! let json = trace::export_chrome_json();
//! assert!(json.contains("engine.execute"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod clock;
mod metrics;
mod profile;
mod ring;
mod tracer;

pub use chrome::to_chrome_json;
pub use clock::{epoch, interval_since, now_ns};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsRegistry,
    NUM_BUCKETS,
};
pub use profile::{StageProfile, StageTimer};
pub use tracer::{SpanGuard, SpanRecord, ThreadInfo, TraceSnapshot, Tracer, DEFAULT_RING_CAPACITY};

use std::time::Instant;

/// Whether the global tracer is recording. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    Tracer::global().enabled()
}

/// Enables or disables the global tracer.
pub fn set_enabled(on: bool) {
    Tracer::global().set_enabled(on);
}

/// Opens a span on the global tracer (category `"task"`).
#[inline]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    Tracer::global().span(name)
}

/// Opens a span on the global tracer with a category and numeric argument.
#[inline]
pub fn span_with(name: &'static str, cat: &'static str, arg: u64) -> SpanGuard<'static> {
    Tracer::global().span_with(name, cat, arg)
}

/// Records an explicit interval on the global tracer.
pub fn record_interval(
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) {
    Tracer::global().record_interval(name, cat, start_ns, end_ns, arg);
}

/// Records the interval from `start` until now on the global tracer.
pub fn record_since(name: &'static str, cat: &'static str, start: Instant, arg: u64) {
    Tracer::global().record_since(name, cat, start, arg);
}

/// Exports the global tracer's snapshot as Chrome trace-event JSON.
pub fn export_chrome_json() -> String {
    Tracer::global().export_chrome_json()
}

/// The global metrics registry ([`MetricsRegistry::global`]).
pub fn metrics() -> &'static MetricsRegistry {
    MetricsRegistry::global()
}
